#!/usr/bin/env bash
# Tier-1 verification: release build + the root test suite, fully offline.
#
# The workspace is std-only (no crates.io dependencies — see DESIGN.md §6),
# so --offline must always succeed; if it ever fails, a registry dependency
# has crept back in.
#
# Usage: scripts/verify.sh [--workspace]
#   --workspace   also run every crate's unit/property/bench-harness tests
#                 (slower; tier-1 proper is the root suite).
set -euo pipefail
cd "$(dirname "$0")/.."

extra=()
if [[ "${1:-}" == "--workspace" ]]; then
    extra=(--workspace)
fi

cargo build --release --offline
cargo test -q --offline "${extra[@]}"
echo "verify: OK"
