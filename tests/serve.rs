//! Loopback tests of the serving frontend: the soak test proving wire
//! decisions are bit-identical to the in-process `run_lanes` path, plus
//! admission, backpressure, disconnect-recovery, version negotiation,
//! and degradation-tag propagation over a real TCP socket.

use std::net::{SocketAddr, TcpStream};
use std::sync::OnceLock;
use std::thread::JoinHandle;

use eventhit::core::experiment::{ExperimentConfig, TaskRun};
use eventhit::core::model::EventHit;
use eventhit::core::multi::{run_lanes, LaneDecision, StreamLane};
use eventhit::core::pipeline::{ConformalState, Strategy};
use eventhit::core::streaming::OnlinePredictor;
use eventhit::core::tasks::task;
use eventhit::core::InferenceLane;
use eventhit::nn::matrix::Matrix;
use eventhit::parallel::{with_workers, Pool};
use eventhit::serve::convert::decision_from_wire;
use eventhit::serve::protocol::{read_message, write_message, Message, RejectCode, PROTOCOL_MAJOR};
use eventhit::serve::{Response, ServeClient, ServeConfig, Server};

/// One quick training run shared by every test in this file.
struct Trained {
    model: EventHit,
    state: ConformalState,
    /// Conformal state refitted from calibration scores on the int8 lane,
    /// the pairing `serve --lane quantized` deploys.
    quant_state: ConformalState,
    features: Matrix,
}

fn trained() -> &'static Trained {
    static RUN: OnceLock<Trained> = OnceLock::new();
    RUN.get_or_init(|| {
        let run = TaskRun::execute(&task("TA10").unwrap(), &ExperimentConfig::quick(77));
        let quant_state = run.state_for_lane(InferenceLane::Quantized);
        Trained {
            model: run.model,
            state: run.state,
            quant_state,
            features: run.features,
        }
    })
}

const STRATEGY: Strategy = Strategy::Ehcr { c: 0.9, alpha: 0.5 };

fn predictor() -> OnlinePredictor {
    let t = trained();
    OnlinePredictor::new(t.model.clone(), t.state.clone(), STRATEGY)
}

fn quantized_predictor() -> OnlinePredictor {
    let t = trained();
    OnlinePredictor::with_lane(
        t.model.clone(),
        t.quant_state.clone(),
        STRATEGY,
        InferenceLane::Quantized,
    )
}

/// Binds a server on a free port and serves exactly `sessions` sessions
/// on a background thread.
fn spawn_server(
    cfg: ServeConfig,
    factory: Box<dyn Fn(u32) -> OnlinePredictor + Send + Sync>,
    sessions: usize,
) -> (SocketAddr, JoinHandle<()>) {
    let server = Server::bind(cfg, factory).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || {
        server.serve_sessions(sessions, &Pool::new(1));
    });
    (addr, handle)
}

#[test]
fn loopback_soak_bit_identical_to_run_lanes_at_1_and_4_workers() {
    let t = trained();
    let dim = t.features.cols() as u32;
    // Three streams over the same stream's features at different start
    // offsets, so every lane produces a distinct decision sequence.
    let froms = [0usize, 7, 19];

    // In-process baseline, at both worker counts (which must agree).
    let lanes = |_| -> Vec<StreamLane> {
        froms
            .iter()
            .enumerate()
            .map(|(i, &from)| StreamLane {
                stream_id: i,
                predictor: predictor(),
                features: t.features.clone(),
                from,
            })
            .collect()
    };
    let baseline1 = with_workers(1, || run_lanes(lanes(()), &Pool::current()));
    let baseline4 = with_workers(4, || run_lanes(lanes(()), &Pool::current()));
    assert_eq!(baseline1, baseline4, "run_lanes must be worker-invariant");
    assert!(!baseline1.is_empty(), "soak baseline produced no decisions");

    // Served path: one session, three interleaved streams, batched rows.
    let (addr, handle) = spawn_server(ServeConfig::default(), Box::new(|_| predictor()), 1);
    let mut client = ServeClient::connect(addr).expect("connect");
    for s in 0..froms.len() as u32 {
        client
            .open_stream(s)
            .expect("open I/O")
            .expect_ok("open_stream");
    }
    let mut served: Vec<LaneDecision> = Vec::new();
    let rows = t.features.rows();
    let batch = 97; // deliberately unaligned with window/horizon
    let mut cursors = froms;
    loop {
        let mut progressed = false;
        for (i, cursor) in cursors.iter_mut().enumerate() {
            if *cursor >= rows {
                continue;
            }
            progressed = true;
            let hi = (*cursor + batch).min(rows);
            let mut data = Vec::with_capacity((hi - *cursor) * dim as usize);
            for r in *cursor..hi {
                data.extend_from_slice(t.features.row(r));
            }
            let decisions = client
                .submit(i as u32, dim, data)
                .expect("submit I/O")
                .expect_ok("submit");
            served.extend(decisions.iter().map(|d| LaneDecision {
                stream_id: i,
                decision: decision_from_wire(d),
            }));
            *cursor = hi;
        }
        if !progressed {
            break;
        }
    }
    for s in 0..froms.len() as u32 {
        client
            .close_stream(s)
            .expect("close I/O")
            .expect_ok("close_stream");
    }
    drop(client);
    handle.join().expect("server thread");

    // Same merge key as run_lanes, then bit-for-bit equality.
    served.sort_by_key(|d| (d.decision.anchor, d.stream_id));
    assert_eq!(served, baseline1);
}

#[test]
fn quantized_lane_server_bit_identical_to_in_process_run_lanes() {
    let t = trained();
    let dim = t.features.cols() as u32;
    let froms = [0usize, 13];

    // In-process quantized baseline at 1 and 4 workers (must agree: the
    // int8 kernels are sequential, so worker count cannot matter).
    let lanes = || -> Vec<StreamLane> {
        froms
            .iter()
            .enumerate()
            .map(|(i, &from)| StreamLane {
                stream_id: i,
                predictor: quantized_predictor(),
                features: t.features.clone(),
                from,
            })
            .collect()
    };
    let baseline1 = with_workers(1, || run_lanes(lanes(), &Pool::current()));
    let baseline4 = with_workers(4, || run_lanes(lanes(), &Pool::current()));
    assert_eq!(
        baseline1, baseline4,
        "quantized run_lanes must be worker-invariant"
    );
    assert!(!baseline1.is_empty(), "quantized baseline had no decisions");

    // Served path: a server whose lane factory builds quantized
    // predictors, exactly like `eventhit-cli serve --lane quantized`.
    let (addr, handle) = spawn_server(
        ServeConfig::default(),
        Box::new(|_| quantized_predictor()),
        1,
    );
    let mut client = ServeClient::connect(addr).expect("connect");
    for s in 0..froms.len() as u32 {
        client
            .open_stream(s)
            .expect("open I/O")
            .expect_ok("open_stream");
    }
    let mut served: Vec<LaneDecision> = Vec::new();
    let rows = t.features.rows();
    let batch = 113; // unaligned with window/horizon
    let mut cursors = froms;
    loop {
        let mut progressed = false;
        for (i, cursor) in cursors.iter_mut().enumerate() {
            if *cursor >= rows {
                continue;
            }
            progressed = true;
            let hi = (*cursor + batch).min(rows);
            let mut data = Vec::with_capacity((hi - *cursor) * dim as usize);
            for r in *cursor..hi {
                data.extend_from_slice(t.features.row(r));
            }
            let decisions = client
                .submit(i as u32, dim, data)
                .expect("submit I/O")
                .expect_ok("submit");
            served.extend(decisions.iter().map(|d| LaneDecision {
                stream_id: i,
                decision: decision_from_wire(d),
            }));
            *cursor = hi;
        }
        if !progressed {
            break;
        }
    }
    for s in 0..froms.len() as u32 {
        client
            .close_stream(s)
            .expect("close I/O")
            .expect_ok("close_stream");
    }
    drop(client);
    handle.join().expect("server thread");

    served.sort_by_key(|d| (d.decision.anchor, d.stream_id));
    assert_eq!(served, baseline1);
}

#[test]
fn admission_caps_streams_and_recovers_on_close() {
    let cfg = ServeConfig {
        max_streams: 2,
        retry_after_ms: 250,
        ..ServeConfig::default()
    };
    let (addr, handle) = spawn_server(cfg, Box::new(|_| predictor()), 1);
    let mut client = ServeClient::connect(addr).expect("connect");
    assert_eq!(client.negotiated().max_streams, 2);

    client.open_stream(0).unwrap().expect_ok("first");
    client.open_stream(1).unwrap().expect_ok("second");
    match client.open_stream(2).unwrap() {
        Response::Rejected(r) => {
            assert_eq!(r.code, RejectCode::TooManyStreams);
            assert_eq!(r.retry_after_ms, 250, "retry-after hint must propagate");
        }
        Response::Ok(()) => panic!("third stream must be refused"),
    }
    // Duplicate ids are refused without consuming a slot.
    match client.open_stream(1).unwrap() {
        Response::Rejected(r) => assert_eq!(r.code, RejectCode::DuplicateStream),
        Response::Ok(()) => panic!("duplicate stream must be refused"),
    }
    // Closing frees the slot for the previously refused stream.
    client.close_stream(1).unwrap().expect_ok("close");
    client.open_stream(2).unwrap().expect_ok("after release");
    drop(client);
    handle.join().unwrap();
}

#[test]
fn queue_full_and_batch_too_large_backpressure() {
    let t = trained();
    let dim = t.features.cols() as u32;
    let cfg = ServeConfig {
        max_batch_frames: 64,
        max_queue_frames: 8,
        retry_after_ms: 40,
        ..ServeConfig::default()
    };
    let (addr, handle) = spawn_server(cfg, Box::new(|_| predictor()), 1);
    let mut client = ServeClient::connect(addr).expect("connect");
    client.open_stream(0).unwrap().expect_ok("open");

    let rows_of = |n: usize| {
        let mut data = Vec::with_capacity(n * dim as usize);
        for r in 0..n {
            data.extend_from_slice(t.features.row(r));
        }
        data
    };
    // Over the batch cap: permanent rejection (retry cannot help).
    match client.submit(0, dim, rows_of(65)).unwrap() {
        Response::Rejected(r) => {
            assert_eq!(r.code, RejectCode::BatchTooLarge);
            assert_eq!(r.retry_after_ms, 0);
        }
        Response::Ok(_) => panic!("oversized batch must be refused"),
    }
    // Under the batch cap but over the queue bound: backpressure with a
    // retry hint, batch untouched.
    match client.submit(0, dim, rows_of(16)).unwrap() {
        Response::Rejected(r) => {
            assert_eq!(r.code, RejectCode::QueueFull);
            assert_eq!(r.retry_after_ms, 40);
        }
        Response::Ok(_) => panic!("overflowing batch must be refused"),
    }
    // A fitting batch sails through on the same stream afterwards.
    client
        .submit(0, dim, rows_of(8))
        .unwrap()
        .expect_ok("fitting batch");
    // Submitting to a stream that was never opened is refused.
    match client.submit(9, dim, rows_of(1)).unwrap() {
        Response::Rejected(r) => assert_eq!(r.code, RejectCode::UnknownStream),
        Response::Ok(_) => panic!("unknown stream must be refused"),
    }
    drop(client);
    handle.join().unwrap();
}

#[test]
fn mid_session_disconnect_leaves_lanes_reusable() {
    let t = trained();
    let dim = t.features.cols() as u32;
    let cfg = ServeConfig {
        max_streams: 1,
        ..ServeConfig::default()
    };
    // Two sequential sessions on a 1-worker pool: the second accept only
    // happens after the first session's cleanup ran.
    let (addr, handle) = spawn_server(cfg, Box::new(|_| predictor()), 2);

    // Session A claims the only slot, feeds some frames, then vanishes
    // without closing the stream.
    {
        let mut a = ServeClient::connect(addr).expect("connect A");
        a.open_stream(0).unwrap().expect_ok("A open");
        let mut data = Vec::new();
        for r in 0..10 {
            data.extend_from_slice(t.features.row(r));
        }
        a.submit(0, dim, data).unwrap().expect_ok("A submit");
    } // dropped: TCP FIN mid-session

    // Session B must get the slot back.
    let mut b = ServeClient::connect(addr).expect("connect B");
    b.open_stream(0).unwrap().expect_ok("B open after A died");
    let health = b.health().expect("health");
    assert_eq!(health.active_streams, 1, "only B's stream may be open");
    assert_eq!(health.sessions, 2);
    drop(b);
    handle.join().unwrap();
}

#[test]
fn version_mismatch_and_premature_requests_are_rejected() {
    // Two raw sessions: one with a wrong major version, one skipping the
    // handshake entirely.
    let (addr, handle) = spawn_server(ServeConfig::default(), Box::new(|_| predictor()), 2);

    let sock = TcpStream::connect(addr).expect("connect");
    let mut chan = &sock;
    write_message(
        &mut chan,
        &Message::Hello {
            major: PROTOCOL_MAJOR + 1,
            minor: 0,
        },
    )
    .unwrap();
    match read_message(&mut chan).unwrap() {
        Some(Message::Rejected {
            code,
            retry_after_ms,
            ..
        }) => {
            assert_eq!(code, RejectCode::VersionUnsupported);
            assert_eq!(retry_after_ms, 0);
        }
        other => panic!("expected version rejection, got {other:?}"),
    }
    assert_eq!(read_message(&mut chan).unwrap(), None, "server hangs up");
    drop(sock);

    let sock = TcpStream::connect(addr).expect("connect");
    let mut chan = &sock;
    write_message(&mut chan, &Message::Health).unwrap();
    match read_message(&mut chan).unwrap() {
        Some(Message::Rejected { code, .. }) => assert_eq!(code, RejectCode::NotReady),
        other => panic!("expected NotReady, got {other:?}"),
    }
    drop(sock);
    handle.join().unwrap();
}

#[test]
fn degradation_tags_propagate_to_clients_over_the_wire() {
    use eventhit::core::faults::FaultConfig;
    use eventhit::core::resilient::{DegradationTag, ResilienceConfig};
    use eventhit::serve::ResilienceSpec;

    let t = trained();
    let dim = t.features.cols() as u32;
    // A dead CI channel: every submission fails, so early decisions come
    // back Dropped (dead-lettered) and, once the breaker trips, LocalOnly.
    let cfg = ServeConfig {
        resilience: Some(ResilienceSpec {
            faults: FaultConfig {
                p_good_to_bad: 1.0,
                p_bad_to_good: 0.0,
                bad_loss: 1.0,
                ..FaultConfig::reliable()
            },
            resilience: ResilienceConfig::default(),
            ci_fps: 100.0,
            stream_fps: 30.0,
            seed: 7,
        }),
        ..ServeConfig::default()
    };
    // A strategy that always relays guarantees every decision submits.
    let factory = Box::new(|_| {
        let t = trained();
        OnlinePredictor::new(
            t.model.clone(),
            t.state.clone(),
            Strategy::Eho { tau1: 0.0 },
        )
    });
    let (addr, handle) = spawn_server(cfg, factory, 1);
    let mut client = ServeClient::connect(addr).expect("connect");
    client.open_stream(0).unwrap().expect_ok("open");

    let mut tags = Vec::new();
    let rows = t.features.rows().min(4000);
    let mut at = 0;
    while at < rows {
        let hi = (at + 500).min(rows);
        let mut data = Vec::with_capacity((hi - at) * dim as usize);
        for r in at..hi {
            data.extend_from_slice(t.features.row(r));
        }
        let decisions = client.submit(0, dim, data).unwrap().expect_ok("submit");
        tags.extend(decisions.iter().map(|d| decision_from_wire(d).degradation));
        at = hi;
    }
    drop(client);
    handle.join().unwrap();

    assert!(!tags.is_empty(), "no decisions produced");
    assert!(
        tags.iter().all(|&tag| tag != DegradationTag::None),
        "a dead CI channel must degrade every relaying decision: {tags:?}"
    );
    assert!(
        tags.contains(&DegradationTag::LocalOnly),
        "the open breaker must force local-only decisions: {tags:?}"
    );
}

#[test]
fn health_and_telemetry_travel_the_wire() {
    use eventhit::telemetry::Telemetry;
    use std::sync::Arc;

    let t = trained();
    let dim = t.features.cols() as u32;
    let telemetry = Arc::new(Telemetry::new());
    let server = Server::bind_with_telemetry(
        ServeConfig::default(),
        Box::new(|_| predictor()),
        Arc::clone(&telemetry),
    )
    .expect("bind");
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.serve_sessions(1, &Pool::new(1)));

    let mut client = ServeClient::connect(addr).expect("connect");
    client.open_stream(0).unwrap().expect_ok("open");
    let mut data = Vec::new();
    for r in 0..200 {
        data.extend_from_slice(t.features.row(r));
    }
    client.submit(0, dim, data).unwrap().expect_ok("submit");

    let health = client.health().expect("health");
    assert_eq!(health.active_streams, 1);
    assert_eq!(health.sessions, 1);
    assert_eq!(health.frames, 200);

    let jsonl = client.telemetry_jsonl().expect("telemetry");
    assert!(jsonl.contains("serve.frames"), "snapshot: {jsonl}");
    assert!(jsonl.contains("serve.streams_opened"), "snapshot: {jsonl}");
    drop(client);
    handle.join().unwrap();

    // The server-side recorder agrees with what was served.
    let snap = telemetry.snapshot();
    assert_eq!(snap.counter("serve.frames"), Some(200));
    assert_eq!(snap.counter("serve.sessions"), Some(1));
    assert_eq!(snap.counter("serve.streams_opened"), Some(1));
    assert_eq!(snap.counter_labeled("serve.rejected", "queue_full"), None);
    // Even a single-shard server scopes its metrics: shard 0 carries the
    // whole load, and the cross-shard aggregate gauge (what `eventhit-cli
    // top` and the Health endpoint report) agrees with it.
    assert_eq!(snap.counter("serve.shard0.frames"), Some(200));
    assert_eq!(snap.counter("serve.shard0.streams_opened"), Some(1));
    let aggregate = snap.gauge("serve.active_streams").expect("aggregate gauge");
    let shard0 = snap
        .gauge("serve.shard0.active_streams")
        .expect("shard gauge");
    assert_eq!((aggregate.last, aggregate.max), (0.0, 1.0));
    assert_eq!((shard0.last, shard0.max), (0.0, 1.0));
}

#[test]
fn sharded_telemetry_scopes_per_shard_and_keeps_the_aggregate() {
    use eventhit::serve::ShardRouter;
    use eventhit::telemetry::Telemetry;
    use std::sync::Arc;

    let t = trained();
    let dim = t.features.cols() as u32;
    let shards = 4u32;
    let telemetry = Arc::new(Telemetry::new());
    let server = Server::bind_with_telemetry(
        ServeConfig {
            shards,
            ..ServeConfig::default()
        },
        Box::new(|_| predictor()),
        Arc::clone(&telemetry),
    )
    .expect("bind");
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.serve_sessions(1, &Pool::new(1)));

    // One stream per shard, so every shard's scope sees traffic.
    let router = ShardRouter::new(shards);
    let streams: Vec<u32> = (0..shards)
        .map(|i| (0..64).find(|s| router.route(*s) == i).expect("owned id"))
        .collect();
    let mut client = ServeClient::connect(addr).expect("connect");
    for &s in &streams {
        client.open_stream(s).unwrap().expect_ok("open");
    }
    let mut data = Vec::new();
    for r in 0..100 {
        data.extend_from_slice(t.features.row(r));
    }
    for &s in &streams {
        client
            .submit(s, dim, data.clone())
            .unwrap()
            .expect_ok("submit");
    }
    let health = client.health().expect("health");
    assert_eq!(
        health.active_streams, shards,
        "the Health aggregate must span all shards"
    );
    assert_eq!(health.frames, 100 * shards as u64);
    drop(client);
    handle.join().unwrap();

    let snap = telemetry.snapshot();
    // Per-shard scopes each saw exactly their own stream...
    for i in 0..shards {
        let scope = |m: &str| format!("serve.shard{i}.{m}");
        assert_eq!(snap.counter(&scope("streams_opened")), Some(1), "shard {i}");
        assert_eq!(snap.counter(&scope("frames")), Some(100), "shard {i}");
        let g = snap.gauge(&scope("active_streams")).expect("shard gauge");
        assert_eq!((g.last, g.max), (0.0, 1.0), "shard {i} gauge");
    }
    // ...and the cross-shard aggregates are their sums, so `top` and
    // existing dashboards keep reading the same global names.
    assert_eq!(snap.counter("serve.streams_opened"), Some(shards as u64));
    assert_eq!(snap.counter("serve.frames"), Some(100 * shards as u64));
    let aggregate = snap.gauge("serve.active_streams").expect("aggregate gauge");
    assert_eq!(
        (aggregate.last, aggregate.max),
        (0.0, shards as f64),
        "aggregate gauge must peak at one active stream per shard"
    );
}
