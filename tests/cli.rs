//! Smoke tests of the `eventhit-cli` binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_eventhit-cli"))
}

#[test]
fn tasks_lists_table2() {
    let out = cli().arg("tasks").output().expect("run cli");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("TA1\t"));
    assert!(stdout.contains("TA16\t"));
}

#[test]
fn unknown_command_exits_nonzero() {
    let out = cli().arg("frobnicate").output().expect("run cli");
    assert!(!out.status.success());
}

#[test]
fn train_then_evaluate_round_trip() {
    let dir = std::env::temp_dir();
    let model = dir.join("eventhit_cli_test.evht");
    let model_s = model.to_str().unwrap().to_string();

    let out = cli()
        .args([
            "train", "--task", "TA10", "--scale", "0.08", "--seed", "3", "--out", &model_s,
        ])
        .output()
        .expect("run train");
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model.exists());

    let out = cli()
        .args([
            "evaluate", "--task", "TA10", "--scale", "0.08", "--seed", "3", "--model", &model_s,
            "--c", "0.9", "--alpha", "0.5",
        ])
        .output()
        .expect("run evaluate");
    assert!(
        out.status.success(),
        "evaluate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REC "), "{stdout}");
    assert!(stdout.contains("expense"), "{stdout}");

    let _ = std::fs::remove_file(model);
}
