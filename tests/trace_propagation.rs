//! End-to-end decision tracing: every `SubmitTraced` batch must get its
//! client-assigned trace id echoed back verbatim on `TracedDecisions`
//! (the client verifies the echo on every reply), the traced path must
//! stay bit-identical to the in-process `run_lanes` baseline at 1 and 4
//! workers — including across a durable kill-and-resume — and the
//! serving telemetry fingerprint under the manual clock must be
//! bit-identical across worker counts.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

use eventhit::core::experiment::{ExperimentConfig, TaskRun};
use eventhit::core::model::EventHit;
use eventhit::core::multi::{run_lanes, LaneDecision, StreamLane};
use eventhit::core::pipeline::{ConformalState, Strategy};
use eventhit::core::streaming::OnlinePredictor;
use eventhit::core::tasks::task;
use eventhit::nn::matrix::Matrix;
use eventhit::parallel::{with_workers, Pool};
use eventhit::serve::convert::decision_from_wire;
use eventhit::serve::{DurableOptions, ServeClient, ServeConfig, Server};
use eventhit::telemetry::Telemetry;

struct Trained {
    model: EventHit,
    state: ConformalState,
    features: Matrix,
}

fn trained() -> &'static Trained {
    static RUN: OnceLock<Trained> = OnceLock::new();
    RUN.get_or_init(|| {
        let run = TaskRun::execute(&task("TA10").unwrap(), &ExperimentConfig::quick(77));
        Trained {
            model: run.model,
            state: run.state,
            features: run.features,
        }
    })
}

const STRATEGY: Strategy = Strategy::Ehcr { c: 0.9, alpha: 0.5 };

fn predictor() -> OnlinePredictor {
    let t = trained();
    OnlinePredictor::new(t.model.clone(), t.state.clone(), STRATEGY)
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("evtrace-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spawn_server(cfg: ServeConfig, sessions: usize, workers: usize) -> (SocketAddr, JoinHandle<()>) {
    let server = Server::bind(cfg, Box::new(|_| predictor())).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || {
        server.serve_sessions(sessions, &Pool::new(workers));
    });
    (addr, handle)
}

/// A deterministic, never-zero trace id for a `(stream, batch)` pair.
fn trace_for(stream: u32, round: usize) -> u64 {
    ((stream as u64 + 1) << 32) | (round as u64 + 1)
}

/// Submits `features[at..hi]` on `stream` with a trace id; the client
/// verifies the echoed id matches before returning. Decisions append to
/// `out`.
fn feed_traced(
    client: &mut ServeClient,
    stream: u32,
    features: &Matrix,
    at: usize,
    hi: usize,
    trace: u64,
    out: &mut Vec<LaneDecision>,
) {
    let dim = features.cols() as u32;
    let mut data = Vec::with_capacity((hi - at) * dim as usize);
    for r in at..hi {
        data.extend_from_slice(features.row(r));
    }
    let decisions = client
        .submit_traced(stream, trace, dim, data)
        .expect("submit_traced I/O (echo verified by the client)")
        .expect_ok("submit_traced");
    out.extend(decisions.iter().map(|d| LaneDecision {
        stream_id: stream as usize,
        decision: decision_from_wire(d),
    }));
}

/// The in-process baseline the traced wire path must reproduce
/// bit-for-bit.
fn baseline(froms: &[usize], workers: usize) -> Vec<LaneDecision> {
    let t = trained();
    let lanes: Vec<StreamLane> = froms
        .iter()
        .enumerate()
        .map(|(i, &from)| StreamLane {
            stream_id: i,
            predictor: predictor(),
            features: t.features.clone(),
            from,
        })
        .collect();
    with_workers(workers, || run_lanes(lanes, &Pool::current()))
}

/// Two concurrent sessions, one traced stream each: every batch carries
/// a distinct trace id, every reply's echo is verified, and the merged
/// decisions must equal the uninterrupted in-process baseline.
fn traced_loopback_scenario(workers: usize) {
    let t = trained();
    let froms = [0usize, 11];
    let batch = 97;
    let expected = baseline(&froms, workers);
    assert!(!expected.is_empty(), "baseline produced no decisions");
    assert!(t.features.rows() > batch, "need at least two batches");

    let (addr, handle) = spawn_server(ServeConfig::default(), froms.len(), workers);
    let clients: Vec<JoinHandle<Vec<LaneDecision>>> = froms
        .iter()
        .enumerate()
        .map(|(i, &from)| {
            std::thread::spawn(move || {
                let t = trained();
                let mut client = ServeClient::connect(addr).expect("connect");
                let stream = i as u32;
                client.open_stream(stream).unwrap().expect_ok("open");
                let mut out = Vec::new();
                let mut at = from;
                let mut round = 0usize;
                while at < t.features.rows() {
                    let hi = (at + batch).min(t.features.rows());
                    feed_traced(
                        &mut client,
                        stream,
                        &t.features,
                        at,
                        hi,
                        trace_for(stream, round),
                        &mut out,
                    );
                    at = hi;
                    round += 1;
                }
                client.close_stream(stream).unwrap().expect_ok("close");
                out
            })
        })
        .collect();
    let mut served: Vec<LaneDecision> = clients
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    handle.join().expect("server thread");

    served.sort_by_key(|d| (d.decision.anchor, d.stream_id));
    assert_eq!(
        served, expected,
        "traced decisions must be bit-identical to run_lanes at {workers} workers"
    );
}

#[test]
fn traced_decisions_echo_and_match_run_lanes_at_1_worker() {
    traced_loopback_scenario(1);
}

#[test]
fn traced_decisions_echo_and_match_run_lanes_at_4_workers() {
    traced_loopback_scenario(4);
}

/// Traced serving across a durable kill-and-resume: the server vanishes
/// mid-serve, a new one recovers the lanes from disk, the client resumes
/// and keeps submitting traced batches — echoes verified throughout, and
/// the combined decision stream bit-identical to the baseline.
fn traced_kill_and_resume_scenario(workers: usize) {
    let t = trained();
    let rows = t.features.rows();
    let froms = [0usize, 11];
    let batch = 97;
    let expected = baseline(&froms, workers);

    let rounds = rows.div_ceil(batch);
    let kill_round = (rounds / 2).clamp(1, rounds - 1);
    let dir = fresh_dir(&format!("kill{workers}"));
    let mut opts = DurableOptions::new(&dir);
    opts.snapshot_every = 24;
    let cfg = ServeConfig {
        durable: Some(opts),
        ..ServeConfig::default()
    };

    // Phase A: traced serving until the kill round, then an abrupt FIN.
    let mut served: Vec<LaneDecision> = Vec::new();
    let mut cursors = froms;
    let mut acked = [0u64; 2];
    let mut round = 0usize;
    let (addr, handle) = spawn_server(cfg.clone(), 1, workers);
    {
        let mut client = ServeClient::connect(addr).expect("connect A");
        for s in 0..froms.len() as u32 {
            client.open_stream(s).unwrap().expect_ok("open");
        }
        while round < kill_round {
            for (i, cursor) in cursors.iter_mut().enumerate() {
                if *cursor >= rows {
                    continue;
                }
                let hi = (*cursor + batch).min(rows);
                feed_traced(
                    &mut client,
                    i as u32,
                    &t.features,
                    *cursor,
                    hi,
                    trace_for(i as u32, round),
                    &mut served,
                );
                acked[i] += (hi - *cursor) as u64;
                *cursor = hi;
            }
            round += 1;
        }
    } // dropped: the "kill"; streams left open
    handle.join().expect("server A thread");

    // Phase B: recover, resume, finish — still traced.
    let (addr, handle) = spawn_server(cfg, 1, workers);
    let mut client = ServeClient::connect(addr).expect("connect B");
    for (i, &last) in acked.iter().enumerate() {
        let next = client
            .resume_stream(i as u32, last)
            .expect("resume I/O")
            .expect_ok("resume");
        assert_eq!(next, last, "stream {i}: every batch was acked");
    }
    loop {
        let mut progressed = false;
        for (i, cursor) in cursors.iter_mut().enumerate() {
            if *cursor >= rows {
                continue;
            }
            progressed = true;
            let hi = (*cursor + batch).min(rows);
            feed_traced(
                &mut client,
                i as u32,
                &t.features,
                *cursor,
                hi,
                trace_for(i as u32, round),
                &mut served,
            );
            *cursor = hi;
        }
        round += 1;
        if !progressed {
            break;
        }
    }
    for s in 0..froms.len() as u32 {
        client.close_stream(s).unwrap().expect_ok("close");
    }
    drop(client);
    handle.join().expect("server B thread");

    served.sort_by_key(|d| (d.decision.anchor, d.stream_id));
    assert_eq!(
        served, expected,
        "traced decisions across the kill must match the baseline at {workers} workers"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_ids_survive_durable_kill_and_resume_at_1_worker() {
    traced_kill_and_resume_scenario(1);
}

#[test]
fn trace_ids_survive_durable_kill_and_resume_at_4_workers() {
    traced_kill_and_resume_scenario(4);
}

/// Runs two strictly sequential sessions (joined between servers so the
/// `serve.session` spans can never interleave) against one manual-clock
/// recorder, and returns the canonical telemetry fingerprint.
fn telemetry_scenario(workers: usize) -> u64 {
    let t = trained();
    let rows = t.features.rows().min(600);
    let batch = 97;
    let telemetry = Arc::new(Telemetry::with_manual_clock());

    for session in 0..2u64 {
        let server = Server::bind_with_telemetry(
            ServeConfig::default(),
            Box::new(|_| predictor()),
            Arc::clone(&telemetry),
        )
        .expect("bind");
        let addr = server.local_addr().expect("local addr");
        let handle = std::thread::spawn(move || {
            server.serve_sessions(1, &Pool::new(workers));
        });
        let mut client = ServeClient::connect(addr).expect("connect");
        for s in 0..2u32 {
            client.open_stream(s).unwrap().expect_ok("open");
        }
        let mut out = Vec::new();
        let mut at = 0usize;
        let mut round = 0usize;
        while at < rows {
            let hi = (at + batch).min(rows);
            for s in 0..2u32 {
                // Stream 0 traced, stream 1 plain — both shapes must
                // fingerprint identically across worker counts.
                if s == 0 {
                    feed_traced(
                        &mut client,
                        s,
                        &t.features,
                        at,
                        hi,
                        trace_for(s, round) + session,
                        &mut out,
                    );
                } else {
                    let dim = t.features.cols() as u32;
                    let mut data = Vec::with_capacity((hi - at) * dim as usize);
                    for r in at..hi {
                        data.extend_from_slice(t.features.row(r));
                    }
                    client
                        .submit(s, dim, data)
                        .expect("submit I/O")
                        .expect_ok("submit");
                }
            }
            at = hi;
            round += 1;
        }
        // The live metrics plane must be queryable mid-session and carry
        // the SLO plus stage series.
        let metrics = client.metrics().expect("metrics I/O");
        let slo = metrics
            .slos
            .iter()
            .find(|s| s.name == "serve.decision_seconds")
            .expect("registered serving SLO present in MetricsReply");
        assert!(slo.total > 0, "SLO series saw decisions");
        assert!(
            metrics
                .series
                .iter()
                .any(|s| s.name == "serve.stage_seconds"),
            "stage series present in MetricsReply"
        );
        for s in 0..2u32 {
            client.close_stream(s).unwrap().expect_ok("close");
        }
        drop(client);
        handle.join().expect("server thread");
    }

    let snap = telemetry.snapshot();
    assert!(snap.counter("serve.decisions").unwrap_or(0) > 0);
    assert!(
        !snap.slow.is_empty(),
        "slow-decision log retained entries under the manual clock"
    );
    snap.fingerprint()
}

#[test]
fn telemetry_fingerprint_is_bit_identical_at_1_and_4_workers() {
    assert_eq!(
        telemetry_scenario(1),
        telemetry_scenario(4),
        "serving telemetry must fingerprint identically across worker counts"
    );
}
