//! Integration check of Theorems 4.2 and 5.2 on the *actual* pipeline:
//! conformal calibration fitted on EventHit's calibration split must bound
//! the miss rate / cover the interval endpoints on the held-out test split.
//!
//! The guarantees are marginal, so each assertion pools several independent
//! trials (different streams, features, model seeds) and allows a small
//! finite-sample / temporal-split tolerance.

use eventhit::core::experiment::{ExperimentConfig, TaskRun};
use eventhit::core::infer::raw_interval;
use eventhit::core::tasks::task;

fn runs() -> Vec<TaskRun> {
    (0..3)
        .map(|i| {
            let cfg = ExperimentConfig {
                scale: 0.2,
                ..ExperimentConfig::quick(100 + i)
            };
            TaskRun::execute(&task("TA10").unwrap(), &cfg)
        })
        .collect()
}

#[test]
fn c_classify_miss_rate_is_bounded() {
    let runs = runs();
    for &c in &[0.7, 0.9, 0.95] {
        let mut misses = 0usize;
        let mut positives = 0usize;
        for run in &runs {
            for rec in &run.test {
                if !rec.labels[0].present {
                    continue;
                }
                positives += 1;
                if !run.state.classifier(0).predict(rec.scores[0].b, c) {
                    misses += 1;
                }
            }
        }
        assert!(
            positives > 20,
            "need enough positives to test ({positives})"
        );
        let miss_rate = misses as f64 / positives as f64;
        // Tolerance: marginal guarantee + temporal-split drift + noise.
        assert!(
            miss_rate <= (1.0 - c) + 0.10,
            "c={c}: miss rate {miss_rate} badly exceeds bound {}",
            1.0 - c
        );
    }
}

#[test]
fn c_regress_endpoint_coverage_holds() {
    let runs = runs();
    for &alpha in &[0.5, 0.9] {
        let mut start_cov = 0usize;
        let mut end_cov = 0usize;
        let mut positives = 0usize;
        for run in &runs {
            for rec in &run.test {
                let label = &rec.labels[0];
                if !label.present {
                    continue;
                }
                positives += 1;
                let (s_hat, e_hat) = raw_interval(&rec.scores[0], 0.5);
                let (qs, qe) = run.state.interval_calibration(0).quantiles(alpha);
                if (label.start as f64 - s_hat as f64).abs() <= qs {
                    start_cov += 1;
                }
                if (label.end as f64 - e_hat as f64).abs() <= qe {
                    end_cov += 1;
                }
            }
        }
        assert!(positives > 20);
        let s_rate = start_cov as f64 / positives as f64;
        let e_rate = end_cov as f64 / positives as f64;
        assert!(
            s_rate >= alpha - 0.12,
            "alpha={alpha}: start coverage {s_rate}"
        );
        assert!(
            e_rate >= alpha - 0.12,
            "alpha={alpha}: end coverage {e_rate}"
        );
    }
}

#[test]
fn widening_alpha_never_shrinks_the_relay() {
    let run = &runs()[0];
    for rec in run.test.iter().take(50) {
        let mut prev_frames = 0u64;
        for alpha in [0.1, 0.5, 0.9] {
            let p = run.state.predict(
                rec,
                &eventhit::core::pipeline::Strategy::Ehr { tau1: 0.0, alpha },
            )[0];
            assert!(p.frames() >= prev_frames, "relay must grow with alpha");
            prev_frames = p.frames();
        }
    }
}
