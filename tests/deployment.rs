//! Deployment-path integration: train → persist → reload → stream frames
//! online → relay. This is the path a real adopter takes, exercising
//! `model_io`, `streaming`, and `marshal` together.

use eventhit::core::experiment::{ExperimentConfig, TaskRun};
use eventhit::core::model_io;
use eventhit::core::pipeline::Strategy;
use eventhit::core::streaming::OnlinePredictor;
use eventhit::core::tasks::task;

#[test]
fn train_save_load_stream_round_trip() {
    let cfg = ExperimentConfig {
        scale: 0.15,
        ..ExperimentConfig::quick(91)
    };
    let mut run = TaskRun::execute(&task("TA10").unwrap(), &cfg);
    let strategy = Strategy::Ehcr { c: 0.9, alpha: 0.5 };

    // Persist the trained model to bytes and reload it.
    let mut blob = Vec::new();
    model_io::save(&mut run.model, &mut blob).expect("save");
    let restored = model_io::load(&mut blob.as_slice()).expect("load");

    // Drive both the original and the restored model through the online
    // predictor over the same frames; decisions must be identical.
    let features = run.features.clone();
    let mut original = OnlinePredictor::new(run.model, run.state.clone(), strategy);
    let mut reloaded = OnlinePredictor::new(restored, run.state.clone(), strategy);

    let start = (features.rows() * 3) / 4;
    let a = original.run_over(&features, start);
    let b = reloaded.run_over(&features, start);
    assert!(!a.is_empty(), "online predictor should emit decisions");
    assert_eq!(a, b, "persisted model must behave identically online");
}

#[test]
fn online_decisions_respect_conformal_knobs() {
    let cfg = ExperimentConfig {
        scale: 0.15,
        ..ExperimentConfig::quick(92)
    };
    let run = TaskRun::execute(&task("TA11").unwrap(), &cfg);
    let features = run.features.clone();
    let state = run.state.clone();

    // Conservative vs permissive configuration of the SAME model.
    let model_bytes = {
        let mut run = run;
        let mut blob = Vec::new();
        model_io::save(&mut run.model, &mut blob).unwrap();
        blob
    };
    let frames = |strategy: Strategy| -> u64 {
        let model = model_io::load(&mut model_bytes.as_slice()).unwrap();
        let mut online = OnlinePredictor::new(model, state.clone(), strategy);
        online
            .run_over(&features, 0)
            .iter()
            .flat_map(|d| d.predictions.iter().map(|p| p.frames()))
            .sum()
    };

    let conservative = frames(Strategy::Ehcr { c: 0.6, alpha: 0.2 });
    let permissive = frames(Strategy::Ehcr {
        c: 0.99,
        alpha: 0.9,
    });
    assert!(
        permissive >= conservative,
        "higher (c, alpha) must never relay fewer frames: {permissive} vs {conservative}"
    );
}
