//! 512-stream fleet soak over a sharded, durable loopback server.
//!
//! The scale-out claim under test: partitioning stream ownership across
//! shards is invisible in the decisions. Every (shards, workers)
//! configuration in the matrix must serve the whole fleet bit-identical
//! to the in-process `run_lanes` baseline — including streams that
//! disconnect mid-soak and `Resume` through the durable path, one per
//! shard, so the per-shard journal directories are exercised too.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::OnceLock;
use std::thread::JoinHandle;

use eventhit::core::experiment::{ExperimentConfig, TaskRun};
use eventhit::core::model::EventHit;
use eventhit::core::multi::{run_lanes, LaneDecision, StreamLane};
use eventhit::core::pipeline::{ConformalState, Strategy};
use eventhit::core::streaming::OnlinePredictor;
use eventhit::core::tasks::task;
use eventhit::nn::matrix::Matrix;
use eventhit::parallel::{with_workers, Pool};
use eventhit::serve::convert::decision_from_wire;
use eventhit::serve::fleet::stream_row;
use eventhit::serve::{DurableOptions, Response, ServeClient, ServeConfig, Server, ShardRouter};

const STREAMS: u32 = 512;
const BATCH: usize = 64;
const ROUNDS: usize = 10;
/// Frames each synthetic stream submits over the soak.
const FRAMES: usize = BATCH * ROUNDS;
const STRATEGY: Strategy = Strategy::Ehcr { c: 0.9, alpha: 0.5 };

/// One quick training run shared by every soak in this file; `rows` is
/// the shared feature pool the synthetic fleet wraps (see
/// [`stream_row`]).
struct Trained {
    model: EventHit,
    state: ConformalState,
    rows: Vec<Vec<f32>>,
}

fn trained() -> &'static Trained {
    static RUN: OnceLock<Trained> = OnceLock::new();
    RUN.get_or_init(|| {
        let run = TaskRun::execute(&task("TA10").unwrap(), &ExperimentConfig::quick(77));
        let rows = (0..run.features.rows())
            .map(|r| run.features.row(r).to_vec())
            .collect();
        Trained {
            model: run.model,
            state: run.state,
            rows,
        }
    })
}

fn predictor() -> OnlinePredictor {
    let t = trained();
    OnlinePredictor::new(t.model.clone(), t.state.clone(), STRATEGY)
}

/// The in-process `run_lanes` truth for the whole 512-stream fleet,
/// verified worker-invariant, computed once.
fn baseline() -> &'static Vec<LaneDecision> {
    static BASE: OnceLock<Vec<LaneDecision>> = OnceLock::new();
    BASE.get_or_init(|| {
        let t = trained();
        let lanes = || -> Vec<StreamLane> {
            (0..STREAMS)
                .map(|s| StreamLane {
                    stream_id: s as usize,
                    predictor: predictor(),
                    features: Matrix::from_rows(
                        &(0..FRAMES)
                            .map(|r| stream_row(&t.rows, s, r).to_vec())
                            .collect::<Vec<_>>(),
                    ),
                    from: 0,
                })
                .collect()
        };
        let b1 = with_workers(1, || run_lanes(lanes(), &Pool::current()));
        let b4 = with_workers(4, || run_lanes(lanes(), &Pool::current()));
        assert_eq!(b1, b4, "run_lanes must be worker-invariant");
        assert!(
            b1.len() >= STREAMS as usize,
            "the soak must decide every stream at least once ({} decisions)",
            b1.len()
        );
        b1
    })
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("evfleet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Binds a durable sharded server and serves exactly two sessions (the
/// mid-soak flapper, then the main driver).
fn spawn_server(shards: u32, workers: usize, dir: &PathBuf) -> (SocketAddr, JoinHandle<()>) {
    let mut opts = DurableOptions::new(dir);
    opts.snapshot_every = 4096;
    let cfg = ServeConfig {
        shards,
        workers_per_shard: workers,
        max_streams: 2 * STREAMS,
        durable: Some(opts),
        ..ServeConfig::default()
    };
    let server = Server::bind(cfg, Box::new(|_| predictor())).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || {
        server.serve_sessions(2, &Pool::new(workers));
    });
    (addr, handle)
}

/// Submits round `round` of stream `s` and appends the decisions.
fn feed(
    client: &mut ServeClient,
    s: u32,
    rows: &[Vec<f32>],
    round: usize,
    out: &mut Vec<LaneDecision>,
) {
    let dim = rows[0].len() as u32;
    let mut data = Vec::with_capacity(BATCH * dim as usize);
    for r in round * BATCH..(round + 1) * BATCH {
        data.extend_from_slice(stream_row(rows, s, r));
    }
    let decisions = client
        .submit(s, dim, data)
        .expect("submit I/O")
        .expect_ok("submit");
    out.extend(decisions.iter().map(|d| LaneDecision {
        stream_id: s as usize,
        decision: decision_from_wire(d),
    }));
}

/// Drives the full fleet at one (shards, workers) configuration, with
/// one stream per shard disconnecting mid-soak and resuming durably, and
/// asserts the served decisions are bit-identical to [`baseline`].
fn fleet_soak(shards: u32, workers: usize) {
    let t = trained();
    let dir = fresh_dir(&format!("{shards}x{workers}"));
    let (addr, handle) = spawn_server(shards, workers, &dir);

    // One "flappy" stream per shard, so the disconnect/resume path runs
    // through every shard's journal directory.
    let router = ShardRouter::new(shards);
    let flappy: Vec<u32> = (0..shards)
        .map(|i| {
            (0..STREAMS)
                .find(|s| router.route(*s) == i)
                .expect("every shard owns at least one of 512 streams")
        })
        .collect();

    let mut served: Vec<LaneDecision> = Vec::new();
    let half = ROUNDS / 2;
    {
        let mut client = ServeClient::connect(addr).expect("connect flapper");
        for &s in &flappy {
            client.open_stream(s).expect("open I/O").expect_ok("open");
        }
        for round in 0..half {
            for &s in &flappy {
                feed(&mut client, s, &t.rows, round, &mut served);
            }
        }
    } // abrupt TCP FIN mid-soak: the durable lanes park, one per shard

    let mut client = ServeClient::connect(addr).expect("connect main");
    for &s in &flappy {
        let acked = (half * BATCH) as u64;
        // The flapper's FIN races the server-side park; a reconnecting
        // client retries `duplicate_stream` until the old session's
        // teardown releases the lane.
        let next = loop {
            match client.resume_stream(s, acked).expect("resume I/O") {
                Response::Ok(n) => break n,
                Response::Rejected(_) => std::thread::sleep(std::time::Duration::from_millis(2)),
            }
        };
        assert_eq!(
            next, acked,
            "stream {s}: every pre-disconnect batch was acked, so its \
             shard must resume exactly where the flapper stopped"
        );
    }
    for s in 0..STREAMS {
        if !flappy.contains(&s) {
            client.open_stream(s).expect("open I/O").expect_ok("open");
        }
    }
    for round in 0..ROUNDS {
        for s in 0..STREAMS {
            if round < half && flappy.contains(&s) {
                continue; // already fed by the flapper session
            }
            feed(&mut client, s, &t.rows, round, &mut served);
        }
    }
    for s in 0..STREAMS {
        client
            .close_stream(s)
            .expect("close I/O")
            .expect_ok("close");
    }
    drop(client);
    handle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);

    // Same global order as run_lanes, then bit-for-bit equality.
    served.sort_by_key(|d| (d.decision.anchor, d.stream_id));
    assert_eq!(
        &served,
        baseline(),
        "{shards} shard(s) x {workers} worker(s) diverged from run_lanes"
    );
}

#[test]
fn fleet_soak_1_shard_1_worker() {
    fleet_soak(1, 1);
}

#[test]
fn fleet_soak_1_shard_4_workers() {
    fleet_soak(1, 4);
}

#[test]
fn fleet_soak_4_shards_1_worker() {
    fleet_soak(4, 1);
}

#[test]
fn fleet_soak_4_shards_4_workers() {
    fleet_soak(4, 4);
}
