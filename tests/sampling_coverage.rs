//! Conformal coverage under content-adaptive sampling.
//!
//! Gating perturbs the trajectories the model scores: skipped frames
//! leave the window staler, carried anchors reuse the previous anchor's
//! scores, and the adaptive policy shrinks the window while the stream
//! is quiet. As with the int8 lane, the system's answer is
//! *recalibration*: [`TaskRun::state_for_sampling`] replays the
//! identical sampling trajectory over the calibration split (simulated
//! by `sampled_records`, bit-for-bit the deployed behaviour) and refits
//! the conformal state on those gated scores, so the nonconformity
//! quantiles come from the same distribution the deployed gated lane
//! produces.
//!
//! This suite pools several independent runs and pins both absolute
//! validity (the C-CLASSIFY miss bound) and relative validity: the
//! gated lane's empirical coverage must track the ungated lane's within
//! ±1% — the workspace's standard lane-equivalence tolerance (see
//! `quantized_coverage.rs`).

use eventhit::core::experiment::{ExperimentConfig, TaskRun};
use eventhit::core::infer::ScoredRecord;
use eventhit::core::pipeline::ConformalState;
use eventhit::core::sampling::SamplingPolicy;
use eventhit::core::tasks::task;
use eventhit::core::InferenceLane;

/// One task executed once, with the ungated state/test plus each gated
/// policy's recalibrated state and gated test scores.
struct GatedRun {
    base_state: ConformalState,
    base_test: Vec<ScoredRecord>,
    gated: Vec<(ConformalState, Vec<ScoredRecord>)>,
}

/// The policies whose coverage the suite pins: a conservative delta
/// gate (below the feature noise floor, so event frames still reach the
/// window) and the pure query-aware-windowing point (threshold 0 never
/// gates or carries; all effect is the shrunken quiet-stream window).
fn policies() -> Vec<SamplingPolicy> {
    vec![
        SamplingPolicy::parse("delta:0.01").unwrap(),
        SamplingPolicy::parse("adaptive:0:4").unwrap(),
    ]
}

fn gated_runs() -> Vec<GatedRun> {
    // Several tasks / seeds so the marginal guarantees are pooled over
    // independent streams, features, and model initialisations.
    [("TA10", 100u64), ("TA10", 101), ("TA3", 102)]
        .iter()
        .map(|&(id, seed)| {
            let cfg = ExperimentConfig {
                scale: 0.4,
                ..ExperimentConfig::quick(seed)
            };
            let run = TaskRun::execute(&task(id).unwrap(), &cfg);
            let gated = policies()
                .iter()
                .map(|p| {
                    (
                        run.state_for_sampling(p, InferenceLane::Exact),
                        run.sampled_test(p, InferenceLane::Exact),
                    )
                })
                .collect();
            GatedRun {
                base_state: run.state,
                base_test: run.test,
                gated,
            }
        })
        .collect()
}

/// Pooled C-CLASSIFY miss rate of event 0 at confidence `c`.
fn miss_rate(runs: &[(&ConformalState, &[ScoredRecord])], c: f64) -> (f64, usize) {
    let mut misses = 0usize;
    let mut positives = 0usize;
    for (state, test) in runs {
        for rec in test.iter() {
            if !rec.labels[0].present {
                continue;
            }
            positives += 1;
            if !state.classifier(0).predict(rec.scores[0].b, c) {
                misses += 1;
            }
        }
    }
    (misses as f64 / positives.max(1) as f64, positives)
}

#[test]
fn gated_miss_rate_is_bounded_and_tracks_ungated() {
    let runs = gated_runs();
    let base: Vec<_> = runs
        .iter()
        .map(|r| (&r.base_state, r.base_test.as_slice()))
        .collect();
    let (base_rate, base_positives) = miss_rate(&base, 0.9);
    assert!(
        base_positives > 20,
        "need enough positives ({base_positives})"
    );
    for (pi, policy) in policies().iter().enumerate() {
        let gated: Vec<_> = runs
            .iter()
            .map(|r| (&r.gated[pi].0, r.gated[pi].1.as_slice()))
            .collect();
        let (rate, positives) = miss_rate(&gated, 0.9);
        assert_eq!(
            positives,
            base_positives,
            "{}: gating must not change the test split",
            policy.label()
        );
        // Absolute validity on the gated lane, same tolerance as the
        // ungated harness in conformal_guarantees.rs.
        assert!(
            rate <= 0.1 + 0.10,
            "{}: gated miss rate {rate} badly exceeds the c=0.9 bound",
            policy.label()
        );
        // And relative validity: recalibration keeps the gated lane's
        // coverage within one percentage point of the ungated lane's.
        assert!(
            (rate - base_rate).abs() <= 0.01 + 1e-12,
            "{}: gated miss rate {rate} drifted from ungated {base_rate}",
            policy.label()
        );
    }
}

#[test]
fn gated_calibration_is_deterministic() {
    // The recalibration story rests on `sampled_records` being a pure
    // function of (model, features, policy): two simulations of the
    // same run must produce bit-identical gated scores.
    let cfg = ExperimentConfig {
        scale: 0.2,
        ..ExperimentConfig::quick(100)
    };
    let run = TaskRun::execute(&task("TA10").unwrap(), &cfg);
    for policy in policies() {
        let a = run.sampled_test(&policy, InferenceLane::Exact);
        let b = run.sampled_test(&policy, InferenceLane::Exact);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.anchor, y.anchor);
            for (sx, sy) in x.scores.iter().zip(&y.scores) {
                assert_eq!(
                    sx.b.to_bits(),
                    sy.b.to_bits(),
                    "gated simulation must be bit-deterministic"
                );
                assert!(
                    sx.theta
                        .iter()
                        .zip(&sy.theta)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "gated simulation must be bit-deterministic"
                );
            }
        }
    }
}
