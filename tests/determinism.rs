//! Reproducibility of the full pipeline: the same master seed must yield
//! bit-identical artefacts at every layer — synthetic stream, training
//! loss curve, and fitted conformal state. Golden values are pinned to
//! the in-repo xoshiro256++ generator, so any change to the RNG, the
//! seeding discipline, or the order in which components consume
//! randomness shows up here first.

use eventhit::core::experiment::{ExperimentConfig, TaskRun};
use eventhit::core::tasks::task;
use eventhit::video::stream::VideoStream;
use eventhit::video::synthetic::thumos;

fn quick_run(seed: u64) -> TaskRun {
    let cfg = ExperimentConfig {
        scale: 0.08,
        ..ExperimentConfig::quick(seed)
    };
    TaskRun::execute(&task("TA10").unwrap(), &cfg)
}

/// Synthetic stream generation is bit-stable: golden values for the
/// THUMOS profile at seed 1.
#[test]
fn synthetic_stream_golden_values() {
    let s = VideoStream::generate(&thumos(), 1);
    assert_eq!(s.len, 240_000);
    assert_eq!(s.classes.len(), 3);
    assert_eq!(s.instances.len(), 190);
    let first = &s.instances[0];
    assert_eq!(
        (first.class, first.interval.start, first.interval.end),
        (0, 4842, 4996)
    );
}

/// Same seed ⇒ identical stream instance-for-instance; different seed ⇒
/// a different realisation.
#[test]
fn synthetic_stream_is_seed_deterministic() {
    let a = VideoStream::generate(&thumos(), 3);
    let b = VideoStream::generate(&thumos(), 3);
    assert_eq!(a.len, b.len);
    assert_eq!(a.instances, b.instances);
    let c = VideoStream::generate(&thumos(), 4);
    assert_ne!(a.instances, c.instances);
}

/// Same seed ⇒ bit-identical training loss curve and final loss. This is
/// the strongest end-to-end reproducibility statement: it covers stream
/// generation, feature synthesis, model init, and the training shuffle.
#[test]
fn training_loss_curve_is_bit_identical() {
    let a = quick_run(21);
    let b = quick_run(21);
    assert_eq!(a.train_report.epoch_losses, b.train_report.epoch_losses);
    assert_eq!(
        a.train_report.final_loss.to_bits(),
        b.train_report.final_loss.to_bits()
    );
    // Sanity: the curve is non-trivial (training actually happened).
    assert!(a.train_report.epoch_losses.len() > 1);
    assert!(a.train_report.epoch_losses.iter().all(|l| l.is_finite()));
}

/// Same seed ⇒ identical fitted conformal state: classifier calibration
/// sizes, p-values on a probe score, and interval quantiles.
#[test]
fn conformal_state_is_bit_identical() {
    let a = quick_run(22);
    let b = quick_run(22);
    assert_eq!(a.state.calibration_sizes(), b.state.calibration_sizes());
    for k in 0..a.state.num_events() {
        for probe in [0.1, 0.5, 0.9] {
            assert_eq!(
                a.state.classifier(k).p_value(probe).to_bits(),
                b.state.classifier(k).p_value(probe).to_bits(),
                "p-value diverged at event {k}, probe {probe}"
            );
        }
        for alpha in [0.5, 0.9, 0.95] {
            let qa = a.state.interval_calibration(k).quantiles(alpha);
            let qb = b.state.interval_calibration(k).quantiles(alpha);
            assert_eq!(
                (qa.0.to_bits(), qa.1.to_bits()),
                (qb.0.to_bits(), qb.1.to_bits()),
                "interval quantiles diverged at event {k}, alpha {alpha}"
            );
        }
    }
}

/// Evaluation outcomes are a pure function of the run: two identically
/// seeded runs agree on every reported metric.
#[test]
fn evaluation_outcomes_are_identical() {
    use eventhit::core::pipeline::Strategy;
    let a = quick_run(23);
    let b = quick_run(23);
    for s in [
        Strategy::Eho { tau1: 0.5 },
        Strategy::Ehc { c: 0.9 },
        Strategy::Ehcr { c: 0.9, alpha: 0.9 },
    ] {
        let oa = a.evaluate(&s);
        let ob = b.evaluate(&s);
        assert_eq!(oa.rec.to_bits(), ob.rec.to_bits(), "{s:?}");
        assert_eq!(oa.spl.to_bits(), ob.spl.to_bits(), "{s:?}");
        assert_eq!(oa.frames_relayed, ob.frames_relayed, "{s:?}");
    }
}
