//! Reproducibility of the full pipeline: the same master seed must yield
//! bit-identical artefacts at every layer — synthetic stream, training
//! loss curve, and fitted conformal state. Golden values are pinned to
//! the in-repo xoshiro256++ generator, so any change to the RNG, the
//! seeding discipline, or the order in which components consume
//! randomness shows up here first.

use eventhit::core::experiment::{ExperimentConfig, TaskRun};
use eventhit::core::tasks::task;
use eventhit::video::stream::VideoStream;
use eventhit::video::synthetic::thumos;

fn quick_run(seed: u64) -> TaskRun {
    let cfg = ExperimentConfig {
        scale: 0.08,
        ..ExperimentConfig::quick(seed)
    };
    TaskRun::execute(&task("TA10").unwrap(), &cfg)
}

/// Synthetic stream generation is bit-stable: golden values for the
/// THUMOS profile at seed 1.
#[test]
fn synthetic_stream_golden_values() {
    let s = VideoStream::generate(&thumos(), 1);
    assert_eq!(s.len, 240_000);
    assert_eq!(s.classes.len(), 3);
    assert_eq!(s.instances.len(), 190);
    let first = &s.instances[0];
    assert_eq!(
        (first.class, first.interval.start, first.interval.end),
        (0, 4842, 4996)
    );
}

/// Same seed ⇒ identical stream instance-for-instance; different seed ⇒
/// a different realisation.
#[test]
fn synthetic_stream_is_seed_deterministic() {
    let a = VideoStream::generate(&thumos(), 3);
    let b = VideoStream::generate(&thumos(), 3);
    assert_eq!(a.len, b.len);
    assert_eq!(a.instances, b.instances);
    let c = VideoStream::generate(&thumos(), 4);
    assert_ne!(a.instances, c.instances);
}

/// Same seed ⇒ bit-identical training loss curve and final loss. This is
/// the strongest end-to-end reproducibility statement: it covers stream
/// generation, feature synthesis, model init, and the training shuffle.
#[test]
fn training_loss_curve_is_bit_identical() {
    let a = quick_run(21);
    let b = quick_run(21);
    assert_eq!(a.train_report.epoch_losses, b.train_report.epoch_losses);
    assert_eq!(
        a.train_report.final_loss.to_bits(),
        b.train_report.final_loss.to_bits()
    );
    // Sanity: the curve is non-trivial (training actually happened).
    assert!(a.train_report.epoch_losses.len() > 1);
    assert!(a.train_report.epoch_losses.iter().all(|l| l.is_finite()));
}

/// Same seed ⇒ identical fitted conformal state: classifier calibration
/// sizes, p-values on a probe score, and interval quantiles.
#[test]
fn conformal_state_is_bit_identical() {
    let a = quick_run(22);
    let b = quick_run(22);
    assert_eq!(a.state.calibration_sizes(), b.state.calibration_sizes());
    for k in 0..a.state.num_events() {
        for probe in [0.1, 0.5, 0.9] {
            assert_eq!(
                a.state.classifier(k).p_value(probe).to_bits(),
                b.state.classifier(k).p_value(probe).to_bits(),
                "p-value diverged at event {k}, probe {probe}"
            );
        }
        for alpha in [0.5, 0.9, 0.95] {
            let qa = a.state.interval_calibration(k).quantiles(alpha);
            let qb = b.state.interval_calibration(k).quantiles(alpha);
            assert_eq!(
                (qa.0.to_bits(), qa.1.to_bits()),
                (qb.0.to_bits(), qb.1.to_bits()),
                "interval quantiles diverged at event {k}, alpha {alpha}"
            );
        }
    }
}

/// A fault trace is a pure function of `(config, seed)`: replaying the
/// same seed reproduces every attempt outcome bit-for-bit, and a
/// different seed realises a different trace.
#[test]
fn fault_traces_replay_bit_identically() {
    use eventhit::core::faults::{FaultConfig, FaultInjector};

    let cfg = FaultConfig::lossy();
    let drive = |seed: u64| {
        let mut inj = FaultInjector::new(cfg.clone(), seed);
        for _ in 0..500 {
            inj.attempt(2.0);
        }
        inj.trace.fingerprint()
    };
    assert_eq!(drive(77), drive(77));
    assert_ne!(drive(77), drive(78));
}

/// The full resilient marshalling path under correlated outages: the run
/// completes without panicking, reports availability below 1.0,
/// attributes every ground-truth instance to exactly one bucket, and
/// replaying the same seed yields a bit-identical fault trace, stats,
/// and report.
#[test]
fn faulted_marshalling_is_reproducible_and_accounted() {
    use eventhit::core::ci::CiConfig;
    use eventhit::core::faults::FaultConfig;
    use eventhit::core::marshal::Marshaller;
    use eventhit::core::pipeline::Strategy;
    use eventhit::core::report::ResilienceReport;
    use eventhit::core::resilient::{ResilienceConfig, ResilientCiClient};
    use eventhit::video::detector::StageModel;

    let run = quick_run(24);
    let stream = run.stream.clone();
    let features = run.features.clone();
    let from = run.window as u64;
    let to = stream.len;
    let mut m = Marshaller::new(
        run.model,
        run.state,
        Strategy::Ehcr { c: 0.9, alpha: 0.5 },
        run.window,
        run.horizon,
        CiConfig::default(),
    );

    let faults = FaultConfig {
        p_good_to_bad: 0.25,
        p_bad_to_good: 0.25,
        bad_loss: 1.0,
        transient_prob: 0.05,
        ..FaultConfig::reliable()
    };
    let mut go = || {
        let mut client = ResilientCiClient::new(
            faults.clone(),
            ResilienceConfig::default(),
            StageModel::new("ci", 1000.0),
            24,
        )
        .unwrap();
        m.run_resilient(&stream, &features, from, to, 30.0, &mut client)
            .unwrap()
    };

    let a = go();
    assert!(a.availability() < 1.0, "outages must degrade availability");
    assert_eq!(
        a.attribution.total(),
        a.ground_truth.len(),
        "every ground-truth instance lands in exactly one bucket"
    );

    let b = go();
    assert_eq!(a.fault_fingerprint, b.fault_fingerprint);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.attribution, b.attribution);
    assert_eq!(a.horizon_tags, b.horizon_tags);
    assert_eq!(
        ResilienceReport::from_stats(&a.stats, a.attribution).to_markdown(),
        ResilienceReport::from_stats(&b.stats, b.attribution).to_markdown()
    );
}

/// Under the manual clock, the telemetry trace is a pure function of the
/// run's inputs: replaying resilient marshalling plus an instrumented
/// queue simulation with the same seeds yields a bit-identical JSONL
/// export and FNV-1a fingerprint, while a different fault seed realises
/// a different trace.
#[test]
fn telemetry_trace_replays_bit_identically() {
    use std::sync::Arc;

    use eventhit::core::ci::CiConfig;
    use eventhit::core::ci_queue::{simulate_instrumented, QueueConfig, Submission};
    use eventhit::core::faults::FaultConfig;
    use eventhit::core::marshal::Marshaller;
    use eventhit::core::pipeline::Strategy;
    use eventhit::core::resilient::{ResilienceConfig, ResilientCiClient};
    use eventhit::telemetry::Telemetry;
    use eventhit::video::detector::StageModel;

    let faults = FaultConfig {
        transient_prob: 0.1,
        ..FaultConfig::reliable()
    };
    let subs: Vec<Submission> = (0..40)
        .map(|i| Submission {
            arrival_frame: i * 90,
            frames: 60,
        })
        .collect();

    let trace = |fault_seed: u64| {
        let run = quick_run(25);
        let stream = run.stream.clone();
        let features = run.features.clone();
        let from = run.window as u64;
        let to = stream.len;

        let tel = Arc::new(Telemetry::with_manual_clock());
        let mut m = Marshaller::new(
            run.model,
            run.state,
            Strategy::Ehcr { c: 0.9, alpha: 0.5 },
            run.window,
            run.horizon,
            CiConfig::default(),
        );
        m.set_telemetry(Arc::clone(&tel));
        let mut client = ResilientCiClient::new(
            faults.clone(),
            ResilienceConfig::default(),
            StageModel::new("ci", 1000.0),
            fault_seed,
        )
        .unwrap();
        client.set_telemetry(Arc::clone(&tel));
        m.run_resilient(&stream, &features, from, to, 30.0, &mut client)
            .unwrap();
        simulate_instrumented(&subs, &QueueConfig::default(), Some(&tel)).unwrap();

        let snap = tel.snapshot();
        (snap.to_jsonl(), snap.fingerprint())
    };

    let (jsonl_a, fp_a) = trace(24);
    let (jsonl_b, fp_b) = trace(24);
    assert_eq!(
        jsonl_a, jsonl_b,
        "telemetry JSONL must replay bit-identically"
    );
    assert_eq!(fp_a, fp_b);
    assert!(jsonl_a.contains("\"clock\":\"manual\""));
    assert!(jsonl_a.contains("marshal.run_resilient"));
    assert!(jsonl_a.contains("ciq.latency_seconds"));

    let (_, fp_c) = trace(26);
    assert_ne!(fp_a, fp_c, "a different fault seed must change the trace");
}

/// Evaluation outcomes are a pure function of the run: two identically
/// seeded runs agree on every reported metric.
#[test]
fn evaluation_outcomes_are_identical() {
    use eventhit::core::pipeline::Strategy;
    let a = quick_run(23);
    let b = quick_run(23);
    for s in [
        Strategy::Eho { tau1: 0.5 },
        Strategy::Ehc { c: 0.9 },
        Strategy::Ehcr { c: 0.9, alpha: 0.9 },
    ] {
        let oa = a.evaluate(&s);
        let ob = b.evaluate(&s);
        assert_eq!(oa.rec.to_bits(), ob.rec.to_bits(), "{s:?}");
        assert_eq!(oa.spl.to_bits(), ob.spl.to_bits(), "{s:?}");
        assert_eq!(oa.frames_relayed, ob.frames_relayed, "{s:?}");
    }
}
