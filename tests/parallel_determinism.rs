//! Thread-count invariance: every parallel path in the workspace must
//! produce bit-identical outputs for any worker count, including the
//! inline `workers = 1` path. The baseline is always the sequential
//! result; worker counts {2, 4, 8} are compared against it bit for bit
//! — loss curves, conformal quantiles, marshalling decisions, and
//! telemetry trace fingerprints.

use eventhit::core::experiment::{ExperimentConfig, TaskRun};
use eventhit::core::infer::{score_records, score_records_with};
use eventhit::core::multi::{run_lanes, LaneDecision, StreamLane};
use eventhit::core::pipeline::Strategy;
use eventhit::core::streaming::OnlinePredictor;
use eventhit::core::tasks::task;
use eventhit::core::tune::{search_with, Candidate, Objective};
use eventhit::parallel::{with_workers, Pool};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn quick_run(seed: u64) -> TaskRun {
    let cfg = ExperimentConfig {
        scale: 0.08,
        ..ExperimentConfig::quick(seed)
    };
    TaskRun::execute(&task("TA10").unwrap(), &cfg)
}

/// The full training pipeline — stream synthesis, feature generation,
/// model init, SGD — yields a bit-identical loss curve under every
/// worker count.
#[test]
fn loss_curve_is_worker_count_invariant() {
    let baseline = with_workers(1, || quick_run(31));
    for w in WORKER_COUNTS {
        let run = with_workers(w, || quick_run(31));
        assert_eq!(
            run.train_report.epoch_losses, baseline.train_report.epoch_losses,
            "loss curve diverged at {w} workers"
        );
        assert_eq!(
            run.train_report.final_loss.to_bits(),
            baseline.train_report.final_loss.to_bits()
        );
    }
}

/// Fitted conformal state — calibration sizes, p-values, and interval
/// quantiles — is invariant to the worker count used during the run.
#[test]
fn conformal_state_is_worker_count_invariant() {
    let baseline = with_workers(1, || quick_run(32));
    for w in [2usize, 4, 8] {
        let run = with_workers(w, || quick_run(32));
        assert_eq!(
            run.state.calibration_sizes(),
            baseline.state.calibration_sizes()
        );
        for k in 0..baseline.state.num_events() {
            for probe in [0.1, 0.5, 0.9] {
                assert_eq!(
                    run.state.classifier(k).p_value(probe).to_bits(),
                    baseline.state.classifier(k).p_value(probe).to_bits(),
                    "p-value diverged at event {k}, probe {probe}, {w} workers"
                );
            }
            for alpha in [0.5, 0.9, 0.95] {
                let qa = run.state.interval_calibration(k).quantiles(alpha);
                let qb = baseline.state.interval_calibration(k).quantiles(alpha);
                assert_eq!(
                    (qa.0.to_bits(), qa.1.to_bits()),
                    (qb.0.to_bits(), qb.1.to_bits()),
                    "quantiles diverged at event {k}, alpha {alpha}, {w} workers"
                );
            }
        }
    }
}

/// Marshalling decisions from the streaming predictor are identical
/// under every worker count.
#[test]
fn marshalling_decisions_are_worker_count_invariant() {
    let run = quick_run(33);
    let drive = |w: usize| {
        with_workers(w, || {
            let mut p = OnlinePredictor::new(
                run.model.clone(),
                run.state.clone(),
                Strategy::Ehcr { c: 0.9, alpha: 0.5 },
            );
            p.run_over(&run.features, run.window)
        })
    };
    let baseline = drive(1);
    assert!(!baseline.is_empty(), "the run must produce decisions");
    for w in [2usize, 4, 8] {
        assert_eq!(drive(w), baseline, "decisions diverged at {w} workers");
    }
}

/// The manual-clock telemetry trace of a full resilient-marshalling run
/// has the same fingerprint under every worker count: pool wall-clock
/// diagnostics live in a separate recorder and never touch the
/// pipeline's trace.
#[test]
fn telemetry_fingerprint_is_worker_count_invariant() {
    use std::sync::Arc;

    use eventhit::core::ci::CiConfig;
    use eventhit::core::faults::FaultConfig;
    use eventhit::core::marshal::Marshaller;
    use eventhit::core::resilient::{ResilienceConfig, ResilientCiClient};
    use eventhit::telemetry::Telemetry;
    use eventhit::video::detector::StageModel;

    let faults = FaultConfig {
        transient_prob: 0.1,
        ..FaultConfig::reliable()
    };
    let trace = |w: usize| {
        with_workers(w, || {
            let run = quick_run(34);
            let stream = run.stream.clone();
            let features = run.features.clone();
            let from = run.window as u64;
            let to = stream.len;

            let tel = Arc::new(Telemetry::with_manual_clock());
            let mut m = Marshaller::new(
                run.model,
                run.state,
                Strategy::Ehcr { c: 0.9, alpha: 0.5 },
                run.window,
                run.horizon,
                CiConfig::default(),
            );
            m.set_telemetry(Arc::clone(&tel));
            let mut client = ResilientCiClient::new(
                faults.clone(),
                ResilienceConfig::default(),
                StageModel::new("ci", 1000.0),
                34,
            )
            .unwrap();
            client.set_telemetry(Arc::clone(&tel));
            m.run_resilient(&stream, &features, from, to, 30.0, &mut client)
                .unwrap();
            let snap = tel.snapshot();
            (snap.to_jsonl(), snap.fingerprint())
        })
    };

    let (jsonl_1, fp_1) = trace(1);
    for w in [2usize, 4, 8] {
        let (jsonl_w, fp_w) = trace(w);
        assert_eq!(jsonl_w, jsonl_1, "telemetry JSONL diverged at {w} workers");
        assert_eq!(fp_w, fp_1);
    }
}

/// Batched inference on an explicit pool matches the sequential scorer
/// even when the batch size does not divide the record count.
#[test]
fn batched_inference_matches_sequential_for_odd_batches() {
    let run = quick_run(35);
    let records = &run.test_records;
    assert!(records.len() > 7, "need enough records for several batches");
    let baseline = score_records(&run.model, records, records.len());
    for w in WORKER_COUNTS {
        for batch in [1usize, 7, 13] {
            let got = score_records_with(&run.model, records, batch, &Pool::new(w));
            assert_eq!(got.len(), baseline.len());
            for (g, b) in got.iter().zip(&baseline) {
                assert_eq!(g.anchor, b.anchor);
                for (gs, bs) in g.scores.iter().zip(&b.scores) {
                    assert_eq!(gs.b.to_bits(), bs.b.to_bits(), "{w} workers, batch {batch}");
                    let gt: Vec<u32> = gs.theta.iter().map(|t| t.to_bits()).collect();
                    let bt: Vec<u32> = bs.theta.iter().map(|t| t.to_bits()).collect();
                    assert_eq!(gt, bt, "{w} workers, batch {batch}");
                }
            }
        }
    }
}

/// A strategy sweep evaluates its grid cells in parallel with results in
/// grid order, bit-identical for any pool.
#[test]
fn strategy_sweep_is_pool_invariant() {
    let run = quick_run(36);
    let strategies = [
        Strategy::Eho { tau1: 0.5 },
        Strategy::Ehc { c: 0.9 },
        Strategy::Ehcr { c: 0.9, alpha: 0.9 },
        Strategy::Ehcr {
            c: 0.95,
            alpha: 0.5,
        },
    ];
    let baseline = run.sweep_with(&strategies, &Pool::sequential());
    for w in [2usize, 4, 8] {
        let got = run.sweep_with(&strategies, &Pool::new(w));
        assert_eq!(got.len(), baseline.len());
        for ((gs, go), (bs, bo)) in got.iter().zip(&baseline) {
            assert_eq!(gs, bs, "grid order must be preserved at {w} workers");
            assert_eq!(go.rec.to_bits(), bo.rec.to_bits());
            assert_eq!(go.spl.to_bits(), bo.spl.to_bits());
            assert_eq!(go.frames_relayed, bo.frames_relayed);
        }
    }
}

/// Hyper-parameter search trains each grid cell on its own RNG
/// substream, so the ranked results are bit-identical for any pool.
#[test]
fn hyper_parameter_search_is_pool_invariant() {
    use eventhit::core::model::EventHitConfig;

    let run = quick_run(37);
    let cfg = EventHitConfig {
        input_dim: run.model.config().input_dim,
        window: run.window,
        horizon: run.horizon,
        num_events: run.model.config().num_events,
        hidden_dim: 8,
        shared_dim: 6,
        dropout: 0.0,
    };
    let candidates = vec![
        Candidate {
            beta: 1.0,
            gamma: 1.0,
            lr: 3e-3,
            epochs: 2,
        },
        Candidate {
            beta: 2.0,
            gamma: 0.5,
            lr: 1e-3,
            epochs: 2,
        },
        Candidate {
            beta: 0.5,
            gamma: 2.0,
            lr: 1e-2,
            epochs: 2,
        },
    ];
    let go = |pool: &Pool| {
        search_with(
            &candidates,
            &cfg,
            &run.train_records,
            &run.calib_records,
            11,
            Objective::RecMinusSpl { lambda: 1.0 },
            pool,
        )
    };
    let baseline = go(&Pool::sequential());
    for w in [2usize, 4, 8] {
        let got = go(&Pool::new(w));
        assert_eq!(got.len(), baseline.len());
        for (g, b) in got.iter().zip(&baseline) {
            assert_eq!(g.candidate, b.candidate, "ranking diverged at {w} workers");
            assert_eq!(g.score.to_bits(), b.score.to_bits());
        }
    }
}

/// Multi-stream lanes merge into one deterministic timeline: the same
/// decisions, in `(anchor, stream_id)` order, for any pool.
#[test]
fn multi_stream_lanes_merge_deterministically() {
    let run = quick_run(38);
    let lanes = || -> Vec<StreamLane> {
        (0..4usize)
            .map(|stream_id| StreamLane {
                stream_id,
                predictor: OnlinePredictor::new(
                    run.model.clone(),
                    run.state.clone(),
                    Strategy::Ehcr { c: 0.9, alpha: 0.5 },
                ),
                // Lanes stagger their start rows so they see different
                // frame sequences and produce offset anchors.
                features: run.features.clone(),
                from: run.window + stream_id * 16,
            })
            .collect()
    };
    let baseline: Vec<LaneDecision> = run_lanes(lanes(), &Pool::sequential());
    assert!(!baseline.is_empty(), "lanes must produce decisions");
    // The merged timeline is sorted by (anchor, stream_id).
    for pair in baseline.windows(2) {
        assert!(
            (pair[0].decision.anchor, pair[0].stream_id)
                <= (pair[1].decision.anchor, pair[1].stream_id)
        );
    }
    // Every lane contributed.
    for id in 0..4 {
        assert!(baseline.iter().any(|d| d.stream_id == id));
    }
    for w in [2usize, 4, 8] {
        assert_eq!(
            run_lanes(lanes(), &Pool::new(w)),
            baseline,
            "merged timeline diverged at {w} workers"
        );
    }
}
