//! Conformal coverage on the int8 quantized inference lane.
//!
//! The quantized fast lane perturbs every score by a small, bounded
//! quantization error. The system's answer is *recalibration*: the
//! conformal state served with the quantized lane is refitted from
//! calibration records re-scored on that lane
//! ([`TaskRun::state_for_lane`]), so the nonconformity quantiles are
//! computed from the same score distribution the deployed lane produces
//! and the split-conformal guarantee holds unchanged.
//!
//! This suite re-runs the coverage harness of `conformal_guarantees.rs`
//! on the quantized lane across several Table II tasks and additionally
//! pins the quantized lane's empirical coverage to the exact lane's
//! within a ±1% pooled tolerance.

use eventhit::core::experiment::{ExperimentConfig, TaskRun};
use eventhit::core::infer::{raw_interval, score_records_lane, ScoredRecord};
use eventhit::core::pipeline::ConformalState;
use eventhit::core::tasks::task;
use eventhit::core::InferenceLane;

/// One task executed once, with both lanes' test scores and conformal
/// states materialised.
struct LaneRun {
    exact_state: ConformalState,
    exact_test: Vec<ScoredRecord>,
    quant_state: ConformalState,
    quant_test: Vec<ScoredRecord>,
}

fn lane_runs() -> Vec<LaneRun> {
    // Several tasks / seeds so the marginal guarantees are pooled over
    // independent streams, features, and model initialisations.
    [("TA10", 100u64), ("TA10", 101), ("TA3", 102)]
        .iter()
        .map(|&(id, seed)| {
            let cfg = ExperimentConfig {
                scale: 0.2,
                ..ExperimentConfig::quick(seed)
            };
            let run = TaskRun::execute(&task(id).unwrap(), &cfg);
            let quant_state = run.state_for_lane(InferenceLane::Quantized);
            let quant_test =
                score_records_lane(&run.model, &run.test_records, 128, InferenceLane::Quantized);
            LaneRun {
                exact_state: run.state,
                exact_test: run.test,
                quant_state,
                quant_test,
            }
        })
        .collect()
}

/// Pooled C-CLASSIFY miss rate of event 0 at confidence `c` over one
/// lane's (state, test scores).
fn miss_rate(runs: &[(&ConformalState, &[ScoredRecord])], c: f64) -> (f64, usize) {
    let mut misses = 0usize;
    let mut positives = 0usize;
    for (state, test) in runs {
        for rec in test.iter() {
            if !rec.labels[0].present {
                continue;
            }
            positives += 1;
            if !state.classifier(0).predict(rec.scores[0].b, c) {
                misses += 1;
            }
        }
    }
    (misses as f64 / positives.max(1) as f64, positives)
}

/// Pooled C-REGRESS endpoint coverage (start, end) at level `alpha`.
fn endpoint_coverage(runs: &[(&ConformalState, &[ScoredRecord])], alpha: f64) -> (f64, f64) {
    let mut start_cov = 0usize;
    let mut end_cov = 0usize;
    let mut positives = 0usize;
    for (state, test) in runs {
        for rec in test.iter() {
            let label = &rec.labels[0];
            if !label.present {
                continue;
            }
            positives += 1;
            let (s_hat, e_hat) = raw_interval(&rec.scores[0], 0.5);
            let (qs, qe) = state.interval_calibration(0).quantiles(alpha);
            if (label.start as f64 - s_hat as f64).abs() <= qs {
                start_cov += 1;
            }
            if (label.end as f64 - e_hat as f64).abs() <= qe {
                end_cov += 1;
            }
        }
    }
    let n = positives.max(1) as f64;
    (start_cov as f64 / n, end_cov as f64 / n)
}

#[test]
fn quantized_lane_miss_rate_is_bounded_and_tracks_exact() {
    let runs = lane_runs();
    let exact: Vec<_> = runs
        .iter()
        .map(|r| (&r.exact_state, r.exact_test.as_slice()))
        .collect();
    let quant: Vec<_> = runs
        .iter()
        .map(|r| (&r.quant_state, r.quant_test.as_slice()))
        .collect();
    for &c in &[0.7, 0.9, 0.95] {
        let (q_rate, positives) = miss_rate(&quant, c);
        let (e_rate, _) = miss_rate(&exact, c);
        assert!(positives > 20, "need enough positives ({positives})");
        // Absolute validity on the quantized lane, same tolerance as the
        // exact-lane harness in conformal_guarantees.rs.
        assert!(
            q_rate <= (1.0 - c) + 0.10,
            "c={c}: quantized miss rate {q_rate} badly exceeds bound {}",
            1.0 - c
        );
        // And relative validity: recalibration keeps the quantized lane's
        // coverage within one percentage point of the exact lane's.
        assert!(
            (q_rate - e_rate).abs() <= 0.01 + 1e-12,
            "c={c}: quantized miss rate {q_rate} drifted from exact {e_rate}"
        );
    }
}

#[test]
fn quantized_lane_endpoint_coverage_holds_and_tracks_exact() {
    let runs = lane_runs();
    let exact: Vec<_> = runs
        .iter()
        .map(|r| (&r.exact_state, r.exact_test.as_slice()))
        .collect();
    let quant: Vec<_> = runs
        .iter()
        .map(|r| (&r.quant_state, r.quant_test.as_slice()))
        .collect();
    for &alpha in &[0.5, 0.9] {
        let (qs, qe) = endpoint_coverage(&quant, alpha);
        let (es, ee) = endpoint_coverage(&exact, alpha);
        assert!(
            qs >= alpha - 0.12,
            "alpha={alpha}: quantized start coverage {qs}"
        );
        assert!(
            qe >= alpha - 0.12,
            "alpha={alpha}: quantized end coverage {qe}"
        );
        assert!(
            (qs - es).abs() <= 0.01 + 1e-12,
            "alpha={alpha}: start coverage quantized {qs} vs exact {es}"
        );
        assert!(
            (qe - ee).abs() <= 0.01 + 1e-12,
            "alpha={alpha}: end coverage quantized {qe} vs exact {ee}"
        );
    }
}

#[test]
fn quantized_scores_stay_close_to_exact_scores() {
    // The recalibration story rests on the quantized lane being a small
    // perturbation of the exact lane; pin that here so a quantizer
    // regression surfaces as a score drift, not only as coverage decay.
    let cfg = ExperimentConfig {
        scale: 0.2,
        ..ExperimentConfig::quick(100)
    };
    let run = TaskRun::execute(&task("TA10").unwrap(), &cfg);
    let quant = score_records_lane(&run.model, &run.test_records, 128, InferenceLane::Quantized);
    assert_eq!(quant.len(), run.test.len());
    let mut max_db = 0f64;
    let mut max_dtheta = 0f32;
    for (q, e) in quant.iter().zip(&run.test) {
        assert_eq!(q.anchor, e.anchor);
        for (qs, es) in q.scores.iter().zip(&e.scores) {
            max_db = max_db.max((qs.b - es.b).abs());
            for (qt, et) in qs.theta.iter().zip(&es.theta) {
                max_dtheta = max_dtheta.max((qt - et).abs());
            }
        }
    }
    assert!(max_db > 0.0, "quantized lane should not be bit-equal");
    assert!(max_db < 0.05, "existence score drift {max_db} too large");
    assert!(max_dtheta < 0.05, "θ score drift {max_dtheta} too large");
}
