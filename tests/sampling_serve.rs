//! Gate edge cases and serving integration for content-adaptive
//! sampling (`eventhit-core::sampling`).
//!
//! The claims pinned here:
//!
//! - a zero-motion stream is gated entirely after warmup, and its
//!   anchors duplicate-carry the first scored decision, force-rescoring
//!   every `max_carry + 1` anchors;
//! - a `DeltaGate` at threshold `0` is a structural no-op: it never
//!   skips or carries, and its decision stream is bit-identical to the
//!   `Fixed` policy's;
//! - the adaptive window stays inside `[m_min, M]` and actually visits
//!   both bounds over a real stream;
//! - gated serving over the wire is bit-identical to the in-process
//!   `run_lanes` path at 1 and 4 workers;
//! - durable serving rejects non-`Fixed` policies at bind time (gate
//!   state is not captured by snapshots).

use std::net::SocketAddr;
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

use eventhit::core::experiment::{ExperimentConfig, TaskRun};
use eventhit::core::model::EventHit;
use eventhit::core::multi::{run_lanes, LaneDecision, StreamLane};
use eventhit::core::pipeline::{ConformalState, Strategy};
use eventhit::core::sampling::{GateParams, SamplingPolicy, WindowParams};
use eventhit::core::streaming::OnlinePredictor;
use eventhit::core::tasks::task;
use eventhit::core::InferenceLane;
use eventhit::nn::matrix::Matrix;
use eventhit::parallel::{with_workers, Pool};
use eventhit::serve::convert::decision_from_wire;
use eventhit::serve::{DurableOptions, ServeClient, ServeConfig, Server};
use eventhit::telemetry::Telemetry;

struct Trained {
    model: EventHit,
    state: ConformalState,
    features: Matrix,
    window: usize,
    horizon: usize,
}

fn trained() -> &'static Trained {
    static RUN: OnceLock<Trained> = OnceLock::new();
    RUN.get_or_init(|| {
        let run = TaskRun::execute(&task("TA10").unwrap(), &ExperimentConfig::quick(77));
        Trained {
            model: run.model,
            state: run.state,
            features: run.features,
            window: run.window,
            horizon: run.horizon,
        }
    })
}

const STRATEGY: Strategy = Strategy::Ehcr { c: 0.9, alpha: 0.5 };

fn predictor(policy: SamplingPolicy) -> OnlinePredictor {
    let t = trained();
    OnlinePredictor::with_policy(
        t.model.clone(),
        t.state.clone(),
        STRATEGY,
        InferenceLane::Exact,
        policy,
    )
}

#[test]
fn zero_motion_stream_gates_everything_and_carries_decisions() {
    let t = trained();
    let max_carry = 3u32;
    let gate = GateParams {
        threshold: 0.05,
        hysteresis: 1.25,
        max_run: 0, // unbounded skips: the stream truly never moves
        max_carry,
    };
    let mut p = predictor(SamplingPolicy::DeltaGate(gate));
    let telemetry = Arc::new(Telemetry::new());
    p.set_telemetry(Arc::clone(&telemetry));

    let frame = t.features.row(0).to_vec();
    let total = t.window + t.horizon * 12;
    let mut decisions = Vec::new();
    for _ in 0..total {
        if let Some(d) = p.push_frame(frame.clone()) {
            decisions.push(d);
        }
    }
    // Warmup admits exactly the first window; everything after is gated.
    assert_eq!(
        p.frames_skipped(),
        (total - t.window) as u64,
        "a zero-motion stream must gate every post-warmup frame"
    );
    // The cadence is unchanged: one decision per horizon.
    assert_eq!(decisions.len(), 13);
    // Every decision carries the same predictions (the window content
    // never changes, so re-scores reproduce the carried scores exactly).
    for d in &decisions[1..] {
        assert_eq!(d.predictions, decisions[0].predictions);
    }
    // Scored at anchors 0, 4, 8, ... (every `max_carry + 1`), carried
    // in between.
    let n = decisions.len() as u64;
    let cycle = u64::from(max_carry) + 1;
    let expected_carried = n - n.div_ceil(cycle);
    let snap = telemetry.snapshot();
    assert_eq!(snap.counter_total("stream.decisions"), n);
    assert_eq!(
        snap.counter_total("stream.decisions_carried"),
        expected_carried,
        "anchors between forced re-scores must duplicate-carry"
    );
    assert_eq!(
        snap.counter_total("stream.frames_skipped"),
        p.frames_skipped(),
        "batched skip telemetry must match the sampler at decision time"
    );
}

#[test]
fn threshold_zero_delta_gate_is_bit_identical_to_fixed() {
    let t = trained();
    let mut fixed = predictor(SamplingPolicy::Fixed);
    let mut gated = predictor(SamplingPolicy::DeltaGate(GateParams {
        threshold: 0.0,
        hysteresis: 1.0,
        max_run: 0,
        max_carry: u32::MAX,
    }));
    let a = fixed.run_over(&t.features, 0);
    let b = gated.run_over(&t.features, 0);
    assert!(!a.is_empty());
    assert_eq!(a, b, "threshold 0 must never skip or carry");
    assert_eq!(gated.frames_skipped(), 0);
}

#[test]
fn adaptive_window_visits_both_bounds_and_never_leaves_them() {
    let t = trained();
    let m_min = 2usize;
    let policy = SamplingPolicy::Adaptive {
        gate: GateParams {
            threshold: 0.0, // pure windowing: isolate the m-trajectory
            hysteresis: 1.0,
            max_run: 0,
            max_carry: 0,
        },
        window: WindowParams {
            m_min,
            m_max: 0, // resolves to the model's M
            beta: 0.5,
        },
    };
    let mut p = predictor(policy);
    let (mut lo, mut hi) = (usize::MAX, 0usize);
    for r in 0..t.features.rows() {
        p.push_frame(t.features.row(r).to_vec());
        let m = p.window_len();
        lo = lo.min(m);
        hi = hi.max(m);
        assert!(
            (m_min..=t.window).contains(&m),
            "window length {m} escaped [{m_min}, {}]",
            t.window
        );
    }
    assert_eq!(hi, t.window, "busy stretches must grow the window to M");
    assert_eq!(lo, m_min, "quiet stretches must shrink the window to m_min");
}

fn spawn_server(
    cfg: ServeConfig,
    factory: Box<dyn Fn(u32) -> OnlinePredictor + Send + Sync>,
    sessions: usize,
) -> (SocketAddr, JoinHandle<()>) {
    let server = Server::bind(cfg, factory).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || {
        server.serve_sessions(sessions, &Pool::new(1));
    });
    (addr, handle)
}

#[test]
fn gated_serve_is_bit_identical_to_run_lanes_at_1_and_4_workers() {
    let t = trained();
    let dim = t.features.cols() as u32;
    let policy = SamplingPolicy::DeltaGate(GateParams {
        threshold: 0.02,
        ..GateParams::default()
    });
    let froms = [0usize, 11];

    let lanes = |policy: &SamplingPolicy| -> Vec<StreamLane> {
        froms
            .iter()
            .enumerate()
            .map(|(i, &from)| StreamLane {
                stream_id: i,
                predictor: predictor(policy.clone()),
                features: t.features.clone(),
                from,
            })
            .collect()
    };
    let baseline1 = with_workers(1, || run_lanes(lanes(&policy), &Pool::current()));
    let baseline4 = with_workers(4, || run_lanes(lanes(&policy), &Pool::current()));
    assert_eq!(
        baseline1, baseline4,
        "gated run_lanes must be worker-invariant"
    );
    assert!(!baseline1.is_empty(), "gated baseline had no decisions");

    // Served path: the factory builds Fixed predictors and the server
    // applies `cfg.sampling` at stream-open, exactly like
    // `eventhit-cli serve --sampling`.
    let cfg = ServeConfig {
        sampling: policy.clone(),
        ..ServeConfig::default()
    };
    let (addr, handle) = spawn_server(cfg, Box::new(|_| predictor(SamplingPolicy::Fixed)), 1);
    let mut client = ServeClient::connect(addr).expect("connect");
    for s in 0..froms.len() as u32 {
        client
            .open_stream(s)
            .expect("open I/O")
            .expect_ok("open_stream");
    }
    let mut served: Vec<LaneDecision> = Vec::new();
    let rows = t.features.rows();
    let batch = 101; // unaligned with window/horizon
    let mut cursors = froms;
    loop {
        let mut progressed = false;
        for (i, cursor) in cursors.iter_mut().enumerate() {
            if *cursor >= rows {
                continue;
            }
            progressed = true;
            let hi = (*cursor + batch).min(rows);
            let mut data = Vec::with_capacity((hi - *cursor) * dim as usize);
            for r in *cursor..hi {
                data.extend_from_slice(t.features.row(r));
            }
            let decisions = client
                .submit(i as u32, dim, data)
                .expect("submit I/O")
                .expect_ok("submit");
            served.extend(decisions.iter().map(|d| LaneDecision {
                stream_id: i,
                decision: decision_from_wire(d),
            }));
            *cursor = hi;
        }
        if !progressed {
            break;
        }
    }
    for s in 0..froms.len() as u32 {
        client
            .close_stream(s)
            .expect("close I/O")
            .expect_ok("close_stream");
    }
    drop(client);
    handle.join().expect("server thread");

    served.sort_by_key(|d| (d.decision.anchor, d.stream_id));
    assert_eq!(served, baseline1);
}

#[test]
fn durable_serving_rejects_gated_policies_at_bind() {
    let dir = std::env::temp_dir().join(format!("evht-sampling-durable-{}", std::process::id()));
    let cfg = ServeConfig {
        durable: Some(DurableOptions::new(&dir)),
        sampling: SamplingPolicy::DeltaGate(GateParams::default()),
        ..ServeConfig::default()
    };
    let err = Server::bind(cfg, Box::new(|_| predictor(SamplingPolicy::Fixed)))
        .err()
        .expect("durable + gated must be rejected");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    let _ = std::fs::remove_dir_all(&dir);
}
