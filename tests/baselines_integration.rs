//! Integration of the baseline algorithms against the EventHit pipeline:
//! the dominance relations the paper reports must hold on our synthetic
//! tasks too.

use eventhit::baselines::appvae::AppVae;
use eventhit::baselines::cox_baseline::{self, CoxBaseline};
use eventhit::baselines::vqs;
use eventhit::core::experiment::{grids, ExperimentConfig, TaskRun};
use eventhit::core::tasks::task;

fn run(id: &str, seed: u64) -> TaskRun {
    let cfg = ExperimentConfig {
        scale: 0.25,
        ..ExperimentConfig::quick(seed)
    };
    TaskRun::execute(&task(id).unwrap(), &cfg)
}

/// Smallest SPL among operating points achieving at least `target` recall,
/// or `None`.
fn spl_at_recall(points: &[(f64, f64)], target: f64) -> Option<f64> {
    points
        .iter()
        .filter(|(rec, _)| *rec >= target)
        .map(|(_, spl)| *spl)
        .min_by(f64::total_cmp)
}

#[test]
fn ehcr_dominates_vqs_at_moderate_recall() {
    let run = run("TA10", 50);
    let ehcr_points: Vec<(f64, f64)> = grids::ehcr()
        .iter()
        .map(|s| {
            let o = run.evaluate(s);
            (o.rec, o.spl)
        })
        .collect();
    let vqs_points: Vec<(f64, f64)> = vqs::default_taus(run.horizon)
        .iter()
        .map(|&t| {
            let o = vqs::evaluate_at(&run, t);
            (o.rec, o.spl)
        })
        .collect();

    let target = 0.8;
    let (Some(ehcr_spl), Some(vqs_spl)) = (
        spl_at_recall(&ehcr_points, target),
        spl_at_recall(&vqs_points, target),
    ) else {
        panic!("both methods should reach recall {target} at some operating point");
    };
    assert!(
        ehcr_spl <= vqs_spl + 0.05,
        "EHCR should need no more spillage than VQS: {ehcr_spl} vs {vqs_spl}"
    );
}

#[test]
fn cox_curve_is_monotone_in_threshold() {
    let run = run("TA10", 51);
    let cox = CoxBaseline::from_run(&run);
    let mut prev_rec = f64::INFINITY;
    for tau in cox_baseline::default_taus() {
        let o = cox.evaluate_at(&run, tau);
        assert!(
            o.rec <= prev_rec + 1e-9,
            "COX recall should fall as tau rises (tau={tau})"
        );
        prev_rec = o.rec;
    }
}

#[test]
fn vqs_cannot_beat_detector_information() {
    // VQS relays whole horizons; even at its most permissive setting its
    // spillage must reflect the decoy presence rate (never near zero at
    // full recall), because object counts cannot distinguish decoys from
    // events.
    let run = run("TA10", 52);
    let permissive = vqs::evaluate_at(&run, 1);
    if permissive.rec >= 0.99 {
        assert!(
            permissive.spl > 0.3,
            "near-exhaustive VQS should pay heavy spillage, got {}",
            permissive.spl
        );
    }
}

#[test]
fn appvae_produces_single_valid_operating_point() {
    let run = run("TA13", 53);
    for window in [200, 1500] {
        let model = AppVae::fit(&run, window);
        let o = model.evaluate_run(&run);
        assert!(
            (0.0..=1.0).contains(&o.rec),
            "window {window}: rec {}",
            o.rec
        );
        assert!(
            o.spl >= 0.0 && o.spl <= 1.0 + 1e-9,
            "window {window}: spl {}",
            o.spl
        );
    }
}

#[test]
fn oracle_beats_every_algorithm_on_cost() {
    let run = run("TA11", 54);
    let opt = run.oracle_outcome();
    for s in grids::ehcr() {
        let o = run.evaluate(&s);
        if o.rec >= 0.999 {
            assert!(
                o.frames_relayed >= opt.frames_relayed,
                "nothing relays fewer frames than the oracle at full recall"
            );
        }
    }
}
