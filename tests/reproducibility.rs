//! Determinism and reproducibility: every stage of the pipeline is seeded,
//! so identical configurations must produce identical results end to end.

use eventhit::core::experiment::{ExperimentConfig, TaskRun};
use eventhit::core::pipeline::Strategy;
use eventhit::core::tasks::task;
use eventhit::video::features::{extract, FeatureConfig};
use eventhit::video::stream::VideoStream;
use eventhit::video::synthetic;

#[test]
fn identical_configs_reproduce_outcomes_exactly() {
    let cfg = ExperimentConfig::quick(77);
    let t = task("TA10").unwrap();
    let a = TaskRun::execute(&t, &cfg);
    let b = TaskRun::execute(&t, &cfg);
    for s in [
        Strategy::Eho { tau1: 0.5 },
        Strategy::Ehcr { c: 0.9, alpha: 0.5 },
    ] {
        let oa = a.evaluate(&s);
        let ob = b.evaluate(&s);
        assert_eq!(oa.rec, ob.rec, "{s:?}");
        assert_eq!(oa.spl, ob.spl, "{s:?}");
        assert_eq!(oa.frames_relayed, ob.frames_relayed, "{s:?}");
    }
    assert_eq!(a.train_report.epoch_losses, b.train_report.epoch_losses);
}

#[test]
fn different_seeds_differ() {
    let t = task("TA10").unwrap();
    let a = TaskRun::execute(&t, &ExperimentConfig::quick(78));
    let b = TaskRun::execute(&t, &ExperimentConfig::quick(79));
    assert_ne!(
        a.train_report.epoch_losses, b.train_report.epoch_losses,
        "different seeds must produce different training trajectories"
    );
}

#[test]
fn stream_and_features_are_pure_functions_of_seed() {
    let profile = synthetic::thumos().scaled(0.05);
    let s1 = VideoStream::generate(&profile, 5);
    let s2 = VideoStream::generate(&profile, 5);
    assert_eq!(s1.instances, s2.instances);
    let f1 = extract(&s1, &FeatureConfig::default(), 6);
    let f2 = extract(&s2, &FeatureConfig::default(), 6);
    assert_eq!(f1, f2);
}

#[test]
fn scored_records_are_deterministic_across_batch_sizes() {
    let cfg = ExperimentConfig::quick(80);
    let t = task("TA12").unwrap();
    let run = TaskRun::execute(&t, &cfg);
    use eventhit::core::infer::score_records;
    let small = score_records(&run.model, &run.test_records, 3);
    let large = score_records(&run.model, &run.test_records, 1024);
    for (a, b) in small.iter().zip(&large) {
        assert_eq!(a.scores, b.scores);
    }
}
