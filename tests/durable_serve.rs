//! Kill-and-recover soak tests for durable serving: a server is killed at
//! a fault-injector-chosen point mid-serve, restarted over the same
//! durable directory, and clients reconnect with `Resume` — the combined
//! decision stream must be bit-identical to an uninterrupted in-process
//! `run_lanes` pass, at 1 and 4 workers. Plus model hot-reload across a
//! crash, durable-specific admission rules, and the client's typed
//! `Disconnected` error.

use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

use eventhit::core::experiment::{ExperimentConfig, TaskRun};
use eventhit::core::faults::{FaultConfig, FaultInjector};
use eventhit::core::model::EventHit;
use eventhit::core::multi::{run_lanes, LaneDecision, StreamLane};
use eventhit::core::pipeline::{ConformalState, Strategy};
use eventhit::core::streaming::OnlinePredictor;
use eventhit::core::tasks::task;
use eventhit::core::InferenceLane;
use eventhit::nn::matrix::Matrix;
use eventhit::parallel::{with_workers, Pool};
use eventhit::serve::convert::decision_from_wire;
use eventhit::serve::protocol::{read_message, write_message, Message, RejectCode};
use eventhit::serve::{
    is_disconnected, DurableOptions, Response, ServeClient, ServeConfig, Server,
};

/// Primary model plus a second, independently trained model for the
/// hot-reload test (same task and scale, different seed — identical
/// shapes, different weights).
struct Trained {
    model: EventHit,
    state: ConformalState,
    reload_model: EventHit,
    reload_state: ConformalState,
    features: Matrix,
}

fn trained() -> &'static Trained {
    static RUN: OnceLock<Trained> = OnceLock::new();
    RUN.get_or_init(|| {
        let run = TaskRun::execute(&task("TA10").unwrap(), &ExperimentConfig::quick(77));
        let alt = TaskRun::execute(&task("TA10").unwrap(), &ExperimentConfig::quick(78));
        // The replacement state must be refitted for the replacement
        // weights against *this* run's calibration split.
        let reload_state = run.state_for_model(&alt.model, InferenceLane::Exact);
        Trained {
            model: run.model,
            state: run.state,
            reload_model: alt.model,
            reload_state,
            features: run.features,
        }
    })
}

const STRATEGY: Strategy = Strategy::Ehcr { c: 0.9, alpha: 0.5 };

fn predictor() -> OnlinePredictor {
    let t = trained();
    OnlinePredictor::new(t.model.clone(), t.state.clone(), STRATEGY)
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("evdur-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn durable_cfg(dir: &PathBuf, snapshot_every: u64) -> ServeConfig {
    let mut opts = DurableOptions::new(dir);
    opts.snapshot_every = snapshot_every;
    ServeConfig {
        durable: Some(opts),
        ..ServeConfig::default()
    }
}

/// Binds a durable server on a free port and serves exactly `sessions`
/// sessions on a `workers`-wide pool.
fn spawn_server(cfg: ServeConfig, sessions: usize, workers: usize) -> (SocketAddr, JoinHandle<()>) {
    let server = Server::bind(cfg, Box::new(|_| predictor())).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || {
        server.serve_sessions(sessions, &Pool::new(workers));
    });
    (addr, handle)
}

/// Submits `features[at..hi]` on `stream`, appending the returned
/// decisions, and returns the new cursor.
fn feed(
    client: &mut ServeClient,
    stream: u32,
    features: &Matrix,
    at: usize,
    hi: usize,
    out: &mut Vec<LaneDecision>,
) {
    let dim = features.cols() as u32;
    let mut data = Vec::with_capacity((hi - at) * dim as usize);
    for r in at..hi {
        data.extend_from_slice(features.row(r));
    }
    let decisions = client
        .submit(stream, dim, data)
        .expect("submit I/O")
        .expect_ok("submit");
    out.extend(decisions.iter().map(|d| LaneDecision {
        stream_id: stream as usize,
        decision: decision_from_wire(d),
    }));
}

/// The tentpole scenario at one worker count: serve, kill at a
/// fault-injector-chosen batch, restart over the same directory, resume,
/// finish — then demand bit-identity with the uninterrupted baseline.
fn kill_and_recover_scenario(workers: usize) {
    let t = trained();
    let rows = t.features.rows();
    let froms = [0usize, 11];
    let batch = 97; // deliberately unaligned with window/horizon

    // Uninterrupted in-process baseline at this worker count.
    let lanes: Vec<StreamLane> = froms
        .iter()
        .enumerate()
        .map(|(i, &from)| StreamLane {
            stream_id: i,
            predictor: predictor(),
            features: t.features.clone(),
            from,
        })
        .collect();
    let baseline = with_workers(workers, || run_lanes(lanes, &Pool::current()));
    assert!(!baseline.is_empty(), "baseline produced no decisions");

    // The kill point: the round of the fault injector's first fault on a
    // lossy channel, clamped to fall strictly mid-serve. Deterministic
    // per (seed), different per worker count so the two scenarios kill
    // at different places.
    let rounds = rows.div_ceil(batch);
    let mut injector = FaultInjector::new(FaultConfig::lossy(), 9000 + workers as u64);
    let mut kill_round = rounds / 2;
    for i in 0..rounds {
        if !injector.attempt(0.01).is_success() {
            kill_round = i;
            break;
        }
    }
    let kill_round = kill_round.clamp(1, rounds - 1);

    let dir = fresh_dir(&format!("soak{workers}"));
    // A small snapshot cadence so recovery exercises snapshot + log tail,
    // not just a full-log replay.
    let cfg = durable_cfg(&dir, 24);

    // Phase A: serve until the kill round, then vanish without closing.
    let mut served: Vec<LaneDecision> = Vec::new();
    let mut cursors = froms;
    let mut acked = [0u64; 2];
    let (addr, handle) = spawn_server(cfg.clone(), 1, workers);
    {
        let mut client = ServeClient::connect(addr).expect("connect A");
        for s in 0..froms.len() as u32 {
            client.open_stream(s).unwrap().expect_ok("open");
        }
        for _round in 0..kill_round {
            for (i, cursor) in cursors.iter_mut().enumerate() {
                if *cursor >= rows {
                    continue;
                }
                let hi = (*cursor + batch).min(rows);
                feed(&mut client, i as u32, &t.features, *cursor, hi, &mut served);
                acked[i] += (hi - *cursor) as u64;
                *cursor = hi;
            }
        }
    } // dropped: abrupt TCP FIN, streams left open — the "kill"
    handle.join().expect("server A thread");

    // Phase B: a new server over the same directory must recover the
    // lanes from disk; the client resumes and finishes the streams.
    let (addr, handle) = spawn_server(cfg, 1, workers);
    let mut client = ServeClient::connect(addr).expect("connect B");
    for (i, &last) in acked.iter().enumerate() {
        let next = client
            .resume_stream(i as u32, last)
            .expect("resume I/O")
            .expect_ok("resume");
        assert_eq!(
            next, last,
            "stream {i}: every batch was acked, so next_seq must equal \
             the client's count"
        );
    }
    loop {
        let mut progressed = false;
        for (i, cursor) in cursors.iter_mut().enumerate() {
            if *cursor >= rows {
                continue;
            }
            progressed = true;
            let hi = (*cursor + batch).min(rows);
            feed(&mut client, i as u32, &t.features, *cursor, hi, &mut served);
            *cursor = hi;
        }
        if !progressed {
            break;
        }
    }
    for (i, &from) in froms.iter().enumerate() {
        let summary = client
            .close_stream(i as u32)
            .unwrap()
            .expect_ok("close_stream");
        assert_eq!(
            summary.frames,
            (rows - from) as u64,
            "stream {i}: lifetime frame count must span both servers"
        );
    }
    drop(client);
    handle.join().expect("server B thread");

    served.sort_by_key(|d| (d.decision.anchor, d.stream_id));
    assert_eq!(
        served, baseline,
        "decisions across the kill must be bit-identical to the \
         uninterrupted baseline at {workers} workers"
    );
}

#[test]
fn kill_and_recover_soak_bit_identical_at_1_worker() {
    kill_and_recover_scenario(1);
}

#[test]
fn kill_and_recover_soak_bit_identical_at_4_workers() {
    kill_and_recover_scenario(4);
}

#[test]
fn hot_reload_mid_serve_survives_kill_and_recover() {
    let t = trained();
    let rows = t.features.rows().min(2000);
    let batch = 64;
    let reload_at = batch * 8; // on a batch boundary, mid-stream
    let kill_at = batch * 12; // after the reload, before the end
    assert!(kill_at < rows);

    // In-process reference: same feed, same mid-stream swap, no crash.
    let mut reference = Vec::new();
    let mut p = predictor();
    for r in 0..rows {
        if r == reload_at {
            p.reload_model(t.reload_model.clone(), t.reload_state.clone())
                .expect("reference reload");
        }
        if let Some(d) = p.push_frame(t.features.row(r).to_vec()) {
            reference.push(d);
        }
    }
    assert!(
        reference.iter().any(|d| d.anchor >= reload_at as u64),
        "reference must decide after the reload point"
    );

    let dir = fresh_dir("reload");
    let cfg = durable_cfg(&dir, 16);

    // Phase A: feed to the reload point, hot-swap the model through the
    // server handle, feed a little more, then vanish.
    let mut served = Vec::new();
    let server = Arc::new(Server::bind(cfg.clone(), Box::new(|_| predictor())).expect("bind"));
    let addr = server.local_addr().unwrap();
    let handle = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.serve_sessions(1, &Pool::new(1)))
    };
    {
        let mut client = ServeClient::connect(addr).expect("connect A");
        client.open_stream(0).unwrap().expect_ok("open");
        let mut at = 0;
        while at < reload_at {
            feed(&mut client, 0, &t.features, at, at + batch, &mut served);
            at += batch;
        }
        // Every pre-reload batch is acked, so the swap lands exactly at
        // `reload_at` in the lane's frame order.
        server
            .reload_model(t.reload_model.clone(), t.reload_state.clone())
            .expect("server reload");
        while at < kill_at {
            feed(&mut client, 0, &t.features, at, at + batch, &mut served);
            at += batch;
        }
    } // kill
    handle.join().expect("server A thread");
    drop(server);

    // Phase B: recovery must replay through the journaled reload (loading
    // the persisted weights/state pair from the durable directory).
    let server = Server::bind(cfg, Box::new(|_| predictor())).expect("rebind");
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.serve_sessions(1, &Pool::new(1)));
    let mut client = ServeClient::connect(addr).expect("connect B");
    let next = client
        .resume_stream(0, kill_at as u64)
        .unwrap()
        .expect_ok("resume");
    assert_eq!(next as usize, kill_at);
    let mut at = kill_at;
    while at < rows {
        let hi = (at + batch).min(rows);
        feed(&mut client, 0, &t.features, at, hi, &mut served);
        at = hi;
    }
    client.close_stream(0).unwrap().expect_ok("close");
    drop(client);
    handle.join().expect("server B thread");

    let served: Vec<_> = served.into_iter().map(|d| d.decision).collect();
    assert_eq!(
        served, reference,
        "post-crash decisions must match the uninterrupted hot-reload \
         reference bit for bit"
    );
}

#[test]
fn durable_admission_rules_open_resume_and_bad_seq() {
    let t = trained();
    let dir = fresh_dir("admission");
    let cfg = durable_cfg(&dir, 0); // snapshots off: log-only recovery

    // Session 1: open a stream, feed a bit, vanish.
    let (addr, handle) = spawn_server(cfg.clone(), 1, 1);
    {
        let mut client = ServeClient::connect(addr).expect("connect");
        client.open_stream(0).unwrap().expect_ok("open");
        let mut out = Vec::new();
        feed(&mut client, 0, &t.features, 0, 50, &mut out);
    }
    handle.join().unwrap();

    // Session 2 on a recovered server: the stream exists durably, so a
    // plain open is refused with a hint to resume; resuming a stream the
    // directory has never seen is UnknownStream; claiming more acked
    // frames than the log holds is a fatal lie.
    // Two pool workers: session 3 below needs the client and the thief
    // connected at the same time.
    let (addr, handle) = spawn_server(cfg, 3, 2);
    let mut client = ServeClient::connect(addr).expect("connect");
    match client.open_stream(0).unwrap() {
        Response::Rejected(r) => {
            assert_eq!(r.code, RejectCode::DuplicateStream);
            assert!(r.detail.contains("Resume"), "detail: {}", r.detail);
        }
        Response::Ok(()) => panic!("re-opening a durable stream must be refused"),
    }
    match client.resume_stream(7, 0).unwrap() {
        Response::Rejected(r) => assert_eq!(r.code, RejectCode::UnknownStream),
        Response::Ok(_) => panic!("resuming an unknown stream must be refused"),
    }
    match client.resume_stream(0, 51).unwrap() {
        Response::Rejected(r) => assert_eq!(r.code, RejectCode::Malformed),
        Response::Ok(_) => panic!("claiming unlogged acks must be refused"),
    }
    drop(client); // the Malformed rejection was fatal: session 2 is over

    // Session 3: an honest resume re-attaches, and a second session
    // cannot steal the attached stream.
    let mut client = ServeClient::connect(addr).expect("connect 3");
    let next = client.resume_stream(0, 50).unwrap().expect_ok("resume");
    assert_eq!(next, 50);
    let mut out = Vec::new();
    feed(&mut client, 0, &t.features, 50, 80, &mut out);
    let mut thief = ServeClient::connect(addr).expect("connect thief");
    match thief.resume_stream(0, 50).unwrap() {
        Response::Rejected(r) => assert_eq!(r.code, RejectCode::DuplicateStream),
        Response::Ok(_) => panic!("an attached stream must not be stealable"),
    }
    let summary = client.close_stream(0).unwrap().expect_ok("close");
    assert_eq!(summary.frames, 80);
    drop(thief);
    drop(client);
    handle.join().unwrap();
}

#[test]
fn unexpected_eof_surfaces_the_typed_disconnected_error() {
    // A raw fake server: handshake, then hang up before replying.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        let (sock, _) = listener.accept().unwrap();
        let mut chan = &sock;
        let hello = read_message(&mut chan).unwrap();
        assert!(matches!(hello, Some(Message::Hello { .. })));
        write_message(
            &mut chan,
            &Message::HelloAck {
                major: 1,
                minor: 1,
                max_streams: 4,
                max_batch_frames: 512,
                max_queue_frames: 4096,
            },
        )
        .unwrap();
        let _request = read_message(&mut chan).unwrap();
        // dropped: the client's pending read sees EOF
    });

    let mut client = ServeClient::connect(addr).expect("connect");
    let err = client.health().expect_err("the server hung up");
    assert!(
        is_disconnected(&err),
        "EOF mid-call must surface the typed Disconnected error, got {err:?}"
    );
    assert_eq!(err.kind(), std::io::ErrorKind::ConnectionAborted);
    assert!(err.to_string().contains("disconnected"), "err: {err}");
    fake.join().unwrap();
}
