//! Golden end-to-end fingerprint: a quickstart-like pipeline run under
//! the manual telemetry clock is pinned to a constant FNV-1a fingerprint
//! of its JSONL trace. Any change to the RNG, training order, scoring
//! arithmetic, marshalling decisions, or telemetry emission shows up
//! here as a one-number diff — and because every parallel path folds in
//! submission order, the constant holds for any worker count.

use std::sync::Arc;

use eventhit::core::ci::CiConfig;
use eventhit::core::experiment::{ExperimentConfig, TaskRun};
use eventhit::core::marshal::Marshaller;
use eventhit::core::multi::{run_lanes, StreamLane};
use eventhit::core::pipeline::Strategy;
use eventhit::core::streaming::OnlinePredictor;
use eventhit::core::tasks::task;
use eventhit::core::InferenceLane;
use eventhit::parallel::{with_workers, Pool};
use eventhit::telemetry::Telemetry;

/// Pinned against the in-repo xoshiro256++ generator and the manual
/// telemetry clock. Recompute only for a deliberate pipeline change, and
/// call the change out in review.
const GOLDEN_FINGERPRINT: u64 = 0x578f_f497_86f2_f4c6;

/// FNV-1a over the quantized-lane multi-stream decision timeline of the
/// same quickstart run: int8 scoring plus the conformal state refitted on
/// quantized calibration scores. Pinned separately from the exact lane —
/// a quantizer change moves this constant and only this constant.
const GOLDEN_QUANTIZED_FINGERPRINT: u64 = 0x3a32_fc70_d8c1_e148;

fn pipeline_trace() -> (String, u64) {
    let cfg = ExperimentConfig {
        scale: 0.08,
        ..ExperimentConfig::quick(40)
    };
    let run = TaskRun::execute(&task("TA10").unwrap(), &cfg);
    let stream = run.stream.clone();
    let features = run.features.clone();
    let from = run.window as u64;
    let to = stream.len;

    let tel = Arc::new(Telemetry::with_manual_clock());
    let mut m = Marshaller::new(
        run.model,
        run.state,
        Strategy::Ehcr { c: 0.9, alpha: 0.5 },
        run.window,
        run.horizon,
        CiConfig::default(),
    );
    m.set_telemetry(Arc::clone(&tel));
    m.run(&stream, &features, from, to);

    let snap = tel.snapshot();
    (snap.to_jsonl(), snap.fingerprint())
}

#[test]
fn pipeline_fingerprint_matches_golden_constant() {
    let (jsonl, fp) = pipeline_trace();
    assert!(jsonl.contains("\"clock\":\"manual\""));
    assert_eq!(
        fp, GOLDEN_FINGERPRINT,
        "pipeline trace fingerprint drifted: got {fp:#018x}"
    );
}

#[test]
fn pipeline_fingerprint_replays_identically_across_worker_counts() {
    let (jsonl_1, fp_1) = with_workers(1, pipeline_trace);
    assert_eq!(fp_1, GOLDEN_FINGERPRINT, "got {fp_1:#018x}");
    for w in [2usize, 4, 8] {
        let (jsonl_w, fp_w) = with_workers(w, pipeline_trace);
        assert_eq!(jsonl_w, jsonl_1, "trace diverged at {w} workers");
        assert_eq!(fp_w, GOLDEN_FINGERPRINT);
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The quantized-lane counterpart of [`pipeline_trace`]: two stream lanes
/// on int8 predictors over the quickstart run's features, decisions
/// merged by [`run_lanes`] and hashed in full (anchors, per-event
/// intervals, degradation tags).
fn quantized_trace(workers: usize) -> (String, u64) {
    let cfg = ExperimentConfig {
        scale: 0.08,
        ..ExperimentConfig::quick(40)
    };
    let run = TaskRun::execute(&task("TA10").unwrap(), &cfg);
    let state = run.state_for_lane(InferenceLane::Quantized);
    let lanes: Vec<StreamLane> = [0usize, 11]
        .iter()
        .enumerate()
        .map(|(i, &from)| StreamLane {
            stream_id: i,
            predictor: OnlinePredictor::with_lane(
                run.model.clone(),
                state.clone(),
                Strategy::Ehcr { c: 0.9, alpha: 0.5 },
                InferenceLane::Quantized,
            ),
            features: run.features.clone(),
            from,
        })
        .collect();
    let decisions = run_lanes(lanes, &Pool::new(workers));
    let mut text = String::new();
    for d in &decisions {
        text.push_str(&format!(
            "{} {}:{:?}\n",
            d.stream_id, d.decision.anchor, d.decision.predictions
        ));
    }
    let fp = fnv1a(text.as_bytes());
    (text, fp)
}

#[test]
fn quantized_fingerprint_matches_golden_constant_at_any_worker_count() {
    let (text_1, fp_1) = quantized_trace(1);
    assert!(!text_1.is_empty(), "quantized trace produced no decisions");
    assert_eq!(
        fp_1, GOLDEN_QUANTIZED_FINGERPRINT,
        "quantized decision fingerprint drifted: got {fp_1:#018x}"
    );
    for w in [2usize, 4, 8] {
        let (text_w, fp_w) = quantized_trace(w);
        assert_eq!(text_w, text_1, "quantized trace diverged at {w} workers");
        assert_eq!(fp_w, GOLDEN_QUANTIZED_FINGERPRINT);
    }
}
