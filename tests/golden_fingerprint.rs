//! Golden end-to-end fingerprint: a quickstart-like pipeline run under
//! the manual telemetry clock is pinned to a constant FNV-1a fingerprint
//! of its JSONL trace. Any change to the RNG, training order, scoring
//! arithmetic, marshalling decisions, or telemetry emission shows up
//! here as a one-number diff — and because every parallel path folds in
//! submission order, the constant holds for any worker count.

use std::sync::Arc;

use eventhit::core::ci::CiConfig;
use eventhit::core::experiment::{ExperimentConfig, TaskRun};
use eventhit::core::marshal::Marshaller;
use eventhit::core::pipeline::Strategy;
use eventhit::core::tasks::task;
use eventhit::parallel::with_workers;
use eventhit::telemetry::Telemetry;

/// Pinned against the in-repo xoshiro256++ generator and the manual
/// telemetry clock. Recompute only for a deliberate pipeline change, and
/// call the change out in review.
const GOLDEN_FINGERPRINT: u64 = 0x578f_f497_86f2_f4c6;

fn pipeline_trace() -> (String, u64) {
    let cfg = ExperimentConfig {
        scale: 0.08,
        ..ExperimentConfig::quick(40)
    };
    let run = TaskRun::execute(&task("TA10").unwrap(), &cfg);
    let stream = run.stream.clone();
    let features = run.features.clone();
    let from = run.window as u64;
    let to = stream.len;

    let tel = Arc::new(Telemetry::with_manual_clock());
    let mut m = Marshaller::new(
        run.model,
        run.state,
        Strategy::Ehcr { c: 0.9, alpha: 0.5 },
        run.window,
        run.horizon,
        CiConfig::default(),
    );
    m.set_telemetry(Arc::clone(&tel));
    m.run(&stream, &features, from, to);

    let snap = tel.snapshot();
    (snap.to_jsonl(), snap.fingerprint())
}

#[test]
fn pipeline_fingerprint_matches_golden_constant() {
    let (jsonl, fp) = pipeline_trace();
    assert!(jsonl.contains("\"clock\":\"manual\""));
    assert_eq!(
        fp, GOLDEN_FINGERPRINT,
        "pipeline trace fingerprint drifted: got {fp:#018x}"
    );
}

#[test]
fn pipeline_fingerprint_replays_identically_across_worker_counts() {
    let (jsonl_1, fp_1) = with_workers(1, pipeline_trace);
    assert_eq!(fp_1, GOLDEN_FINGERPRINT, "got {fp_1:#018x}");
    for w in [2usize, 4, 8] {
        let (jsonl_w, fp_w) = with_workers(w, pipeline_trace);
        assert_eq!(jsonl_w, jsonl_1, "trace diverged at {w} workers");
        assert_eq!(fp_w, GOLDEN_FINGERPRINT);
    }
}
