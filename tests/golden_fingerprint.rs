//! Golden end-to-end fingerprint: a quickstart-like pipeline run under
//! the manual telemetry clock is pinned to a constant FNV-1a fingerprint
//! of its JSONL trace. Any change to the RNG, training order, scoring
//! arithmetic, marshalling decisions, or telemetry emission shows up
//! here as a one-number diff — and because every parallel path folds in
//! submission order, the constant holds for any worker count.

use std::sync::Arc;

use eventhit::core::ci::CiConfig;
use eventhit::core::experiment::{ExperimentConfig, TaskRun};
use eventhit::core::marshal::Marshaller;
use eventhit::core::multi::{run_lanes, StreamLane};
use eventhit::core::pipeline::Strategy;
use eventhit::core::streaming::OnlinePredictor;
use eventhit::core::tasks::task;
use eventhit::core::InferenceLane;
use eventhit::parallel::{with_workers, Pool};
use eventhit::telemetry::Telemetry;

/// Pinned against the in-repo xoshiro256++ generator and the manual
/// telemetry clock. Recompute only for a deliberate pipeline change, and
/// call the change out in review.
const GOLDEN_FINGERPRINT: u64 = 0x578f_f497_86f2_f4c6;

/// FNV-1a over the quantized-lane multi-stream decision timeline of the
/// same quickstart run: int8 scoring plus the conformal state refitted on
/// quantized calibration scores. Pinned separately from the exact lane —
/// a quantizer change moves this constant and only this constant.
const GOLDEN_QUANTIZED_FINGERPRINT: u64 = 0x3a32_fc70_d8c1_e148;

fn pipeline_trace() -> (String, u64) {
    let cfg = ExperimentConfig {
        scale: 0.08,
        ..ExperimentConfig::quick(40)
    };
    let run = TaskRun::execute(&task("TA10").unwrap(), &cfg);
    let stream = run.stream.clone();
    let features = run.features.clone();
    let from = run.window as u64;
    let to = stream.len;

    let tel = Arc::new(Telemetry::with_manual_clock());
    let mut m = Marshaller::new(
        run.model,
        run.state,
        Strategy::Ehcr { c: 0.9, alpha: 0.5 },
        run.window,
        run.horizon,
        CiConfig::default(),
    );
    m.set_telemetry(Arc::clone(&tel));
    m.run(&stream, &features, from, to);

    let snap = tel.snapshot();
    (snap.to_jsonl(), snap.fingerprint())
}

#[test]
fn pipeline_fingerprint_matches_golden_constant() {
    let (jsonl, fp) = pipeline_trace();
    assert!(jsonl.contains("\"clock\":\"manual\""));
    assert_eq!(
        fp, GOLDEN_FINGERPRINT,
        "pipeline trace fingerprint drifted: got {fp:#018x}"
    );
}

#[test]
fn pipeline_fingerprint_replays_identically_across_worker_counts() {
    let (jsonl_1, fp_1) = with_workers(1, pipeline_trace);
    assert_eq!(fp_1, GOLDEN_FINGERPRINT, "got {fp_1:#018x}");
    for w in [2usize, 4, 8] {
        let (jsonl_w, fp_w) = with_workers(w, pipeline_trace);
        assert_eq!(jsonl_w, jsonl_1, "trace diverged at {w} workers");
        assert_eq!(fp_w, GOLDEN_FINGERPRINT);
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The quantized-lane counterpart of [`pipeline_trace`]: two stream lanes
/// on int8 predictors over the quickstart run's features, decisions
/// merged by [`run_lanes`] and hashed in full (anchors, per-event
/// intervals, degradation tags).
fn quantized_trace(workers: usize) -> (String, u64) {
    let cfg = ExperimentConfig {
        scale: 0.08,
        ..ExperimentConfig::quick(40)
    };
    let run = TaskRun::execute(&task("TA10").unwrap(), &cfg);
    let state = run.state_for_lane(InferenceLane::Quantized);
    let lanes: Vec<StreamLane> = [0usize, 11]
        .iter()
        .enumerate()
        .map(|(i, &from)| StreamLane {
            stream_id: i,
            predictor: OnlinePredictor::with_lane(
                run.model.clone(),
                state.clone(),
                Strategy::Ehcr { c: 0.9, alpha: 0.5 },
                InferenceLane::Quantized,
            ),
            features: run.features.clone(),
            from,
        })
        .collect();
    let decisions = run_lanes(lanes, &Pool::new(workers));
    let mut text = String::new();
    for d in &decisions {
        text.push_str(&format!(
            "{} {}:{:?}\n",
            d.stream_id, d.decision.anchor, d.decision.predictions
        ));
    }
    let fp = fnv1a(text.as_bytes());
    (text, fp)
}

/// The same two quantized lanes as [`quantized_trace`], but served over
/// a loopback TCP server partitioned into `shards` shards, decisions
/// rebuilt into the identical text form. Sharding is stream *ownership*
/// partitioning — it must never move a pinned fingerprint.
fn served_quantized_trace(shards: u32) -> (String, u64) {
    use eventhit::serve::convert::decision_from_wire;
    use eventhit::serve::{ServeConfig, Server};

    let cfg = ExperimentConfig {
        scale: 0.08,
        ..ExperimentConfig::quick(40)
    };
    let run = TaskRun::execute(&task("TA10").unwrap(), &cfg);
    let state = run.state_for_lane(InferenceLane::Quantized);
    let (model, features) = (run.model, run.features);
    let factory_state = state.clone();
    let server = Server::bind(
        ServeConfig {
            shards,
            ..ServeConfig::default()
        },
        Box::new(move |_| {
            OnlinePredictor::with_lane(
                model.clone(),
                factory_state.clone(),
                Strategy::Ehcr { c: 0.9, alpha: 0.5 },
                InferenceLane::Quantized,
            )
        }),
    )
    .expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.serve_sessions(1, &Pool::new(2)));

    let froms = [0usize, 11];
    let dim = features.cols() as u32;
    let rows = features.rows();
    let mut client = eventhit::serve::ServeClient::connect(addr).expect("connect");
    for s in 0..froms.len() as u32 {
        client.open_stream(s).unwrap().expect_ok("open_stream");
    }
    let mut decisions: Vec<(usize, _)> = Vec::new();
    let batch = 97; // deliberately unaligned with window/horizon
    let mut cursors = froms;
    loop {
        let mut progressed = false;
        for (i, cursor) in cursors.iter_mut().enumerate() {
            if *cursor >= rows {
                continue;
            }
            progressed = true;
            let hi = (*cursor + batch).min(rows);
            let mut data = Vec::with_capacity((hi - *cursor) * dim as usize);
            for r in *cursor..hi {
                data.extend_from_slice(features.row(r));
            }
            let ds = client
                .submit(i as u32, dim, data)
                .unwrap()
                .expect_ok("submit");
            decisions.extend(ds.iter().map(|d| (i, decision_from_wire(d))));
            *cursor = hi;
        }
        if !progressed {
            break;
        }
    }
    for s in 0..froms.len() as u32 {
        client.close_stream(s).unwrap().expect_ok("close_stream");
    }
    drop(client);
    handle.join().expect("server thread");

    // run_lanes' global merge order, then the exact trace text.
    decisions.sort_by_key(|(stream, d)| (d.anchor, *stream));
    let mut text = String::new();
    for (stream, d) in &decisions {
        text.push_str(&format!("{} {}:{:?}\n", stream, d.anchor, d.predictions));
    }
    let fp = fnv1a(text.as_bytes());
    (text, fp)
}

#[test]
fn quantized_fingerprint_is_unchanged_when_served_at_1_2_and_4_shards() {
    for shards in [1u32, 2, 4] {
        let (text, fp) = served_quantized_trace(shards);
        assert!(
            !text.is_empty(),
            "{shards}-shard serve produced no decisions"
        );
        assert_eq!(
            fp, GOLDEN_QUANTIZED_FINGERPRINT,
            "{shards}-shard serving moved the pinned quantized \
             fingerprint: got {fp:#018x}"
        );
    }
}

#[test]
fn quantized_fingerprint_matches_golden_constant_at_any_worker_count() {
    let (text_1, fp_1) = quantized_trace(1);
    assert!(!text_1.is_empty(), "quantized trace produced no decisions");
    assert_eq!(
        fp_1, GOLDEN_QUANTIZED_FINGERPRINT,
        "quantized decision fingerprint drifted: got {fp_1:#018x}"
    );
    for w in [2usize, 4, 8] {
        let (text_w, fp_w) = quantized_trace(w);
        assert_eq!(text_w, text_1, "quantized trace diverged at {w} workers");
        assert_eq!(fp_w, GOLDEN_QUANTIZED_FINGERPRINT);
    }
}
