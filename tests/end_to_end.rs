//! End-to-end integration: the full generate → train → calibrate →
//! evaluate pipeline, asserting the qualitative shapes the paper reports
//! (§VI.D).

use eventhit::core::experiment::{ExperimentConfig, TaskRun};
use eventhit::core::pipeline::Strategy;
use eventhit::core::tasks::{all_tasks, task};

fn quick_run(id: &str, seed: u64) -> TaskRun {
    let cfg = ExperimentConfig {
        scale: 0.15,
        ..ExperimentConfig::quick(seed)
    };
    TaskRun::execute(&task(id).unwrap(), &cfg)
}

#[test]
fn opt_and_bf_are_the_extremes() {
    let run = quick_run("TA10", 1);
    let opt = run.oracle_outcome();
    let bf = run.brute_force_outcome();
    assert_eq!((opt.rec, opt.spl), (1.0, 0.0));
    // BF relays everything, so REC is exactly 1. Its spillage is 1 except
    // for records whose horizon is saturated by a true event — those have
    // zero spillable frames and contribute 0 by definition — so allow a
    // small deficit (the generated stream may contain a few such records).
    assert_eq!(bf.rec, 1.0);
    assert!(bf.spl > 0.98 && bf.spl <= 1.0, "bf.spl={}", bf.spl);
    // Every strategy lies between the extremes.
    for s in [
        Strategy::Eho { tau1: 0.5 },
        Strategy::Ehc { c: 0.9 },
        Strategy::Ehr {
            tau1: 0.5,
            alpha: 0.9,
        },
        Strategy::Ehcr { c: 0.9, alpha: 0.9 },
    ] {
        let o = run.evaluate(&s);
        assert!((0.0..=1.0).contains(&o.rec), "{s:?}");
        assert!((0.0..=1.0 + 1e-9).contains(&o.spl), "{s:?}");
        assert!(o.frames_relayed <= bf.frames_relayed, "{s:?}");
    }
}

#[test]
fn model_learns_signal_above_chance() {
    let run = quick_run("TA10", 2);
    let eho = run.evaluate(&Strategy::Eho { tau1: 0.5 });
    // A trained model on the quick config should beat "predict nothing"
    // (rec 0) and stay far below full spillage.
    assert!(eho.rec > 0.2, "rec={}", eho.rec);
    assert!(eho.spl < 0.5, "spl={}", eho.spl);
}

#[test]
fn recall_is_monotone_in_confidence_level() {
    let run = quick_run("TA10", 3);
    let mut prev = -1.0;
    for c in [0.5, 0.7, 0.9, 0.95, 0.99] {
        let o = run.evaluate(&Strategy::Ehc { c });
        assert!(
            o.rec_c >= prev - 1e-9,
            "REC_c must not decrease in c (c={c}, {} < {prev})",
            o.rec_c
        );
        prev = o.rec_c;
    }
}

#[test]
fn interval_recall_is_monotone_in_alpha() {
    let run = quick_run("TA10", 4);
    let mut prev = -1.0;
    for alpha in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let o = run.evaluate(&Strategy::Ehr { tau1: 0.5, alpha });
        assert!(
            o.rec_r >= prev - 1e-9,
            "REC_r must not decrease in alpha (alpha={alpha})"
        );
        prev = o.rec_r;
    }
}

#[test]
fn ehcr_reaches_highest_recall_of_all_variants() {
    let run = quick_run("TA11", 5);
    let eho = run.evaluate(&Strategy::Eho { tau1: 0.5 });
    let ehc = run.evaluate(&Strategy::Ehc { c: 0.99 });
    let ehr = run.evaluate(&Strategy::Ehr {
        tau1: 0.5,
        alpha: 0.95,
    });
    let ehcr = run.evaluate(&Strategy::Ehcr {
        c: 0.99,
        alpha: 0.95,
    });
    assert!(
        ehcr.rec + 1e-9 >= eho.rec,
        "EHCR {} vs EHO {}",
        ehcr.rec,
        eho.rec
    );
    assert!(
        ehcr.rec + 1e-9 >= ehc.rec,
        "EHCR {} vs EHC {}",
        ehcr.rec,
        ehc.rec
    );
    assert!(
        ehcr.rec + 1e-9 >= ehr.rec,
        "EHCR {} vs EHR {}",
        ehcr.rec,
        ehr.rec
    );
}

#[test]
fn multi_event_task_shares_one_shared_network() {
    let cfg = ExperimentConfig {
        scale: 0.15,
        ..ExperimentConfig::quick(6)
    };
    let run = TaskRun::execute(&task("TA15").unwrap(), &cfg);
    assert_eq!(run.state.num_events(), 2);
    let o = run.evaluate(&Strategy::Ehcr { c: 0.9, alpha: 0.5 });
    assert!(
        o.positives > 0,
        "multi-event test split should contain events"
    );
    // Predictions exist for both events on every record.
    let preds = run.predictions(&Strategy::Eho { tau1: 0.5 });
    assert!(preds.iter().all(|p| p.len() == 2));
}

#[test]
fn every_table2_task_is_executable() {
    // Smoke check: all 16 tasks build a consistent pipeline at tiny scale.
    for t in all_tasks() {
        let cfg = ExperimentConfig {
            scale: 0.05,
            train: eventhit::core::train::TrainConfig {
                epochs: 1,
                ..Default::default()
            },
            ..ExperimentConfig::quick(7)
        };
        let run = TaskRun::execute(&t, &cfg);
        assert_eq!(run.state.num_events(), t.num_events(), "{}", t.id);
        let _ = run.evaluate(&Strategy::Eho { tau1: 0.5 });
    }
}
