//! # EventHit — Marshalling Model Inference in Video Streams
//!
//! A from-scratch Rust reproduction of the ICDE 2023 paper: a lightweight
//! local predictor (shared LSTM encoder + per-event heads) that decides
//! which video segments are worth sending to a per-frame-priced cloud
//! inference service, with conformal-prediction knobs (`c`, `α`) that
//! trade spillage for probabilistic recall guarantees.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`nn`] — neural substrate (matrices, Dense/LSTM/GRU with hand-written
//!   backprop, dropout, losses, optimizers, schedules).
//! * [`video`] — synthetic streams matching the paper's Table I, simulated
//!   detector features, records/splits, annotations, sampling.
//! * [`conformal`] — C-CLASSIFY / C-REGRESS machinery plus Mondrian
//!   (category-conditional) classification.
//! * [`survival`] — Cox proportional hazards, Kaplan–Meier, Weibull.
//! * [`core`] — the EventHit model, training, strategies, metrics, tasks,
//!   CI cost/queue simulators, marshalling, drift detection.
//! * [`baselines`] — VQS, APP-VAE-style point process, COX adapter.
//! * [`telemetry`] — deterministic spans, counters/gauges/histograms,
//!   JSONL traces, and run dashboards.
//! * [`parallel`] — scoped thread pool plus order-preserving reduction;
//!   every parallel path in the workspace is bit-identical for any worker
//!   count (set `EVENTHIT_WORKERS`, or `with_workers` in-process).
//! * [`serve`] — the stream-serving frontend: a versioned binary wire
//!   protocol, a TCP server with admission control and bounded queues, and
//!   the matching client library (`docs/PROTOCOL.md` for the wire spec).
//! * [`durable`] — crash-safe serving state: an append-only checksummed
//!   session log, periodic snapshots, and bit-identical replay so a
//!   killed server resumes exactly where it stopped (DESIGN.md §14).
//!
//! ## End to end in six lines
//!
//! ```no_run
//! use eventhit::core::experiment::{ExperimentConfig, TaskRun};
//! use eventhit::core::pipeline::Strategy;
//! use eventhit::core::tasks::task;
//!
//! let run = TaskRun::execute(&task("TA10").unwrap(), &ExperimentConfig::default());
//! let outcome = run.evaluate(&Strategy::Ehcr { c: 0.95, alpha: 0.9 });
//! println!("REC={:.3} SPL={:.3}", outcome.rec, outcome.spl);
//! ```
//!
//! A fast (seconds-scale) variant of the same flow, exercised as a doctest:
//!
//! ```
//! use eventhit::core::experiment::{ExperimentConfig, TaskRun};
//! use eventhit::core::pipeline::Strategy;
//! use eventhit::core::tasks::task;
//!
//! let cfg = ExperimentConfig {
//!     scale: 0.05,
//!     train: eventhit::core::train::TrainConfig { epochs: 1, ..Default::default() },
//!     ..ExperimentConfig::quick(1)
//! };
//! let run = TaskRun::execute(&task("TA10").unwrap(), &cfg);
//! let outcome = run.evaluate(&Strategy::Eho { tau1: 0.5 });
//! assert!(outcome.spl <= 1.0);
//! ```

pub use eventhit_baselines as baselines;
pub use eventhit_conformal as conformal;
pub use eventhit_core as core;
pub use eventhit_durable as durable;
pub use eventhit_nn as nn;
pub use eventhit_parallel as parallel;
pub use eventhit_serve as serve;
pub use eventhit_survival as survival;
pub use eventhit_telemetry as telemetry;
pub use eventhit_video as video;

/// Commonly used items, for `use eventhit::prelude::*`.
pub mod prelude {
    pub use eventhit_conformal::{ConformalClassifier, IntervalCalibration, Nonconformity};
    pub use eventhit_core::{
        all_tasks, task, CiConfig, EvalOutcome, EventHit, EventHitConfig, ExperimentConfig,
        IntervalPrediction, ScoredRecord, Strategy, Task, TaskRun,
    };
    pub use eventhit_video::{
        Dataset, DatasetProfile, EventClass, EventLabel, Record, SplitSpec, VideoStream,
    };
}
