//! `eventhit-cli` — train, persist, evaluate, and marshal from the shell.
//!
//! ```text
//! eventhit-cli tasks
//! eventhit-cli train    --task TA10 --scale 0.3 --seed 7 --out model.evht
//! eventhit-cli evaluate --task TA10 --scale 0.3 --seed 7 --model model.evht \
//!                       [--c 0.95] [--alpha 0.9]
//! eventhit-cli marshal  --task TA10 --scale 0.3 --seed 7 --model model.evht \
//!                       [--c 0.95] [--alpha 0.9]
//! eventhit-cli serve        --task TA10 --scale 0.1 --seed 7 --addr 127.0.0.1:7077 \
//!                           [--shards 4] [--workers-per-shard 2] \
//!                           [--lane exact|quantized] [--durable DIR] [--snapshot-every N] \
//!                           [--slow-log FILE] [--sampling fixed|delta:THR|adaptive:THR:MMIN]
//! eventhit-cli run-lanes    --task TA10 --scale 0.1 --seed 7 [--streams 8] \
//!                           [--lane exact|quantized] [--sampling SPEC]
//! eventhit-cli sweep-sampling --task TA10 --seed 7 [--streams 8] [--lane exact|quantized] \
//!                           [--smoke]
//! eventhit-cli bench-client --task TA10 --scale 0.1 --seed 7 --addr 127.0.0.1:7077 \
//!                           [--streams 2] [--batch 64] [--frames 2000]
//! eventhit-cli bench-fleet  --task TA10 --seed 7 [--streams 1024] [--shards 4] \
//!                           [--sessions 16] [--window 4] [--rounds 4] [--batch 64] \
//!                           [--pattern uniform|bursty] [--cap N] [--smoke]
//! eventhit-cli top          --addr 127.0.0.1:7077 [--interval-ms 1000] [--iters 0]
//! ```
//!
//! The synthetic stream is a pure function of `(task, scale, seed)`, so
//! `evaluate`/`marshal` regenerate exactly the stream the model was trained
//! against and calibrate on its calibration split. The same property makes
//! `bench-client` self-sufficient: given the server's `(task, scale, seed)`
//! it regenerates bit-identical feature rows to feed over the wire.

use std::process::exit;

use eventhit::core::ci::CiConfig;
use eventhit::core::experiment::{ExperimentConfig, TaskRun};
use eventhit::core::infer::score_records;
use eventhit::core::marshal::Marshaller;
use eventhit::core::model_io;
use eventhit::core::pipeline::{ConformalState, Strategy};
use eventhit::core::streaming::OnlinePredictor;
use eventhit::core::tasks::{all_tasks, task};
use eventhit::core::{InferenceLane, SamplingPolicy};
use eventhit::parallel::Pool;
use eventhit::serve::{
    fleet, is_disconnected, ArrivalPattern, DurableOptions, FleetSpec, MetricsInfo, Response,
    ServeClient, ServeConfig, Server,
};
use eventhit::telemetry::Telemetry;
use std::sync::Arc;

#[derive(Debug, Clone)]
struct Args {
    task: String,
    scale: f64,
    seed: u64,
    model: Option<String>,
    out: Option<String>,
    c: f64,
    alpha: f64,
    addr: String,
    streams: u32,
    batch: usize,
    frames: usize,
    sessions: usize,
    lane: InferenceLane,
    durable: Option<String>,
    snapshot_every: u64,
    slow_log: Option<String>,
    interval_ms: u64,
    iters: u64,
    shards: u32,
    workers_per_shard: usize,
    pattern: ArrivalPattern,
    rounds: usize,
    window: usize,
    cap: u32,
    smoke: bool,
    sampling: SamplingPolicy,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            task: "TA10".into(),
            scale: 0.3,
            seed: 7,
            model: None,
            out: None,
            c: 0.95,
            alpha: 0.9,
            addr: "127.0.0.1:7077".into(),
            streams: 2,
            batch: 64,
            frames: 0,
            sessions: 0,
            lane: InferenceLane::Exact,
            durable: None,
            snapshot_every: 256,
            slow_log: None,
            interval_ms: 1000,
            iters: 0,
            shards: 1,
            workers_per_shard: 0,
            pattern: ArrivalPattern::Uniform,
            rounds: 4,
            window: 4,
            cap: 0,
            smoke: false,
            sampling: SamplingPolicy::Fixed,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: eventhit-cli <tasks|train|evaluate|marshal|serve|bench-client|bench-fleet|\
         run-lanes|sweep-sampling|top> \
         [--task TAi] [--scale F] [--seed N] [--model PATH] [--out PATH] \
         [--c F] [--alpha F] [--addr HOST:PORT] [--streams N] [--batch N] \
         [--frames N] [--sessions N] [--lane exact|quantized] \
         [--shards N] [--workers-per-shard N] \
         [--durable DIR] [--snapshot-every N] [--slow-log FILE] \
         [--interval-ms N] [--iters N] \
         [--pattern uniform|bursty] [--rounds N] [--window N] [--cap N] [--smoke] \
         [--sampling fixed|delta:THR[:HYST[:RUN]]|adaptive:THR:MMIN[:MMAX[:BETA]]]"
    );
    exit(2)
}

fn parse(it: impl Iterator<Item = String>) -> Args {
    parse_from(Args::default(), it)
}

/// Parses flags on top of `base`, letting each subcommand pick its own
/// defaults (e.g. `bench-fleet` starts from a 1024-stream fleet).
fn parse_from(base: Args, mut it: impl Iterator<Item = String>) -> Args {
    let mut args = base;
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--task" => args.task = value(),
            "--scale" => args.scale = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| usage()),
            "--model" => args.model = Some(value()),
            "--out" => args.out = Some(value()),
            "--c" => args.c = value().parse().unwrap_or_else(|_| usage()),
            "--alpha" => args.alpha = value().parse().unwrap_or_else(|_| usage()),
            "--addr" => args.addr = value(),
            "--streams" => args.streams = value().parse().unwrap_or_else(|_| usage()),
            "--batch" => args.batch = value().parse().unwrap_or_else(|_| usage()),
            "--frames" => args.frames = value().parse().unwrap_or_else(|_| usage()),
            "--sessions" => args.sessions = value().parse().unwrap_or_else(|_| usage()),
            "--lane" => args.lane = value().parse().unwrap_or_else(|_| usage()),
            "--durable" => args.durable = Some(value()),
            "--snapshot-every" => args.snapshot_every = value().parse().unwrap_or_else(|_| usage()),
            "--slow-log" => args.slow_log = Some(value()),
            "--interval-ms" => args.interval_ms = value().parse().unwrap_or_else(|_| usage()),
            "--iters" => args.iters = value().parse().unwrap_or_else(|_| usage()),
            "--shards" => args.shards = value().parse().unwrap_or_else(|_| usage()),
            "--workers-per-shard" => {
                args.workers_per_shard = value().parse().unwrap_or_else(|_| usage())
            }
            "--pattern" => {
                args.pattern = match value().as_str() {
                    "uniform" => ArrivalPattern::Uniform,
                    "bursty" => ArrivalPattern::Bursty,
                    _ => usage(),
                }
            }
            "--rounds" => args.rounds = value().parse().unwrap_or_else(|_| usage()),
            "--window" => args.window = value().parse().unwrap_or_else(|_| usage()),
            "--cap" => args.cap = value().parse().unwrap_or_else(|_| usage()),
            "--smoke" => args.smoke = true,
            "--sampling" => {
                args.sampling = SamplingPolicy::parse(&value()).unwrap_or_else(|e| {
                    eprintln!("invalid --sampling: {e}");
                    usage()
                })
            }
            _ => usage(),
        }
    }
    args
}

fn config(args: &Args) -> ExperimentConfig {
    ExperimentConfig {
        scale: args.scale,
        seed: args.seed,
        ..Default::default()
    }
}

fn cmd_tasks() {
    println!("task\tdataset\tevents\tM\tH");
    for t in all_tasks() {
        let p = t.profile();
        println!(
            "{}\t{:?}\t{}\t{}\t{}",
            t.id,
            t.dataset,
            t.events.join(","),
            p.collection_window,
            p.horizon
        );
    }
}

fn cmd_train(args: &Args) {
    let t = task(&args.task).unwrap_or_else(|| {
        eprintln!("unknown task {}", args.task);
        exit(2)
    });
    eprintln!(
        "training {} at scale {} (seed {}) ...",
        t.id, args.scale, args.seed
    );
    let mut run = TaskRun::execute(&t, &config(args));
    eprintln!(
        "  {} train records, final loss {:.4}, {} parameters",
        run.train_records.len(),
        run.train_report.final_loss,
        run.model.param_count()
    );
    let out = args
        .out
        .clone()
        .unwrap_or_else(|| format!("{}.evht", t.id.to_lowercase()));
    model_io::save_to_path(&mut run.model, &out).unwrap_or_else(|e| {
        eprintln!("failed to write {out}: {e}");
        exit(1)
    });
    println!("model written to {out}");
}

/// Rebuilds the deterministic task context and calibrates the loaded model.
fn load_context(args: &Args) -> (TaskRun, Strategy) {
    let t = task(&args.task).unwrap_or_else(|| {
        eprintln!("unknown task {}", args.task);
        exit(2)
    });
    let model_path = args.model.clone().unwrap_or_else(|| usage());
    eprintln!(
        "regenerating {} stream (scale {}, seed {}) ...",
        t.id, args.scale, args.seed
    );
    let mut run = TaskRun::execute(&t, &config(args));
    // Replace the freshly trained model with the persisted one and
    // recalibrate against the calibration split.
    let model = model_io::load_from_path(&model_path).unwrap_or_else(|e| {
        eprintln!("failed to read {model_path}: {e}");
        exit(1)
    });
    let calib = score_records(&model, &run.calib_records, 128);
    let test = score_records(&model, &run.test_records, 128);
    run.state = ConformalState::fit(&calib, t.num_events(), 0.5, run.horizon);
    run.calib = calib;
    run.test = test;
    run.model = model;
    (
        run,
        Strategy::Ehcr {
            c: args.c,
            alpha: args.alpha,
        },
    )
}

fn cmd_evaluate(args: &Args) {
    let (run, strategy) = load_context(args);
    let o = run.evaluate(&strategy);
    let cost = run.cost(&o, &CiConfig::default());
    println!("strategy: {strategy:?}");
    println!("REC      {:.4}", o.rec);
    println!("SPL      {:.4}", o.spl);
    println!("REC_c    {:.4}", o.rec_c);
    println!("REC_r    {:.4}", o.rec_r);
    println!("frames   {}", o.frames_relayed);
    println!("expense  ${:.2}", cost.expense);
    println!("fps      {:.1}", cost.fps());
}

fn cmd_marshal(args: &Args) {
    let (run, strategy) = load_context(args);
    let stream = run.stream.clone();
    let features = run.features.clone();
    let mut m = Marshaller::new(
        run.model,
        run.state,
        strategy,
        run.window,
        run.horizon,
        CiConfig::default(),
    );
    let from = (stream.len * 3) / 4;
    let result = m.run(&stream, &features, from, stream.len);
    println!("horizons         {}", result.horizons);
    println!("segments relayed {}", result.segments.len());
    println!("frames relayed   {}", result.cost.frames_relayed);
    println!("frame recall     {:.3}", result.frame_recall());
    println!("instance recall  {:.3}", result.instance_recall());
    println!("expense          ${:.2}", result.cost.expense);
    let (fe, pr, ci) = result.cost.stage_fractions();
    println!(
        "time split       {:.1}% features / {:.1}% predictor / {:.1}% CI",
        fe * 100.0,
        pr * 100.0,
        ci * 100.0
    );
}

/// Trains (or loads) a model and serves it over TCP: one stream lane per
/// admitted client stream, every lane cloning the same trained model and
/// conformal state.
fn cmd_serve(args: &Args) {
    let t = task(&args.task).unwrap_or_else(|| {
        eprintln!("unknown task {}", args.task);
        exit(2)
    });
    eprintln!(
        "training {} at scale {} (seed {}) before serving ...",
        t.id, args.scale, args.seed
    );
    let mut run = TaskRun::execute(&t, &config(args));
    if let Some(path) = &args.model {
        // Serve the persisted weights, recalibrated against this run's
        // calibration split — pairing a loaded model with another
        // model's conformal state would void the coverage guarantees.
        let model = model_io::load_from_path(path).unwrap_or_else(|e| {
            eprintln!("failed to read {path}: {e}");
            exit(1)
        });
        let calib = score_records(&model, &run.calib_records, 128);
        run.state = ConformalState::fit(&calib, t.num_events(), 0.5, run.horizon);
        run.model = model;
    }
    // Calibrate against the scores the served lane actually produces —
    // for the quantized lane this refits the conformal quantiles on int8
    // calibration scores, and for a gating policy on the gated
    // trajectories, so the coverage guarantee transfers either way.
    let state = run.state_for_sampling(&args.sampling, args.lane);
    let (model, lane) = (run.model, args.lane);
    let strategy = Strategy::Ehcr {
        c: args.c,
        alpha: args.alpha,
    };
    let cfg = ServeConfig {
        addr: args.addr.clone(),
        shards: args.shards.max(1),
        workers_per_shard: args.workers_per_shard,
        durable: args.durable.as_ref().map(|dir| {
            let mut opts = DurableOptions::new(dir);
            opts.snapshot_every = args.snapshot_every;
            opts
        }),
        slow_log: args.slow_log.as_ref().map(Into::into),
        sampling: args.sampling.clone(),
        ..ServeConfig::default()
    };
    // A live (wall-clock) recorder so `eventhit-cli top` has windowed
    // rates, stage p99s, and SLO burn to render via MetricsQuery.
    let server = Server::bind_with_telemetry(
        cfg,
        Box::new(move |_stream_id| {
            OnlinePredictor::with_lane(model.clone(), state.clone(), strategy, lane)
        }),
        Arc::new(Telemetry::new()),
    )
    .unwrap_or_else(|e| {
        eprintln!("failed to bind {}: {e}", args.addr);
        exit(1)
    });
    let addr = server.local_addr().expect("bound listener has an address");
    println!(
        "serving {} on {addr} (dim {}, {lane} lane, {} shard{})",
        t.id,
        run.features.cols(),
        args.shards.max(1),
        if args.shards.max(1) == 1 { "" } else { "s" }
    );
    if let Some(dir) = &args.durable {
        println!(
            "durable: event-sourcing sessions into {dir} \
             (snapshot every {} events)",
            args.snapshot_every
        );
    }
    if let Some(path) = &args.slow_log {
        println!("slow log: rewriting {path} at every session end");
    }
    if !args.sampling.is_fixed() {
        println!(
            "sampling: {} (gated frames acknowledged but not encoded)",
            args.sampling.label()
        );
    }
    let pool = Pool::current();
    if args.sessions == 0 {
        server.serve_forever(&pool);
    } else {
        server.serve_sessions(args.sessions, &pool);
    }
}

/// Feeds deterministically regenerated feature rows to a running server
/// over one session with `--streams` interleaved streams, honouring
/// retry-after backpressure, and prints totals.
fn cmd_bench_client(args: &Args) {
    use eventhit::video::features::{extract, FeatureConfig};
    use eventhit::video::stream::VideoStream;

    let t = task(&args.task).unwrap_or_else(|| {
        eprintln!("unknown task {}", args.task);
        exit(2)
    });
    // The same sub-seed derivation as TaskRun::execute, so the rows match
    // the stream the server trained on without training anything here.
    let profile = t.profile().scaled(args.scale);
    let stream = VideoStream::generate(&profile, args.seed.wrapping_mul(31).wrapping_add(1));
    let features = extract(
        &stream,
        &FeatureConfig::default(),
        args.seed.wrapping_mul(37).wrapping_add(2),
    );
    let dim = features.cols() as u32;
    let rows = if args.frames == 0 {
        features.rows()
    } else {
        args.frames.min(features.rows())
    };

    let mut client = ServeClient::connect(&args.addr).unwrap_or_else(|e| {
        eprintln!("failed to connect to {}: {e}", args.addr);
        exit(1)
    });
    let limits = client.negotiated();
    eprintln!(
        "connected to {} (batch cap {}, queue cap {})",
        args.addr, limits.max_batch_frames, limits.max_queue_frames
    );
    for s in 0..args.streams {
        client
            .open_stream(s)
            .expect("open_stream I/O")
            .expect_ok("open_stream");
    }

    let started = std::time::Instant::now();
    let mut decisions = 0u64;
    let mut retries = 0u64;
    let batch = args.batch.max(1).min(limits.max_batch_frames as usize);
    let mut at = 0usize;
    while at < rows {
        let hi = (at + batch).min(rows);
        let mut data = Vec::with_capacity((hi - at) * dim as usize);
        for r in at..hi {
            data.extend_from_slice(features.row(r));
        }
        for s in 0..args.streams {
            loop {
                let reply = client.submit(s, dim, data.clone()).unwrap_or_else(|e| {
                    if is_disconnected(&e) {
                        eprintln!(
                            "server disconnected mid-session; if it serves with \
                             --durable, restart it and resume from frame {at}"
                        );
                    } else {
                        eprintln!("submit failed: {e}");
                    }
                    exit(1)
                });
                match reply {
                    Response::Ok(ds) => {
                        decisions += ds.len() as u64;
                        break;
                    }
                    Response::Rejected(r) => {
                        retries += 1;
                        std::thread::sleep(std::time::Duration::from_millis(
                            r.retry_after_ms.max(1) as u64,
                        ));
                    }
                }
            }
        }
        at = hi;
    }
    let health = client.health().expect("health I/O");
    for s in 0..args.streams {
        let summary = client
            .close_stream(s)
            .expect("close_stream I/O")
            .expect_ok("close_stream");
        println!(
            "stream {s}: {} frames in, {} decisions out",
            summary.frames, summary.decisions
        );
    }
    let secs = started.elapsed().as_secs_f64();
    println!(
        "fed {} frames x {} streams in {secs:.2}s ({:.0} frames/s), \
         {decisions} decisions, {retries} backpressure retries",
        rows,
        args.streams,
        (rows as f64 * args.streams as f64) / secs.max(1e-9),
    );
    println!(
        "server totals: {} sessions, {} frames, {} decisions",
        health.sessions, health.frames, health.decisions
    );
}

/// Trains a model, binds a sharded server in-process, and drives a
/// deterministic synthetic fleet of `--streams` streams against it:
/// seeded arrival schedule (uniform or Gilbert–Elliott bursty), sliding
/// per-session admission windows, retry-after honored under a cap. After
/// the drive it pulls the minor-2 metrics plane for per-stage saturation
/// quantiles, re-runs every stream through the in-process `run_lanes`
/// baseline, and exits non-zero if any served decision diverges. Results
/// go to `results/fleet_load.tsv` and `BENCH_fleet.json` at the
/// workspace root. `--smoke` shrinks training and pacing for CI.
fn cmd_bench_fleet(args: &Args) {
    use eventhit::core::multi::{run_lanes, LaneDecision, StreamLane};
    use eventhit::nn::matrix::Matrix;
    use eventhit::serve::convert::decision_from_wire;

    let t = task(&args.task).unwrap_or_else(|| {
        eprintln!("unknown task {}", args.task);
        exit(2)
    });
    let exp = if args.smoke {
        ExperimentConfig::quick(args.seed)
    } else {
        config(args)
    };
    eprintln!(
        "training {} at scale {} (seed {}) before the fleet drive ...",
        t.id, exp.scale, exp.seed
    );
    let run = TaskRun::execute(&t, &exp);
    let state = run.state_for_lane(args.lane);
    let (model, lane) = (run.model.clone(), args.lane);
    let strategy = Strategy::Ehcr {
        c: args.c,
        alpha: args.alpha,
    };
    // The shared feature pool every synthetic stream draws its rows from
    // (each stream wraps the pool from its own deterministic offset).
    let rows: Vec<Vec<f32>> = (0..run.features.rows())
        .map(|r| run.features.row(r).to_vec())
        .collect();

    let shards = args.shards.max(1);
    let spec = FleetSpec {
        streams: args.streams,
        sessions: args.sessions.max(1),
        window: args.window.max(1),
        batch: args.batch.max(1),
        rounds: if args.smoke {
            args.rounds.clamp(1, 2)
        } else {
            args.rounds.max(1)
        },
        pattern: args.pattern,
        seed: args.seed,
        slot_micros: if args.smoke { 20 } else { 100 },
        retry_cap_ms: 2,
    };
    // Undersize the cap against offered concurrency so admission rejects
    // are observable, but never below the shard count — a shard with a
    // zero-stream slice could never admit its streams.
    let cap = if args.cap > 0 {
        args.cap.max(shards)
    } else {
        ((spec.sessions * spec.window * 3 / 4) as u32).max(shards)
    };

    let (model_f, state_f) = (model.clone(), state.clone());
    let server = Server::bind_with_telemetry(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            shards,
            workers_per_shard: args.workers_per_shard,
            max_streams: cap,
            ..ServeConfig::default()
        },
        Box::new(move |_stream_id| {
            OnlinePredictor::with_lane(model_f.clone(), state_f.clone(), strategy, lane)
        }),
        Arc::new(Telemetry::new()),
    )
    .unwrap_or_else(|e| {
        eprintln!("failed to bind fleet server: {e}");
        exit(1)
    });
    let addr = server.local_addr().expect("bound listener has an address");
    let driver_sessions = spec.sessions;
    // +1 session: the post-drive metrics/health probe below.
    let server_thread = std::thread::spawn(move || {
        server.serve_sessions(driver_sessions + 1, &Pool::current());
    });

    eprintln!(
        "driving {} streams x {} frames over {} sessions \
         ({:?} arrivals, {} shard(s), cap {} streams) ...",
        spec.streams,
        spec.frames_per_stream(),
        spec.sessions,
        spec.pattern,
        shards,
        cap
    );
    let report = fleet::drive(&addr.to_string(), &rows, &spec).unwrap_or_else(|e| {
        eprintln!("fleet drive failed: {e}");
        exit(1)
    });

    let mut probe = ServeClient::connect(addr).unwrap_or_else(|e| {
        eprintln!("failed to connect metrics probe: {e}");
        exit(1)
    });
    let metrics = probe.metrics().expect("metrics I/O");
    let health = probe.health().expect("health I/O");
    drop(probe);
    server_thread.join().expect("server thread");
    let stages = fleet::summarize_stages(&metrics);

    // Decision-divergence check: every stream, re-run through the
    // in-process run_lanes path from identical rows. The fleet report is
    // already in run_lanes' global (anchor, stream_id) order.
    eprintln!("verifying decisions against the in-process run_lanes baseline ...");
    let frames = spec.frames_per_stream();
    let lanes: Vec<StreamLane> = (0..spec.streams)
        .map(|s| StreamLane {
            stream_id: s as usize,
            predictor: OnlinePredictor::with_lane(model.clone(), state.clone(), strategy, lane),
            features: Matrix::from_rows(
                &(0..frames)
                    .map(|r| fleet::stream_row(&rows, s, r).to_vec())
                    .collect::<Vec<_>>(),
            ),
            from: 0,
        })
        .collect();
    let baseline = run_lanes(lanes, &Pool::current());
    let served: Vec<LaneDecision> = report
        .decisions
        .iter()
        .map(|(s, d)| LaneDecision {
            stream_id: *s as usize,
            decision: decision_from_wire(d),
        })
        .collect();
    let diverged = served != baseline;

    let fps = report.frames_sent as f64 / report.elapsed_seconds.max(1e-9);
    let run_line = format!(
        "task={} streams={} sessions={} window={} batch={} rounds={} \
         shards={} cap={} pattern={:?} seed={} smoke={}",
        t.id,
        spec.streams,
        spec.sessions,
        spec.window,
        spec.batch,
        spec.rounds,
        shards,
        cap,
        spec.pattern,
        spec.seed,
        args.smoke
    );
    let totals_line = format!(
        "streams_driven={} frames_sent={} decisions={} admission_rejects={} \
         queue_rejects={} retry_waited_ms={} elapsed_s={:.3} frames_per_s={:.0}",
        report.streams_driven,
        report.frames_sent,
        report.decisions.len(),
        report.admission_rejects,
        report.queue_rejects,
        report.retry_waited_ms,
        report.elapsed_seconds,
        fps
    );

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let results_dir = root.join("results");
    std::fs::create_dir_all(&results_dir).expect("create results/");
    let mut tsv = format!("# bench-fleet {run_line}\n# {totals_line}\n");
    tsv.push_str("stage\tlabel\tcount\tp50_peak_us\tp99_peak_us\n");
    for s in &stages {
        tsv.push_str(&format!(
            "{}\t{}\t{}\t{:.1}\t{:.1}\n",
            s.name,
            if s.label.is_empty() { "-" } else { &s.label },
            s.count,
            s.p50_peak * 1e6,
            s.p99_peak * 1e6
        ));
    }
    let tsv_path = results_dir.join("fleet_load.tsv");
    std::fs::write(&tsv_path, &tsv).expect("write fleet_load.tsv");

    let stage_json: Vec<String> = stages
        .iter()
        .map(|s| {
            format!(
                "{{\"name\":\"{}\",\"label\":\"{}\",\"count\":{},\
                 \"p50_peak_us\":{:.1},\"p99_peak_us\":{:.1}}}",
                s.name,
                s.label,
                s.count,
                s.p50_peak * 1e6,
                s.p99_peak * 1e6
            )
        })
        .collect();
    let json = format!(
        "{{\"smoke\":{},\"task\":\"{}\",\"streams\":{},\"sessions\":{},\
         \"window\":{},\"batch\":{},\"rounds\":{},\"shards\":{},\"cap\":{},\
         \"pattern\":\"{:?}\",\"seed\":{},\"streams_driven\":{},\
         \"frames_sent\":{},\"decisions\":{},\"admission_rejects\":{},\
         \"queue_rejects\":{},\"retry_waited_ms\":{},\
         \"elapsed_seconds\":{:.3},\"frames_per_second\":{:.0},\
         \"stages\":[{}],\"decision_divergence\":{}}}\n",
        args.smoke,
        t.id,
        spec.streams,
        spec.sessions,
        spec.window,
        spec.batch,
        spec.rounds,
        shards,
        cap,
        spec.pattern,
        spec.seed,
        report.streams_driven,
        report.frames_sent,
        report.decisions.len(),
        report.admission_rejects,
        report.queue_rejects,
        report.retry_waited_ms,
        report.elapsed_seconds,
        fps,
        stage_json.join(","),
        if diverged { served.len().max(1) } else { 0 }
    );
    let json_path = root.join("BENCH_fleet.json");
    std::fs::write(&json_path, &json).expect("write BENCH_fleet.json");

    println!("fleet: {run_line}");
    println!("totals: {totals_line}");
    println!(
        "server health: {} sessions, {} frames, {} decisions, {} active streams",
        health.sessions, health.frames, health.decisions, health.active_streams
    );
    for s in &stages {
        println!(
            "  {:<28} {:>8} samples  p50 {:>9.1} us  p99 {:>9.1} us",
            if s.label.is_empty() {
                s.name.clone()
            } else {
                format!("{}{{{}}}", s.name, s.label)
            },
            s.count,
            s.p50_peak * 1e6,
            s.p99_peak * 1e6
        );
    }
    println!("wrote {}", tsv_path.display());
    println!("wrote {}", json_path.display());
    if diverged {
        eprintln!(
            "DECISION DIVERGENCE: served {} decisions, baseline {} — \
             sharded serving must be bit-identical to run_lanes",
            served.len(),
            baseline.len()
        );
        exit(1);
    }
    println!(
        "decision divergence: none ({} decisions bit-identical to run_lanes)",
        baseline.len()
    );
}

/// One timed in-process `run_lanes` drive: `streams` lanes over the
/// task's full feature matrix, every lane gating with `policy`.
struct LaneDrive {
    decisions: usize,
    frames: u64,
    seconds: f64,
    fps: f64,
    skipped: u64,
    carried: u64,
}

impl LaneDrive {
    fn skip_rate(&self) -> f64 {
        self.skipped as f64 / self.frames.max(1) as f64
    }
}

#[allow(clippy::too_many_arguments)] // one call site per sweep cell; a config struct would just rename the arguments
fn drive_lanes(
    run: &TaskRun,
    state: &ConformalState,
    strategy: Strategy,
    lane: InferenceLane,
    policy: &SamplingPolicy,
    streams: u32,
    reps: usize,
    pool: &eventhit::parallel::Pool,
) -> LaneDrive {
    use eventhit::core::multi::{run_lanes, StreamLane};
    let frames = run.features.rows() as u64 * streams as u64;
    let mut best: Option<LaneDrive> = None;
    // Predictors are consumed by the drive, so each repetition rebuilds
    // its lanes; the best-of-`reps` wall time filters scheduler noise
    // out of short drives.
    for _ in 0..reps.max(1) {
        let telemetry = Arc::new(Telemetry::new());
        let lanes: Vec<StreamLane> = (0..streams)
            .map(|s| {
                let mut predictor = OnlinePredictor::with_policy(
                    run.model.clone(),
                    state.clone(),
                    strategy,
                    lane,
                    policy.clone(),
                );
                predictor.set_telemetry(Arc::clone(&telemetry));
                StreamLane {
                    stream_id: s as usize,
                    predictor,
                    features: run.features.clone(),
                    from: 0,
                }
            })
            .collect();
        let started = std::time::Instant::now();
        let decisions = run_lanes(lanes, pool);
        let seconds = started.elapsed().as_secs_f64();
        let snap = telemetry.snapshot();
        let d = LaneDrive {
            decisions: decisions.len(),
            frames,
            seconds,
            fps: frames as f64 / seconds.max(1e-9),
            skipped: snap.counter_total("stream.frames_skipped"),
            carried: snap.counter_total("stream.decisions_carried"),
        };
        if best.as_ref().is_none_or(|b| d.seconds < b.seconds) {
            best = Some(d);
        }
    }
    best.expect("at least one repetition")
}

/// C-CLASSIFY miss and positive counts for event 0 at confidence `c` —
/// the same coverage proxy as the workspace conformal test suites.
/// Returned as raw counts so the sweep can pool them across seeds before
/// taking a rate: single-seed test splits at smoke scale hold only a few
/// dozen positives, far too few to resolve a one-percentage-point drift.
fn miss_counts(
    state: &ConformalState,
    test: &[eventhit::core::ScoredRecord],
    c: f64,
) -> (usize, usize) {
    let mut misses = 0usize;
    let mut positives = 0usize;
    for rec in test {
        if !rec.labels[0].present {
            continue;
        }
        positives += 1;
        if !state.classifier(0).predict(rec.scores[0].b, c) {
            misses += 1;
        }
    }
    (misses, positives)
}

/// Trains once and drives `--streams` gated lanes through the in-process
/// `run_lanes` path, printing throughput and gate telemetry. The offline
/// twin of `serve --sampling`: same predictors, same policy, no sockets.
fn cmd_run_lanes(args: &Args) {
    let t = task(&args.task).unwrap_or_else(|| {
        eprintln!("unknown task {}", args.task);
        exit(2)
    });
    eprintln!(
        "training {} at scale {} (seed {}) before the lane drive ...",
        t.id, args.scale, args.seed
    );
    let run = TaskRun::execute(&t, &config(args));
    // Calibrate on the gated trajectories the lanes will actually see.
    let state = run.state_for_sampling(&args.sampling, args.lane);
    let strategy = Strategy::Ehcr {
        c: args.c,
        alpha: args.alpha,
    };
    let pool = eventhit::parallel::Pool::current();
    let d = drive_lanes(
        &run,
        &state,
        strategy,
        args.lane,
        &args.sampling,
        args.streams,
        1,
        &pool,
    );
    println!(
        "policy {}: {} streams x {} frames on {} workers",
        args.sampling.label(),
        args.streams,
        run.features.rows(),
        pool.workers()
    );
    println!("decisions        {}", d.decisions);
    println!("frames/s         {:.0}", d.fps);
    println!("frames/s/core    {:.0}", d.fps / pool.workers() as f64);
    println!(
        "frames skipped   {} ({:.1}% of fed)",
        d.skipped,
        d.skip_rate() * 100.0
    );
    println!("carried          {}", d.carried);
    println!("elapsed          {:.2}s", d.seconds);
}

/// The sampling ablation frontier: one row per policy, each with the
/// conformal state refitted on that policy's gated calibration
/// trajectories, quality evaluated on the gated test split, and
/// throughput from a timed `run_lanes` drive. Results go to
/// `results/sampling_frontier.tsv` and `BENCH_sampling.json` at the
/// workspace root. `--smoke` shrinks the grid and training for CI and
/// exits non-zero when coverage drifts more than a percentage point from
/// the ungated lane or the delta gate fails to skip anything.
fn cmd_sweep_sampling(args: &Args) {
    use eventhit::core::evaluate;
    use eventhit::core::infer::IntervalPrediction;

    let t = task(&args.task).unwrap_or_else(|| {
        eprintln!("unknown task {}", args.task);
        exit(2)
    });
    // Quality and coverage are pooled over several seeds: each seed is a
    // full train/calibrate/test run and the miss counts are summed before
    // the rate is taken, exactly as the quantized-coverage suite pools
    // its lane runs. Throughput is timed on the first seed only.
    const POOLED_SEEDS: u64 = 3;
    let exps: Vec<ExperimentConfig> = (0..POOLED_SEEDS)
        .map(|i| {
            if args.smoke {
                ExperimentConfig {
                    scale: 0.4,
                    ..ExperimentConfig::quick(args.seed + i)
                }
            } else {
                ExperimentConfig {
                    seed: args.seed + i,
                    ..config(args)
                }
            }
        })
        .collect();
    let exp = exps[0].clone();
    eprintln!(
        "training {} at scale {} over {} seeds ({}..={}) before the sampling sweep ...",
        t.id,
        exp.scale,
        POOLED_SEEDS,
        args.seed,
        args.seed + POOLED_SEEDS - 1
    );
    let runs: Vec<TaskRun> = exps.iter().map(|e| TaskRun::execute(&t, e)).collect();
    let run = &runs[0];
    let strategy = Strategy::Ehcr {
        c: args.c,
        alpha: args.alpha,
    };
    let pool = eventhit::parallel::Pool::current();
    let reps = if args.smoke { 2 } else { 3 };
    // One untimed warmup drive so the first measured cell does not pay
    // for thread-pool spin-up and cold caches.
    drive_lanes(
        run,
        &run.state,
        strategy,
        args.lane,
        &SamplingPolicy::Fixed,
        args.streams,
        1,
        &pool,
    );
    // `adaptive:0:N` is the pure query-aware-windowing point: threshold 0
    // never gates a frame or carries an anchor, so the whole effect is the
    // recurrent encoder running `m` steps instead of `M` while the stream
    // is quiet — the safest speedup on the frontier. The delta cells then
    // chart how far the gate can be pushed before coverage drifts.
    let specs: &[&str] = if args.smoke {
        &["fixed", "delta:0.01", "adaptive:0:4"]
    } else {
        &[
            "fixed",
            "delta:0.01",
            "delta:0.02",
            "delta:0.05",
            "delta:0.1",
            "delta:0.2",
            "adaptive:0:2",
            "adaptive:0:4",
            "adaptive:0.02:4",
            "adaptive:0.05:4",
        ]
    };
    let (base_misses, base_positives) = runs.iter().fold((0usize, 0usize), |(m, p), r| {
        let (mi, pi) = miss_counts(&r.state, &r.test, 0.9);
        (m + mi, p + pi)
    });
    let base_miss = base_misses as f64 / base_positives.max(1) as f64;

    struct Cell {
        label: String,
        rec: f64,
        spl: f64,
        miss: f64,
        positives: usize,
        skip_rate: f64,
        fps_core: f64,
        speedup: f64,
        carried: u64,
    }
    let mut cells: Vec<Cell> = Vec::new();
    let mut fixed_fps_core = 0f64;
    for spec in specs {
        let policy = SamplingPolicy::parse(spec).expect("grid specs are valid");
        // Pool quality over every seed: refit the conformal state on each
        // seed's gated calibration split, score its gated test split, and
        // sum the miss counts before taking the rate.
        let mut misses = 0usize;
        let mut positives = 0usize;
        let mut rec_sum = 0f64;
        let mut spl_sum = 0f64;
        let mut drive_state = None;
        for r in &runs {
            let state = r.state_for_sampling(&policy, args.lane);
            let test = r.sampled_test(&policy, args.lane);
            let preds: Vec<Vec<IntervalPrediction>> = test
                .iter()
                .map(|rec| state.predict(rec, &strategy))
                .collect();
            let outcome = evaluate(&preds, &test, r.horizon as u32);
            rec_sum += outcome.rec;
            spl_sum += outcome.spl;
            let (mi, pi) = miss_counts(&state, &test, 0.9);
            misses += mi;
            positives += pi;
            if drive_state.is_none() {
                drive_state = Some(state);
            }
        }
        let miss = misses as f64 / positives.max(1) as f64;
        let state = drive_state.expect("at least one pooled seed");
        let d = drive_lanes(
            run,
            &state,
            strategy,
            args.lane,
            &policy,
            args.streams,
            reps,
            &pool,
        );
        let fps_core = d.fps / pool.workers() as f64;
        if policy.is_fixed() {
            fixed_fps_core = fps_core;
        }
        let speedup = if fixed_fps_core > 0.0 {
            fps_core / fixed_fps_core
        } else {
            1.0
        };
        let rec = rec_sum / POOLED_SEEDS as f64;
        let spl = spl_sum / POOLED_SEEDS as f64;
        eprintln!(
            "  {:<18} REC {:.3}  miss@0.9 {:.3}  skip {:>5.1}%  carried {:>6}  \
             {:>7.0} frames/s/core ({:.2}x)",
            policy.label(),
            rec,
            miss,
            d.skip_rate() * 100.0,
            d.carried,
            fps_core,
            speedup
        );
        cells.push(Cell {
            label: policy.label(),
            rec,
            spl,
            miss,
            positives,
            skip_rate: d.skip_rate(),
            fps_core,
            speedup,
            carried: d.carried,
        });
    }

    let run_line = format!(
        "task={} scale={} seeds={}..={} lane={} streams={} workers={} reps={} c=0.9 smoke={}",
        t.id,
        exp.scale,
        args.seed,
        args.seed + POOLED_SEEDS - 1,
        args.lane,
        args.streams,
        pool.workers(),
        reps,
        args.smoke
    );
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let results_dir = root.join("results");
    std::fs::create_dir_all(&results_dir).expect("create results/");
    let mut tsv = format!(
        "# sweep-sampling {run_line}\n\
         # ungated miss@0.9={base_miss:.4} positives={base_positives}\n\
         policy\trec\tspl\tmiss_at_0.9\tmiss_delta\tpositives\tskip_rate\t\
         frames_per_s_per_core\tspeedup_vs_fixed\tcarried\n"
    );
    for c in &cells {
        tsv.push_str(&format!(
            "{}\t{:.4}\t{:.4}\t{:.4}\t{:+.4}\t{}\t{:.4}\t{:.0}\t{:.3}\t{}\n",
            c.label,
            c.rec,
            c.spl,
            c.miss,
            c.miss - base_miss,
            c.positives,
            c.skip_rate,
            c.fps_core,
            c.speedup,
            c.carried
        ));
    }
    let tsv_path = results_dir.join("sampling_frontier.tsv");
    std::fs::write(&tsv_path, &tsv).expect("write sampling_frontier.tsv");

    let cell_json: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "{{\"policy\":\"{}\",\"rec\":{:.4},\"spl\":{:.4},\
                 \"miss_at_0_9\":{:.4},\"miss_delta\":{:.4},\"positives\":{},\
                 \"skip_rate\":{:.4},\"frames_per_s_per_core\":{:.0},\
                 \"speedup_vs_fixed\":{:.3},\"carried\":{}}}",
                c.label,
                c.rec,
                c.spl,
                c.miss,
                c.miss - base_miss,
                c.positives,
                c.skip_rate,
                c.fps_core,
                c.speedup,
                c.carried
            )
        })
        .collect();
    let best_speedup = cells
        .iter()
        .filter(|c| c.label != "fixed")
        .map(|c| c.speedup)
        .fold(0.0f64, f64::max);
    // The headline number: the fastest policy whose pooled coverage still
    // tracks the ungated lane within a percentage point.
    let best_valid_speedup = cells
        .iter()
        .filter(|c| c.label != "fixed" && (c.miss - base_miss).abs() <= 0.01 + 1e-12)
        .map(|c| c.speedup)
        .fold(0.0f64, f64::max);
    let json = format!(
        "{{\"smoke\":{},\"task\":\"{}\",\"scale\":{},\"seed\":{},\"pooled_seeds\":{POOLED_SEEDS},\
         \"lane\":\"{}\",\"streams\":{},\"workers\":{},\
         \"ungated_miss_at_0_9\":{:.4},\"ungated_positives\":{},\
         \"best_gated_speedup\":{:.3},\"best_valid_speedup\":{:.3},\"cells\":[{}]}}\n",
        args.smoke,
        t.id,
        exp.scale,
        args.seed,
        args.lane,
        args.streams,
        pool.workers(),
        base_miss,
        base_positives,
        best_speedup,
        best_valid_speedup,
        cell_json.join(",")
    );
    let json_path = root.join("BENCH_sampling.json");
    std::fs::write(&json_path, &json).expect("write BENCH_sampling.json");
    println!("sweep: {run_line}");
    println!("wrote {}", tsv_path.display());
    println!("wrote {}", json_path.display());

    // Self-enforcement. In smoke mode (the CI job) the grid is chosen
    // conservative, so *every* cell must hold pooled coverage within a
    // percentage point of the ungated lane (the same tolerance the
    // quantized lane is held to) and the delta-gate cells must actually
    // gate — a zero skip rate means the threshold is dead. The full
    // frontier deliberately includes thresholds past the coverage cliff
    // (that cliff is the ablation's point), so there only the headline
    // claim is enforced: some policy must be >= 1.3x faster than Fixed
    // per core while still tracking coverage within the tolerance.
    if args.smoke {
        let mut violated = false;
        for c in &cells {
            if (c.miss - base_miss).abs() > 0.01 + 1e-12 {
                eprintln!(
                    "COVERAGE DRIFT: {} miss@0.9 {:.4} vs ungated {:.4} (|delta| > 0.01)",
                    c.label, c.miss, base_miss
                );
                violated = true;
            }
            if c.label.starts_with("delta@") && c.skip_rate <= 0.0 {
                eprintln!("DEAD GATE: {} skipped no frames", c.label);
                violated = true;
            }
        }
        if violated {
            exit(1);
        }
        println!(
            "coverage within ±1% of ungated on all {} policies; best gated speedup {:.2}x",
            cells.len(),
            best_speedup
        );
    } else {
        if best_valid_speedup < 1.3 {
            eprintln!(
                "FRONTIER REGRESSION: best coverage-valid speedup {:.2}x < 1.3x",
                best_valid_speedup
            );
            exit(1);
        }
        println!(
            "best speedup with coverage within ±1% of ungated: {best_valid_speedup:.2}x \
             (best overall {best_speedup:.2}x)"
        );
    }
}

/// Polls a running server's `MetricsQuery` endpoint and renders a live
/// terminal dashboard: SLO burn, per-stage p99s, per-stream ingest
/// rates, and reject counters. `--iters 0` (the default) polls until
/// interrupted; a positive `--iters` renders that many frames and exits
/// (useful for scripting and smoke tests).
fn cmd_top(args: &Args) {
    let mut client = ServeClient::connect(&args.addr).unwrap_or_else(|e| {
        eprintln!("failed to connect to {}: {e}", args.addr);
        exit(1)
    });
    let mut rendered = 0u64;
    loop {
        let m = client.metrics().unwrap_or_else(|e| {
            if is_disconnected(&e) {
                eprintln!("server disconnected");
            } else {
                eprintln!("metrics query failed: {e}");
            }
            exit(1)
        });
        render_top(&args.addr, &m);
        rendered += 1;
        if args.iters != 0 && rendered >= args.iters {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(args.interval_ms.max(1)));
    }
}

/// One `top` frame: clear the terminal and redraw from a `MetricsReply`.
fn render_top(addr: &str, m: &MetricsInfo) {
    print!("\x1b[2J\x1b[H");
    println!(
        "eventhit top — {addr} @ clock {:.1}s (windows of {:.0} ms)",
        m.clock_now,
        m.window_secs * 1000.0
    );
    println!();
    if m.slos.is_empty() {
        println!("SLOs: none registered (server running without telemetry?)");
    }
    for slo in &m.slos {
        let label = if slo.label.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", slo.label)
        };
        println!(
            "SLO {}{}: p99 < {:.0} ms @ {:.1}% — {} served, {} violations, burn {:.2}x",
            slo.name,
            label,
            slo.threshold * 1000.0,
            slo.objective * 100.0,
            slo.total,
            slo.violations,
            slo.burn_rate()
        );
    }
    println!();
    println!("stage p99 (latest window):");
    let mut any_stage = false;
    for series in &m.series {
        if series.name != "serve.stage_seconds" && series.name != "stream.stage_seconds" {
            continue;
        }
        if let Some(w) = series.windows.last() {
            any_stage = true;
            println!(
                "  {:<14} {:>10.1} us  ({} samples)",
                series.label,
                w.p99 * 1e6,
                w.count
            );
        }
    }
    if !any_stage {
        println!("  (no decisions yet)");
    }
    println!();
    println!("streams (latest-window ingest):");
    let mut any_stream = false;
    for series in &m.series {
        if series.name != "serve.stream_frames" {
            continue;
        }
        if let Some(w) = series.windows.last() {
            any_stream = true;
            println!(
                "  stream {:<6} {:>9.1} frames/s  ({} batches)",
                series.label,
                w.sum / m.window_secs.max(1e-9),
                w.count
            );
        }
    }
    if !any_stream {
        println!("  (no frames yet)");
    }
    println!();
    let rejects: Vec<_> = m
        .counters
        .iter()
        .filter(|c| c.name == "serve.rejected")
        .collect();
    if rejects.is_empty() {
        println!("rejects: none");
    } else {
        println!("rejects:");
        for c in rejects {
            println!("  {:<16} {}", c.label, c.value);
        }
    }
    let total = |name: &str| {
        m.counters
            .iter()
            .find(|c| c.name == name && c.label.is_empty())
            .map_or(0, |c| c.value)
    };
    println!();
    println!(
        "totals: {} sessions, {} frames, {} decisions",
        total("serve.sessions"),
        total("serve.frames"),
        total("serve.decisions")
    );
}

fn main() {
    let mut argv = std::env::args().skip(1);
    let Some(cmd) = argv.next() else { usage() };
    match cmd.as_str() {
        "tasks" => cmd_tasks(),
        "train" => cmd_train(&parse(argv)),
        "evaluate" => cmd_evaluate(&parse(argv)),
        "marshal" => cmd_marshal(&parse(argv)),
        "serve" => cmd_serve(&parse(argv)),
        "bench-client" => cmd_bench_client(&parse(argv)),
        "bench-fleet" => cmd_bench_fleet(&parse_from(
            Args {
                streams: 1024,
                sessions: 16,
                ..Args::default()
            },
            argv,
        )),
        "run-lanes" => cmd_run_lanes(&parse_from(
            Args {
                streams: 8,
                ..Args::default()
            },
            argv,
        )),
        "sweep-sampling" => cmd_sweep_sampling(&parse_from(
            Args {
                streams: 8,
                scale: 0.2,
                ..Args::default()
            },
            argv,
        )),
        "top" => cmd_top(&parse(argv)),
        "--help" | "-h" | "help" => usage(),
        _ => usage(),
    }
}
