//! `eventhit-cli` — train, persist, evaluate, and marshal from the shell.
//!
//! ```text
//! eventhit-cli tasks
//! eventhit-cli train    --task TA10 --scale 0.3 --seed 7 --out model.evht
//! eventhit-cli evaluate --task TA10 --scale 0.3 --seed 7 --model model.evht \
//!                       [--c 0.95] [--alpha 0.9]
//! eventhit-cli marshal  --task TA10 --scale 0.3 --seed 7 --model model.evht \
//!                       [--c 0.95] [--alpha 0.9]
//! ```
//!
//! The synthetic stream is a pure function of `(task, scale, seed)`, so
//! `evaluate`/`marshal` regenerate exactly the stream the model was trained
//! against and calibrate on its calibration split.

use std::process::exit;

use eventhit::core::ci::CiConfig;
use eventhit::core::experiment::{ExperimentConfig, TaskRun};
use eventhit::core::infer::score_records;
use eventhit::core::marshal::Marshaller;
use eventhit::core::model_io;
use eventhit::core::pipeline::{ConformalState, Strategy};
use eventhit::core::tasks::{all_tasks, task};

#[derive(Debug, Clone)]
struct Args {
    task: String,
    scale: f64,
    seed: u64,
    model: Option<String>,
    out: Option<String>,
    c: f64,
    alpha: f64,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            task: "TA10".into(),
            scale: 0.3,
            seed: 7,
            model: None,
            out: None,
            c: 0.95,
            alpha: 0.9,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: eventhit-cli <tasks|train|evaluate|marshal> \
         [--task TAi] [--scale F] [--seed N] [--model PATH] [--out PATH] \
         [--c F] [--alpha F]"
    );
    exit(2)
}

fn parse(mut it: impl Iterator<Item = String>) -> Args {
    let mut args = Args::default();
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--task" => args.task = value(),
            "--scale" => args.scale = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| usage()),
            "--model" => args.model = Some(value()),
            "--out" => args.out = Some(value()),
            "--c" => args.c = value().parse().unwrap_or_else(|_| usage()),
            "--alpha" => args.alpha = value().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    args
}

fn config(args: &Args) -> ExperimentConfig {
    ExperimentConfig {
        scale: args.scale,
        seed: args.seed,
        ..Default::default()
    }
}

fn cmd_tasks() {
    println!("task\tdataset\tevents\tM\tH");
    for t in all_tasks() {
        let p = t.profile();
        println!(
            "{}\t{:?}\t{}\t{}\t{}",
            t.id,
            t.dataset,
            t.events.join(","),
            p.collection_window,
            p.horizon
        );
    }
}

fn cmd_train(args: &Args) {
    let t = task(&args.task).unwrap_or_else(|| {
        eprintln!("unknown task {}", args.task);
        exit(2)
    });
    eprintln!(
        "training {} at scale {} (seed {}) ...",
        t.id, args.scale, args.seed
    );
    let mut run = TaskRun::execute(&t, &config(args));
    eprintln!(
        "  {} train records, final loss {:.4}, {} parameters",
        run.train_records.len(),
        run.train_report.final_loss,
        run.model.param_count()
    );
    let out = args
        .out
        .clone()
        .unwrap_or_else(|| format!("{}.evht", t.id.to_lowercase()));
    model_io::save_to_path(&mut run.model, &out).unwrap_or_else(|e| {
        eprintln!("failed to write {out}: {e}");
        exit(1)
    });
    println!("model written to {out}");
}

/// Rebuilds the deterministic task context and calibrates the loaded model.
fn load_context(args: &Args) -> (TaskRun, Strategy) {
    let t = task(&args.task).unwrap_or_else(|| {
        eprintln!("unknown task {}", args.task);
        exit(2)
    });
    let model_path = args.model.clone().unwrap_or_else(|| usage());
    eprintln!(
        "regenerating {} stream (scale {}, seed {}) ...",
        t.id, args.scale, args.seed
    );
    let mut run = TaskRun::execute(&t, &config(args));
    // Replace the freshly trained model with the persisted one and
    // recalibrate against the calibration split.
    let model = model_io::load_from_path(&model_path).unwrap_or_else(|e| {
        eprintln!("failed to read {model_path}: {e}");
        exit(1)
    });
    let calib = score_records(&model, &run.calib_records, 128);
    let test = score_records(&model, &run.test_records, 128);
    run.state = ConformalState::fit(&calib, t.num_events(), 0.5, run.horizon);
    run.calib = calib;
    run.test = test;
    run.model = model;
    (
        run,
        Strategy::Ehcr {
            c: args.c,
            alpha: args.alpha,
        },
    )
}

fn cmd_evaluate(args: &Args) {
    let (run, strategy) = load_context(args);
    let o = run.evaluate(&strategy);
    let cost = run.cost(&o, &CiConfig::default());
    println!("strategy: {strategy:?}");
    println!("REC      {:.4}", o.rec);
    println!("SPL      {:.4}", o.spl);
    println!("REC_c    {:.4}", o.rec_c);
    println!("REC_r    {:.4}", o.rec_r);
    println!("frames   {}", o.frames_relayed);
    println!("expense  ${:.2}", cost.expense);
    println!("fps      {:.1}", cost.fps());
}

fn cmd_marshal(args: &Args) {
    let (run, strategy) = load_context(args);
    let stream = run.stream.clone();
    let features = run.features.clone();
    let mut m = Marshaller::new(
        run.model,
        run.state,
        strategy,
        run.window,
        run.horizon,
        CiConfig::default(),
    );
    let from = (stream.len * 3) / 4;
    let result = m.run(&stream, &features, from, stream.len);
    println!("horizons         {}", result.horizons);
    println!("segments relayed {}", result.segments.len());
    println!("frames relayed   {}", result.cost.frames_relayed);
    println!("frame recall     {:.3}", result.frame_recall());
    println!("instance recall  {:.3}", result.instance_recall());
    println!("expense          ${:.2}", result.cost.expense);
    let (fe, pr, ci) = result.cost.stage_fractions();
    println!(
        "time split       {:.1}% features / {:.1}% predictor / {:.1}% CI",
        fe * 100.0,
        pr * 100.0,
        ci * 100.0
    );
}

fn main() {
    let mut argv = std::env::args().skip(1);
    let Some(cmd) = argv.next() else { usage() };
    match cmd.as_str() {
        "tasks" => cmd_tasks(),
        "train" => cmd_train(&parse(argv)),
        "evaluate" => cmd_evaluate(&parse(argv)),
        "marshal" => cmd_marshal(&parse(argv)),
        "--help" | "-h" | "help" => usage(),
        _ => usage(),
    }
}
