//! `eventhit-cli` — train, persist, evaluate, and marshal from the shell.
//!
//! ```text
//! eventhit-cli tasks
//! eventhit-cli train    --task TA10 --scale 0.3 --seed 7 --out model.evht
//! eventhit-cli evaluate --task TA10 --scale 0.3 --seed 7 --model model.evht \
//!                       [--c 0.95] [--alpha 0.9]
//! eventhit-cli marshal  --task TA10 --scale 0.3 --seed 7 --model model.evht \
//!                       [--c 0.95] [--alpha 0.9]
//! eventhit-cli serve        --task TA10 --scale 0.1 --seed 7 --addr 127.0.0.1:7077 \
//!                           [--shards 4] [--workers-per-shard 2] \
//!                           [--lane exact|quantized] [--durable DIR] [--snapshot-every N] \
//!                           [--slow-log FILE]
//! eventhit-cli bench-client --task TA10 --scale 0.1 --seed 7 --addr 127.0.0.1:7077 \
//!                           [--streams 2] [--batch 64] [--frames 2000]
//! eventhit-cli bench-fleet  --task TA10 --seed 7 [--streams 1024] [--shards 4] \
//!                           [--sessions 16] [--window 4] [--rounds 4] [--batch 64] \
//!                           [--pattern uniform|bursty] [--cap N] [--smoke]
//! eventhit-cli top          --addr 127.0.0.1:7077 [--interval-ms 1000] [--iters 0]
//! ```
//!
//! The synthetic stream is a pure function of `(task, scale, seed)`, so
//! `evaluate`/`marshal` regenerate exactly the stream the model was trained
//! against and calibrate on its calibration split. The same property makes
//! `bench-client` self-sufficient: given the server's `(task, scale, seed)`
//! it regenerates bit-identical feature rows to feed over the wire.

use std::process::exit;

use eventhit::core::ci::CiConfig;
use eventhit::core::experiment::{ExperimentConfig, TaskRun};
use eventhit::core::infer::score_records;
use eventhit::core::marshal::Marshaller;
use eventhit::core::model_io;
use eventhit::core::pipeline::{ConformalState, Strategy};
use eventhit::core::streaming::OnlinePredictor;
use eventhit::core::tasks::{all_tasks, task};
use eventhit::core::InferenceLane;
use eventhit::parallel::Pool;
use eventhit::serve::{
    fleet, is_disconnected, ArrivalPattern, DurableOptions, FleetSpec, MetricsInfo, Response,
    ServeClient, ServeConfig, Server,
};
use eventhit::telemetry::Telemetry;
use std::sync::Arc;

#[derive(Debug, Clone)]
struct Args {
    task: String,
    scale: f64,
    seed: u64,
    model: Option<String>,
    out: Option<String>,
    c: f64,
    alpha: f64,
    addr: String,
    streams: u32,
    batch: usize,
    frames: usize,
    sessions: usize,
    lane: InferenceLane,
    durable: Option<String>,
    snapshot_every: u64,
    slow_log: Option<String>,
    interval_ms: u64,
    iters: u64,
    shards: u32,
    workers_per_shard: usize,
    pattern: ArrivalPattern,
    rounds: usize,
    window: usize,
    cap: u32,
    smoke: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            task: "TA10".into(),
            scale: 0.3,
            seed: 7,
            model: None,
            out: None,
            c: 0.95,
            alpha: 0.9,
            addr: "127.0.0.1:7077".into(),
            streams: 2,
            batch: 64,
            frames: 0,
            sessions: 0,
            lane: InferenceLane::Exact,
            durable: None,
            snapshot_every: 256,
            slow_log: None,
            interval_ms: 1000,
            iters: 0,
            shards: 1,
            workers_per_shard: 0,
            pattern: ArrivalPattern::Uniform,
            rounds: 4,
            window: 4,
            cap: 0,
            smoke: false,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: eventhit-cli <tasks|train|evaluate|marshal|serve|bench-client|bench-fleet|top> \
         [--task TAi] [--scale F] [--seed N] [--model PATH] [--out PATH] \
         [--c F] [--alpha F] [--addr HOST:PORT] [--streams N] [--batch N] \
         [--frames N] [--sessions N] [--lane exact|quantized] \
         [--shards N] [--workers-per-shard N] \
         [--durable DIR] [--snapshot-every N] [--slow-log FILE] \
         [--interval-ms N] [--iters N] \
         [--pattern uniform|bursty] [--rounds N] [--window N] [--cap N] [--smoke]"
    );
    exit(2)
}

fn parse(it: impl Iterator<Item = String>) -> Args {
    parse_from(Args::default(), it)
}

/// Parses flags on top of `base`, letting each subcommand pick its own
/// defaults (e.g. `bench-fleet` starts from a 1024-stream fleet).
fn parse_from(base: Args, mut it: impl Iterator<Item = String>) -> Args {
    let mut args = base;
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--task" => args.task = value(),
            "--scale" => args.scale = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| usage()),
            "--model" => args.model = Some(value()),
            "--out" => args.out = Some(value()),
            "--c" => args.c = value().parse().unwrap_or_else(|_| usage()),
            "--alpha" => args.alpha = value().parse().unwrap_or_else(|_| usage()),
            "--addr" => args.addr = value(),
            "--streams" => args.streams = value().parse().unwrap_or_else(|_| usage()),
            "--batch" => args.batch = value().parse().unwrap_or_else(|_| usage()),
            "--frames" => args.frames = value().parse().unwrap_or_else(|_| usage()),
            "--sessions" => args.sessions = value().parse().unwrap_or_else(|_| usage()),
            "--lane" => args.lane = value().parse().unwrap_or_else(|_| usage()),
            "--durable" => args.durable = Some(value()),
            "--snapshot-every" => args.snapshot_every = value().parse().unwrap_or_else(|_| usage()),
            "--slow-log" => args.slow_log = Some(value()),
            "--interval-ms" => args.interval_ms = value().parse().unwrap_or_else(|_| usage()),
            "--iters" => args.iters = value().parse().unwrap_or_else(|_| usage()),
            "--shards" => args.shards = value().parse().unwrap_or_else(|_| usage()),
            "--workers-per-shard" => {
                args.workers_per_shard = value().parse().unwrap_or_else(|_| usage())
            }
            "--pattern" => {
                args.pattern = match value().as_str() {
                    "uniform" => ArrivalPattern::Uniform,
                    "bursty" => ArrivalPattern::Bursty,
                    _ => usage(),
                }
            }
            "--rounds" => args.rounds = value().parse().unwrap_or_else(|_| usage()),
            "--window" => args.window = value().parse().unwrap_or_else(|_| usage()),
            "--cap" => args.cap = value().parse().unwrap_or_else(|_| usage()),
            "--smoke" => args.smoke = true,
            _ => usage(),
        }
    }
    args
}

fn config(args: &Args) -> ExperimentConfig {
    ExperimentConfig {
        scale: args.scale,
        seed: args.seed,
        ..Default::default()
    }
}

fn cmd_tasks() {
    println!("task\tdataset\tevents\tM\tH");
    for t in all_tasks() {
        let p = t.profile();
        println!(
            "{}\t{:?}\t{}\t{}\t{}",
            t.id,
            t.dataset,
            t.events.join(","),
            p.collection_window,
            p.horizon
        );
    }
}

fn cmd_train(args: &Args) {
    let t = task(&args.task).unwrap_or_else(|| {
        eprintln!("unknown task {}", args.task);
        exit(2)
    });
    eprintln!(
        "training {} at scale {} (seed {}) ...",
        t.id, args.scale, args.seed
    );
    let mut run = TaskRun::execute(&t, &config(args));
    eprintln!(
        "  {} train records, final loss {:.4}, {} parameters",
        run.train_records.len(),
        run.train_report.final_loss,
        run.model.param_count()
    );
    let out = args
        .out
        .clone()
        .unwrap_or_else(|| format!("{}.evht", t.id.to_lowercase()));
    model_io::save_to_path(&mut run.model, &out).unwrap_or_else(|e| {
        eprintln!("failed to write {out}: {e}");
        exit(1)
    });
    println!("model written to {out}");
}

/// Rebuilds the deterministic task context and calibrates the loaded model.
fn load_context(args: &Args) -> (TaskRun, Strategy) {
    let t = task(&args.task).unwrap_or_else(|| {
        eprintln!("unknown task {}", args.task);
        exit(2)
    });
    let model_path = args.model.clone().unwrap_or_else(|| usage());
    eprintln!(
        "regenerating {} stream (scale {}, seed {}) ...",
        t.id, args.scale, args.seed
    );
    let mut run = TaskRun::execute(&t, &config(args));
    // Replace the freshly trained model with the persisted one and
    // recalibrate against the calibration split.
    let model = model_io::load_from_path(&model_path).unwrap_or_else(|e| {
        eprintln!("failed to read {model_path}: {e}");
        exit(1)
    });
    let calib = score_records(&model, &run.calib_records, 128);
    let test = score_records(&model, &run.test_records, 128);
    run.state = ConformalState::fit(&calib, t.num_events(), 0.5, run.horizon);
    run.calib = calib;
    run.test = test;
    run.model = model;
    (
        run,
        Strategy::Ehcr {
            c: args.c,
            alpha: args.alpha,
        },
    )
}

fn cmd_evaluate(args: &Args) {
    let (run, strategy) = load_context(args);
    let o = run.evaluate(&strategy);
    let cost = run.cost(&o, &CiConfig::default());
    println!("strategy: {strategy:?}");
    println!("REC      {:.4}", o.rec);
    println!("SPL      {:.4}", o.spl);
    println!("REC_c    {:.4}", o.rec_c);
    println!("REC_r    {:.4}", o.rec_r);
    println!("frames   {}", o.frames_relayed);
    println!("expense  ${:.2}", cost.expense);
    println!("fps      {:.1}", cost.fps());
}

fn cmd_marshal(args: &Args) {
    let (run, strategy) = load_context(args);
    let stream = run.stream.clone();
    let features = run.features.clone();
    let mut m = Marshaller::new(
        run.model,
        run.state,
        strategy,
        run.window,
        run.horizon,
        CiConfig::default(),
    );
    let from = (stream.len * 3) / 4;
    let result = m.run(&stream, &features, from, stream.len);
    println!("horizons         {}", result.horizons);
    println!("segments relayed {}", result.segments.len());
    println!("frames relayed   {}", result.cost.frames_relayed);
    println!("frame recall     {:.3}", result.frame_recall());
    println!("instance recall  {:.3}", result.instance_recall());
    println!("expense          ${:.2}", result.cost.expense);
    let (fe, pr, ci) = result.cost.stage_fractions();
    println!(
        "time split       {:.1}% features / {:.1}% predictor / {:.1}% CI",
        fe * 100.0,
        pr * 100.0,
        ci * 100.0
    );
}

/// Trains (or loads) a model and serves it over TCP: one stream lane per
/// admitted client stream, every lane cloning the same trained model and
/// conformal state.
fn cmd_serve(args: &Args) {
    let t = task(&args.task).unwrap_or_else(|| {
        eprintln!("unknown task {}", args.task);
        exit(2)
    });
    eprintln!(
        "training {} at scale {} (seed {}) before serving ...",
        t.id, args.scale, args.seed
    );
    let mut run = TaskRun::execute(&t, &config(args));
    if let Some(path) = &args.model {
        // Serve the persisted weights, recalibrated against this run's
        // calibration split — pairing a loaded model with another
        // model's conformal state would void the coverage guarantees.
        let model = model_io::load_from_path(path).unwrap_or_else(|e| {
            eprintln!("failed to read {path}: {e}");
            exit(1)
        });
        let calib = score_records(&model, &run.calib_records, 128);
        run.state = ConformalState::fit(&calib, t.num_events(), 0.5, run.horizon);
        run.model = model;
    }
    // Calibrate against the scores the served lane actually produces —
    // for the quantized lane this refits the conformal quantiles on int8
    // calibration scores so the coverage guarantee transfers.
    let state = run.state_for_lane(args.lane);
    let (model, lane) = (run.model, args.lane);
    let strategy = Strategy::Ehcr {
        c: args.c,
        alpha: args.alpha,
    };
    let cfg = ServeConfig {
        addr: args.addr.clone(),
        shards: args.shards.max(1),
        workers_per_shard: args.workers_per_shard,
        durable: args.durable.as_ref().map(|dir| {
            let mut opts = DurableOptions::new(dir);
            opts.snapshot_every = args.snapshot_every;
            opts
        }),
        slow_log: args.slow_log.as_ref().map(Into::into),
        ..ServeConfig::default()
    };
    // A live (wall-clock) recorder so `eventhit-cli top` has windowed
    // rates, stage p99s, and SLO burn to render via MetricsQuery.
    let server = Server::bind_with_telemetry(
        cfg,
        Box::new(move |_stream_id| {
            OnlinePredictor::with_lane(model.clone(), state.clone(), strategy, lane)
        }),
        Arc::new(Telemetry::new()),
    )
    .unwrap_or_else(|e| {
        eprintln!("failed to bind {}: {e}", args.addr);
        exit(1)
    });
    let addr = server.local_addr().expect("bound listener has an address");
    println!(
        "serving {} on {addr} (dim {}, {lane} lane, {} shard{})",
        t.id,
        run.features.cols(),
        args.shards.max(1),
        if args.shards.max(1) == 1 { "" } else { "s" }
    );
    if let Some(dir) = &args.durable {
        println!(
            "durable: event-sourcing sessions into {dir} \
             (snapshot every {} events)",
            args.snapshot_every
        );
    }
    if let Some(path) = &args.slow_log {
        println!("slow log: rewriting {path} at every session end");
    }
    let pool = Pool::current();
    if args.sessions == 0 {
        server.serve_forever(&pool);
    } else {
        server.serve_sessions(args.sessions, &pool);
    }
}

/// Feeds deterministically regenerated feature rows to a running server
/// over one session with `--streams` interleaved streams, honouring
/// retry-after backpressure, and prints totals.
fn cmd_bench_client(args: &Args) {
    use eventhit::video::features::{extract, FeatureConfig};
    use eventhit::video::stream::VideoStream;

    let t = task(&args.task).unwrap_or_else(|| {
        eprintln!("unknown task {}", args.task);
        exit(2)
    });
    // The same sub-seed derivation as TaskRun::execute, so the rows match
    // the stream the server trained on without training anything here.
    let profile = t.profile().scaled(args.scale);
    let stream = VideoStream::generate(&profile, args.seed.wrapping_mul(31).wrapping_add(1));
    let features = extract(
        &stream,
        &FeatureConfig::default(),
        args.seed.wrapping_mul(37).wrapping_add(2),
    );
    let dim = features.cols() as u32;
    let rows = if args.frames == 0 {
        features.rows()
    } else {
        args.frames.min(features.rows())
    };

    let mut client = ServeClient::connect(&args.addr).unwrap_or_else(|e| {
        eprintln!("failed to connect to {}: {e}", args.addr);
        exit(1)
    });
    let limits = client.negotiated();
    eprintln!(
        "connected to {} (batch cap {}, queue cap {})",
        args.addr, limits.max_batch_frames, limits.max_queue_frames
    );
    for s in 0..args.streams {
        client
            .open_stream(s)
            .expect("open_stream I/O")
            .expect_ok("open_stream");
    }

    let started = std::time::Instant::now();
    let mut decisions = 0u64;
    let mut retries = 0u64;
    let batch = args.batch.max(1).min(limits.max_batch_frames as usize);
    let mut at = 0usize;
    while at < rows {
        let hi = (at + batch).min(rows);
        let mut data = Vec::with_capacity((hi - at) * dim as usize);
        for r in at..hi {
            data.extend_from_slice(features.row(r));
        }
        for s in 0..args.streams {
            loop {
                let reply = client.submit(s, dim, data.clone()).unwrap_or_else(|e| {
                    if is_disconnected(&e) {
                        eprintln!(
                            "server disconnected mid-session; if it serves with \
                             --durable, restart it and resume from frame {at}"
                        );
                    } else {
                        eprintln!("submit failed: {e}");
                    }
                    exit(1)
                });
                match reply {
                    Response::Ok(ds) => {
                        decisions += ds.len() as u64;
                        break;
                    }
                    Response::Rejected(r) => {
                        retries += 1;
                        std::thread::sleep(std::time::Duration::from_millis(
                            r.retry_after_ms.max(1) as u64,
                        ));
                    }
                }
            }
        }
        at = hi;
    }
    let health = client.health().expect("health I/O");
    for s in 0..args.streams {
        let summary = client
            .close_stream(s)
            .expect("close_stream I/O")
            .expect_ok("close_stream");
        println!(
            "stream {s}: {} frames in, {} decisions out",
            summary.frames, summary.decisions
        );
    }
    let secs = started.elapsed().as_secs_f64();
    println!(
        "fed {} frames x {} streams in {secs:.2}s ({:.0} frames/s), \
         {decisions} decisions, {retries} backpressure retries",
        rows,
        args.streams,
        (rows as f64 * args.streams as f64) / secs.max(1e-9),
    );
    println!(
        "server totals: {} sessions, {} frames, {} decisions",
        health.sessions, health.frames, health.decisions
    );
}

/// Trains a model, binds a sharded server in-process, and drives a
/// deterministic synthetic fleet of `--streams` streams against it:
/// seeded arrival schedule (uniform or Gilbert–Elliott bursty), sliding
/// per-session admission windows, retry-after honored under a cap. After
/// the drive it pulls the minor-2 metrics plane for per-stage saturation
/// quantiles, re-runs every stream through the in-process `run_lanes`
/// baseline, and exits non-zero if any served decision diverges. Results
/// go to `results/fleet_load.tsv` and `BENCH_fleet.json` at the
/// workspace root. `--smoke` shrinks training and pacing for CI.
fn cmd_bench_fleet(args: &Args) {
    use eventhit::core::multi::{run_lanes, LaneDecision, StreamLane};
    use eventhit::nn::matrix::Matrix;
    use eventhit::serve::convert::decision_from_wire;

    let t = task(&args.task).unwrap_or_else(|| {
        eprintln!("unknown task {}", args.task);
        exit(2)
    });
    let exp = if args.smoke {
        ExperimentConfig::quick(args.seed)
    } else {
        config(args)
    };
    eprintln!(
        "training {} at scale {} (seed {}) before the fleet drive ...",
        t.id, exp.scale, exp.seed
    );
    let run = TaskRun::execute(&t, &exp);
    let state = run.state_for_lane(args.lane);
    let (model, lane) = (run.model.clone(), args.lane);
    let strategy = Strategy::Ehcr {
        c: args.c,
        alpha: args.alpha,
    };
    // The shared feature pool every synthetic stream draws its rows from
    // (each stream wraps the pool from its own deterministic offset).
    let rows: Vec<Vec<f32>> = (0..run.features.rows())
        .map(|r| run.features.row(r).to_vec())
        .collect();

    let shards = args.shards.max(1);
    let spec = FleetSpec {
        streams: args.streams,
        sessions: args.sessions.max(1),
        window: args.window.max(1),
        batch: args.batch.max(1),
        rounds: if args.smoke {
            args.rounds.clamp(1, 2)
        } else {
            args.rounds.max(1)
        },
        pattern: args.pattern,
        seed: args.seed,
        slot_micros: if args.smoke { 20 } else { 100 },
        retry_cap_ms: 2,
    };
    // Undersize the cap against offered concurrency so admission rejects
    // are observable, but never below the shard count — a shard with a
    // zero-stream slice could never admit its streams.
    let cap = if args.cap > 0 {
        args.cap.max(shards)
    } else {
        ((spec.sessions * spec.window * 3 / 4) as u32).max(shards)
    };

    let (model_f, state_f) = (model.clone(), state.clone());
    let server = Server::bind_with_telemetry(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            shards,
            workers_per_shard: args.workers_per_shard,
            max_streams: cap,
            ..ServeConfig::default()
        },
        Box::new(move |_stream_id| {
            OnlinePredictor::with_lane(model_f.clone(), state_f.clone(), strategy, lane)
        }),
        Arc::new(Telemetry::new()),
    )
    .unwrap_or_else(|e| {
        eprintln!("failed to bind fleet server: {e}");
        exit(1)
    });
    let addr = server.local_addr().expect("bound listener has an address");
    let driver_sessions = spec.sessions;
    // +1 session: the post-drive metrics/health probe below.
    let server_thread = std::thread::spawn(move || {
        server.serve_sessions(driver_sessions + 1, &Pool::current());
    });

    eprintln!(
        "driving {} streams x {} frames over {} sessions \
         ({:?} arrivals, {} shard(s), cap {} streams) ...",
        spec.streams,
        spec.frames_per_stream(),
        spec.sessions,
        spec.pattern,
        shards,
        cap
    );
    let report = fleet::drive(&addr.to_string(), &rows, &spec).unwrap_or_else(|e| {
        eprintln!("fleet drive failed: {e}");
        exit(1)
    });

    let mut probe = ServeClient::connect(addr).unwrap_or_else(|e| {
        eprintln!("failed to connect metrics probe: {e}");
        exit(1)
    });
    let metrics = probe.metrics().expect("metrics I/O");
    let health = probe.health().expect("health I/O");
    drop(probe);
    server_thread.join().expect("server thread");
    let stages = fleet::summarize_stages(&metrics);

    // Decision-divergence check: every stream, re-run through the
    // in-process run_lanes path from identical rows. The fleet report is
    // already in run_lanes' global (anchor, stream_id) order.
    eprintln!("verifying decisions against the in-process run_lanes baseline ...");
    let frames = spec.frames_per_stream();
    let lanes: Vec<StreamLane> = (0..spec.streams)
        .map(|s| StreamLane {
            stream_id: s as usize,
            predictor: OnlinePredictor::with_lane(model.clone(), state.clone(), strategy, lane),
            features: Matrix::from_rows(
                &(0..frames)
                    .map(|r| fleet::stream_row(&rows, s, r).to_vec())
                    .collect::<Vec<_>>(),
            ),
            from: 0,
        })
        .collect();
    let baseline = run_lanes(lanes, &Pool::current());
    let served: Vec<LaneDecision> = report
        .decisions
        .iter()
        .map(|(s, d)| LaneDecision {
            stream_id: *s as usize,
            decision: decision_from_wire(d),
        })
        .collect();
    let diverged = served != baseline;

    let fps = report.frames_sent as f64 / report.elapsed_seconds.max(1e-9);
    let run_line = format!(
        "task={} streams={} sessions={} window={} batch={} rounds={} \
         shards={} cap={} pattern={:?} seed={} smoke={}",
        t.id,
        spec.streams,
        spec.sessions,
        spec.window,
        spec.batch,
        spec.rounds,
        shards,
        cap,
        spec.pattern,
        spec.seed,
        args.smoke
    );
    let totals_line = format!(
        "streams_driven={} frames_sent={} decisions={} admission_rejects={} \
         queue_rejects={} retry_waited_ms={} elapsed_s={:.3} frames_per_s={:.0}",
        report.streams_driven,
        report.frames_sent,
        report.decisions.len(),
        report.admission_rejects,
        report.queue_rejects,
        report.retry_waited_ms,
        report.elapsed_seconds,
        fps
    );

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let results_dir = root.join("results");
    std::fs::create_dir_all(&results_dir).expect("create results/");
    let mut tsv = format!("# bench-fleet {run_line}\n# {totals_line}\n");
    tsv.push_str("stage\tlabel\tcount\tp50_peak_us\tp99_peak_us\n");
    for s in &stages {
        tsv.push_str(&format!(
            "{}\t{}\t{}\t{:.1}\t{:.1}\n",
            s.name,
            if s.label.is_empty() { "-" } else { &s.label },
            s.count,
            s.p50_peak * 1e6,
            s.p99_peak * 1e6
        ));
    }
    let tsv_path = results_dir.join("fleet_load.tsv");
    std::fs::write(&tsv_path, &tsv).expect("write fleet_load.tsv");

    let stage_json: Vec<String> = stages
        .iter()
        .map(|s| {
            format!(
                "{{\"name\":\"{}\",\"label\":\"{}\",\"count\":{},\
                 \"p50_peak_us\":{:.1},\"p99_peak_us\":{:.1}}}",
                s.name,
                s.label,
                s.count,
                s.p50_peak * 1e6,
                s.p99_peak * 1e6
            )
        })
        .collect();
    let json = format!(
        "{{\"smoke\":{},\"task\":\"{}\",\"streams\":{},\"sessions\":{},\
         \"window\":{},\"batch\":{},\"rounds\":{},\"shards\":{},\"cap\":{},\
         \"pattern\":\"{:?}\",\"seed\":{},\"streams_driven\":{},\
         \"frames_sent\":{},\"decisions\":{},\"admission_rejects\":{},\
         \"queue_rejects\":{},\"retry_waited_ms\":{},\
         \"elapsed_seconds\":{:.3},\"frames_per_second\":{:.0},\
         \"stages\":[{}],\"decision_divergence\":{}}}\n",
        args.smoke,
        t.id,
        spec.streams,
        spec.sessions,
        spec.window,
        spec.batch,
        spec.rounds,
        shards,
        cap,
        spec.pattern,
        spec.seed,
        report.streams_driven,
        report.frames_sent,
        report.decisions.len(),
        report.admission_rejects,
        report.queue_rejects,
        report.retry_waited_ms,
        report.elapsed_seconds,
        fps,
        stage_json.join(","),
        if diverged { served.len().max(1) } else { 0 }
    );
    let json_path = root.join("BENCH_fleet.json");
    std::fs::write(&json_path, &json).expect("write BENCH_fleet.json");

    println!("fleet: {run_line}");
    println!("totals: {totals_line}");
    println!(
        "server health: {} sessions, {} frames, {} decisions, {} active streams",
        health.sessions, health.frames, health.decisions, health.active_streams
    );
    for s in &stages {
        println!(
            "  {:<28} {:>8} samples  p50 {:>9.1} us  p99 {:>9.1} us",
            if s.label.is_empty() {
                s.name.clone()
            } else {
                format!("{}{{{}}}", s.name, s.label)
            },
            s.count,
            s.p50_peak * 1e6,
            s.p99_peak * 1e6
        );
    }
    println!("wrote {}", tsv_path.display());
    println!("wrote {}", json_path.display());
    if diverged {
        eprintln!(
            "DECISION DIVERGENCE: served {} decisions, baseline {} — \
             sharded serving must be bit-identical to run_lanes",
            served.len(),
            baseline.len()
        );
        exit(1);
    }
    println!(
        "decision divergence: none ({} decisions bit-identical to run_lanes)",
        baseline.len()
    );
}

/// Polls a running server's `MetricsQuery` endpoint and renders a live
/// terminal dashboard: SLO burn, per-stage p99s, per-stream ingest
/// rates, and reject counters. `--iters 0` (the default) polls until
/// interrupted; a positive `--iters` renders that many frames and exits
/// (useful for scripting and smoke tests).
fn cmd_top(args: &Args) {
    let mut client = ServeClient::connect(&args.addr).unwrap_or_else(|e| {
        eprintln!("failed to connect to {}: {e}", args.addr);
        exit(1)
    });
    let mut rendered = 0u64;
    loop {
        let m = client.metrics().unwrap_or_else(|e| {
            if is_disconnected(&e) {
                eprintln!("server disconnected");
            } else {
                eprintln!("metrics query failed: {e}");
            }
            exit(1)
        });
        render_top(&args.addr, &m);
        rendered += 1;
        if args.iters != 0 && rendered >= args.iters {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(args.interval_ms.max(1)));
    }
}

/// One `top` frame: clear the terminal and redraw from a `MetricsReply`.
fn render_top(addr: &str, m: &MetricsInfo) {
    print!("\x1b[2J\x1b[H");
    println!(
        "eventhit top — {addr} @ clock {:.1}s (windows of {:.0} ms)",
        m.clock_now,
        m.window_secs * 1000.0
    );
    println!();
    if m.slos.is_empty() {
        println!("SLOs: none registered (server running without telemetry?)");
    }
    for slo in &m.slos {
        let label = if slo.label.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", slo.label)
        };
        println!(
            "SLO {}{}: p99 < {:.0} ms @ {:.1}% — {} served, {} violations, burn {:.2}x",
            slo.name,
            label,
            slo.threshold * 1000.0,
            slo.objective * 100.0,
            slo.total,
            slo.violations,
            slo.burn_rate()
        );
    }
    println!();
    println!("stage p99 (latest window):");
    let mut any_stage = false;
    for series in &m.series {
        if series.name != "serve.stage_seconds" && series.name != "stream.stage_seconds" {
            continue;
        }
        if let Some(w) = series.windows.last() {
            any_stage = true;
            println!(
                "  {:<14} {:>10.1} us  ({} samples)",
                series.label,
                w.p99 * 1e6,
                w.count
            );
        }
    }
    if !any_stage {
        println!("  (no decisions yet)");
    }
    println!();
    println!("streams (latest-window ingest):");
    let mut any_stream = false;
    for series in &m.series {
        if series.name != "serve.stream_frames" {
            continue;
        }
        if let Some(w) = series.windows.last() {
            any_stream = true;
            println!(
                "  stream {:<6} {:>9.1} frames/s  ({} batches)",
                series.label,
                w.sum / m.window_secs.max(1e-9),
                w.count
            );
        }
    }
    if !any_stream {
        println!("  (no frames yet)");
    }
    println!();
    let rejects: Vec<_> = m
        .counters
        .iter()
        .filter(|c| c.name == "serve.rejected")
        .collect();
    if rejects.is_empty() {
        println!("rejects: none");
    } else {
        println!("rejects:");
        for c in rejects {
            println!("  {:<16} {}", c.label, c.value);
        }
    }
    let total = |name: &str| {
        m.counters
            .iter()
            .find(|c| c.name == name && c.label.is_empty())
            .map_or(0, |c| c.value)
    };
    println!();
    println!(
        "totals: {} sessions, {} frames, {} decisions",
        total("serve.sessions"),
        total("serve.frames"),
        total("serve.decisions")
    );
}

fn main() {
    let mut argv = std::env::args().skip(1);
    let Some(cmd) = argv.next() else { usage() };
    match cmd.as_str() {
        "tasks" => cmd_tasks(),
        "train" => cmd_train(&parse(argv)),
        "evaluate" => cmd_evaluate(&parse(argv)),
        "marshal" => cmd_marshal(&parse(argv)),
        "serve" => cmd_serve(&parse(argv)),
        "bench-client" => cmd_bench_client(&parse(argv)),
        "bench-fleet" => cmd_bench_fleet(&parse_from(
            Args {
                streams: 1024,
                sessions: 16,
                ..Args::default()
            },
            argv,
        )),
        "top" => cmd_top(&parse(argv)),
        "--help" | "-h" | "help" => usage(),
        _ => usage(),
    }
}
