//! The durable store: log lifecycle, crash recovery, and replay.
//!
//! [`DurableStore::open`] owns the session directory:
//!
//! ```text
//! <dir>/session.evlog          append-only event log
//! <dir>/snap-<events>.evsn     newest checkpoint (older ones pruned)
//! <dir>/model-<fp>.evht        weights persisted by a hot-reload
//! <dir>/state-<fp>.evcs        conformal state persisted by a hot-reload
//! ```
//!
//! Opening scans the log, truncates a torn final record (the footprint of
//! a crash mid-append), loads the newest valid snapshot, and hands back a
//! [`Recovery`] describing exactly what must be replayed. [`replay`] then
//! rebuilds live predictors: snapshot lanes are restored directly (and
//! verified by fingerprint), tail events are re-fed through the real
//! model — every recomputed decision checked against the fingerprint
//! logged before the crash, so a drifted environment fails with
//! [`DurableError::ReplayDiverged`] instead of silently emitting
//! different decisions.

use crate::event::SessionEvent;
use crate::log::{frame_record, scan, Tail};
use crate::snapshot::Snapshot;
use crate::state_io;
use crate::{decision_fingerprint, DurableError, DurableResult};
use eventhit_core::streaming::{HorizonDecision, OnlinePredictor, PredictorState};
use eventhit_core::{ConformalState, EventHit};
use eventhit_telemetry::Telemetry;
use std::collections::{BTreeMap, VecDeque};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const LOG_FILE: &str = "session.evlog";

/// An open durable session directory with an append handle on its log.
///
/// Opened with [`DurableStore::open_with_telemetry`], the store reports
/// its own health: `durable.appends` / `durable.append_bytes` /
/// `durable.commit_seconds` for the append path, `durable.snapshot_builds`
/// / `durable.snapshot_prunes` for checkpoints, and
/// `durable.replay_records` / `durable.torn_bytes_truncated` for what
/// recovery found on disk.
pub struct DurableStore {
    dir: PathBuf,
    log: fs::File,
    events_applied: u64,
    telemetry: Arc<Telemetry>,
}

/// What [`DurableStore::open`] found on disk — the inputs to [`replay`].
#[derive(Debug)]
pub struct Recovery {
    /// Newest valid snapshot, if any.
    pub snapshot: Option<Snapshot>,
    /// Committed events logged *after* the snapshot (all events when
    /// there is no snapshot), in append order.
    pub tail: Vec<SessionEvent>,
    /// Whether the log ended mid-record and was truncated back to its
    /// last committed boundary.
    pub torn_tail: bool,
    /// Total committed events in the log after truncation.
    pub events_applied: u64,
}

impl DurableStore {
    /// Opens (or creates) a durable session directory. Scans the log,
    /// truncates a torn tail, loads the newest valid snapshot, and
    /// returns the store plus everything recovery needs.
    pub fn open(dir: impl AsRef<Path>) -> DurableResult<(DurableStore, Recovery)> {
        Self::open_with_telemetry(dir, Arc::new(Telemetry::disabled()))
    }

    /// [`DurableStore::open`] with a telemetry recorder. Recovery facts
    /// are recorded immediately (`durable.replay_records` events pending
    /// replay, `durable.torn_bytes_truncated` bytes dropped from a torn
    /// tail); the append and snapshot paths report through the same
    /// recorder for the store's lifetime.
    pub fn open_with_telemetry(
        dir: impl AsRef<Path>,
        telemetry: Arc<Telemetry>,
    ) -> DurableResult<(DurableStore, Recovery)> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let log_path = dir.join(LOG_FILE);

        let bytes = match fs::read(&log_path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        let scanned = scan(&bytes)?;
        let torn_tail = scanned.tail == Tail::Torn;

        let mut events = Vec::with_capacity(scanned.payloads.len());
        for payload in &scanned.payloads {
            events.push(SessionEvent::decode(payload)?);
        }

        let log = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&log_path)?;
        if torn_tail {
            // Drop the half-written record so the next append starts on
            // a committed boundary.
            log.set_len(scanned.valid_bytes)?;
        }

        let snapshot = Snapshot::load_latest(&dir)?;
        let skip = snapshot.as_ref().map_or(0, |s| s.events_applied);
        if skip > events.len() as u64 {
            return Err(DurableError::Format(
                "snapshot claims more events than the log holds",
            ));
        }
        let tail = events.split_off(skip as usize);
        let events_applied = skip + tail.len() as u64;

        if !tail.is_empty() {
            telemetry.add("durable.replay_records", tail.len() as u64);
        }
        if torn_tail {
            telemetry.add(
                "durable.torn_bytes_truncated",
                bytes.len() as u64 - scanned.valid_bytes,
            );
        }

        Ok((
            DurableStore {
                dir,
                log,
                events_applied,
                telemetry,
            },
            Recovery {
                snapshot,
                tail,
                torn_tail,
                events_applied,
            },
        ))
    }

    /// Appends one event, flushing it to disk before returning — after
    /// `append` returns, the event survives a crash. Each append counts
    /// under `durable.appends` / `durable.append_bytes`, and the
    /// write-plus-sync interval lands in the `durable.commit_seconds`
    /// histogram.
    pub fn append(&mut self, event: &SessionEvent) -> DurableResult<()> {
        let rec = frame_record(&event.encode());
        let commit_start = self.telemetry.now();
        self.log.write_all(&rec)?;
        self.log.sync_data()?;
        self.telemetry.observe(
            "durable.commit_seconds",
            self.telemetry.now() - commit_start,
        );
        self.telemetry.add("durable.appends", 1);
        self.telemetry.add("durable.append_bytes", rec.len() as u64);
        self.events_applied += 1;
        Ok(())
    }

    /// Total committed events (snapshot-covered + appended).
    pub fn events_applied(&self) -> u64 {
        self.events_applied
    }

    /// The session directory this store owns.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Publishes a checkpoint (atomically; older snapshots pruned).
    /// Builds count under `durable.snapshot_builds`, pruned older files
    /// under `durable.snapshot_prunes`.
    pub fn write_snapshot(&self, snapshot: &Snapshot) -> DurableResult<PathBuf> {
        let (path, pruned) = snapshot.write_with_prune_count(&self.dir)?;
        self.telemetry.add("durable.snapshot_builds", 1);
        if pruned > 0 {
            self.telemetry.add("durable.snapshot_prunes", pruned);
        }
        Ok(path)
    }

    /// Persists a hot-reload's weights and conformal state beside the
    /// log; returns the fingerprint to record in the
    /// [`SessionEvent::ModelReloaded`] event.
    pub fn save_reload(&self, model: &mut EventHit, state: &ConformalState) -> DurableResult<u64> {
        state_io::save_reload(&self.dir, model, state)
    }

    /// Loads a persisted reload pair by fingerprint.
    pub fn load_reload(&self, fingerprint: u64) -> DurableResult<(EventHit, ConformalState)> {
        state_io::load_reload(&self.dir, fingerprint)
    }
}

/// A lane rebuilt by [`replay`], ready to continue serving.
pub struct ReplayedLane {
    /// The live predictor, restored to its pre-crash state.
    pub predictor: OnlinePredictor,
    /// Feature dimension of the lane's frames.
    pub dim: u32,
    /// Total frames the lane has accepted — the stream's `next_seq`.
    pub frames: u64,
    /// Total decisions whose emission was committed to the log.
    pub decisions: u64,
}

/// The hot-reloaded model active at the crash, rebuilt from disk.
pub struct ReloadedModel {
    /// The reloaded weights.
    pub model: EventHit,
    /// The conformal state refitted for those weights.
    pub state: ConformalState,
    /// The weight fingerprint the pair is keyed by.
    pub fingerprint: u64,
}

/// Everything [`replay`] rebuilds.
pub struct Replayed {
    /// Live lanes keyed by stream id.
    pub lanes: BTreeMap<u32, ReplayedLane>,
    /// The active hot-reload, if one happened before the crash.
    pub reload: Option<ReloadedModel>,
}

/// Rebuilds live lane state from a [`Recovery`].
///
/// `make_lane` constructs a fresh boot predictor for a stream id — the
/// same factory the serving layer uses. Snapshot lanes are restored
/// directly and verified against their recorded state fingerprint; tail
/// events are re-applied through the real model, each recomputed
/// decision checked against its logged fingerprint.
///
/// Decisions recomputed during replay whose emission was never committed
/// (a crash can land between the `FramesPushed` append and the
/// `DecisionEmitted` append) are *discarded*: the frames count toward
/// `next_seq`, but the decision is not retransmitted. Clients observe an
/// at-most-once decision stream across a crash; see DESIGN.md §14.
pub fn replay(
    dir: &Path,
    recovery: &Recovery,
    make_lane: &mut dyn FnMut(u32) -> OnlinePredictor,
) -> DurableResult<Replayed> {
    let mut reload: Option<ReloadedModel> = None;
    let mut lanes: BTreeMap<u32, ReplayedLane> = BTreeMap::new();
    let mut pending: BTreeMap<u32, VecDeque<HorizonDecision>> = BTreeMap::new();

    if let Some(snap) = &recovery.snapshot {
        if let Some(fp) = snap.reload_fingerprint {
            let (model, state) = state_io::load_reload(dir, fp)?;
            reload = Some(ReloadedModel {
                model,
                state,
                fingerprint: fp,
            });
        }
        for ls in &snap.lanes {
            let mut predictor = make_lane(ls.stream_id);
            if let Some(r) = &reload {
                predictor.reload_model(r.model.clone(), r.state.clone())?;
            }
            let st = PredictorState {
                rows: ls.rows.clone(),
                frames_seen: ls.frames_seen,
                countdown: ls.countdown,
            };
            predictor.restore_state(&st)?;
            if predictor.export_state().fingerprint() != ls.state_fingerprint {
                return Err(DurableError::SnapshotDiverged {
                    stream_id: ls.stream_id,
                });
            }
            lanes.insert(
                ls.stream_id,
                ReplayedLane {
                    predictor,
                    dim: ls.dim,
                    frames: ls.frames,
                    decisions: ls.decisions,
                },
            );
        }
    }

    for event in &recovery.tail {
        match event {
            SessionEvent::StreamAdmitted { stream_id, dim } => {
                let mut predictor = make_lane(*stream_id);
                if let Some(r) = &reload {
                    predictor.reload_model(r.model.clone(), r.state.clone())?;
                }
                lanes.insert(
                    *stream_id,
                    ReplayedLane {
                        predictor,
                        dim: *dim,
                        frames: 0,
                        decisions: 0,
                    },
                );
            }
            SessionEvent::FramesPushed {
                stream_id,
                dim,
                data,
            } => {
                let lane = lanes
                    .get_mut(stream_id)
                    .ok_or(DurableError::Format("frames logged for unknown stream"))?;
                if *dim != lane.dim {
                    return Err(DurableError::Format(
                        "frame batch dimension differs from its stream's",
                    ));
                }
                for row in data.chunks(*dim as usize) {
                    if let Some(d) = lane.predictor.push_frame(row.to_vec()) {
                        pending.entry(*stream_id).or_default().push_back(d);
                    }
                    lane.frames += 1;
                }
            }
            SessionEvent::DecisionEmitted {
                stream_id,
                anchor,
                fingerprint,
            } => {
                let diverged = DurableError::ReplayDiverged {
                    stream_id: *stream_id,
                    anchor: *anchor,
                };
                let lane = lanes
                    .get_mut(stream_id)
                    .ok_or(DurableError::Format("decision logged for unknown stream"))?;
                let recomputed = pending
                    .get_mut(stream_id)
                    .and_then(VecDeque::pop_front)
                    .ok_or(diverged)?;
                if recomputed.anchor != *anchor || decision_fingerprint(&recomputed) != *fingerprint
                {
                    return Err(DurableError::ReplayDiverged {
                        stream_id: *stream_id,
                        anchor: *anchor,
                    });
                }
                lane.decisions += 1;
            }
            SessionEvent::ModelReloaded { fingerprint } => {
                let (model, state) = state_io::load_reload(dir, *fingerprint)?;
                for lane in lanes.values_mut() {
                    lane.predictor.reload_model(model.clone(), state.clone())?;
                }
                reload = Some(ReloadedModel {
                    model,
                    state,
                    fingerprint: *fingerprint,
                });
            }
            SessionEvent::StreamClosed { stream_id } => {
                lanes.remove(stream_id);
                pending.remove(stream_id);
            }
        }
    }

    Ok(Replayed { lanes, reload })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::LaneSnapshot;
    use eventhit_core::{task, ExperimentConfig, Strategy, TaskRun};
    use std::sync::OnceLock;

    const STRATEGY: Strategy = Strategy::Ehcr { c: 0.9, alpha: 0.5 };

    fn trained() -> &'static TaskRun {
        static RUN: OnceLock<TaskRun> = OnceLock::new();
        RUN.get_or_init(|| TaskRun::execute(&task("TA10").unwrap(), &ExperimentConfig::quick(71)))
    }

    fn boot_lane(_stream_id: u32) -> OnlinePredictor {
        let run = trained();
        OnlinePredictor::new(run.model.clone(), run.state.clone(), STRATEGY)
    }

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("evstore-{tag}-{}", std::process::id()))
    }

    /// Feeds `rows` into the store + a live predictor the way the durable
    /// server does: log the batch first, then feed, then log decisions.
    fn serve_rows(
        store: &mut DurableStore,
        lane: &mut ReplayedLane,
        stream_id: u32,
        rows: &[Vec<f32>],
    ) -> Vec<HorizonDecision> {
        let dim = rows[0].len() as u32;
        let data: Vec<f32> = rows.iter().flatten().copied().collect();
        store
            .append(&SessionEvent::FramesPushed {
                stream_id,
                dim,
                data,
            })
            .unwrap();
        let mut out = Vec::new();
        for row in rows {
            if let Some(d) = lane.predictor.push_frame(row.clone()) {
                store
                    .append(&SessionEvent::DecisionEmitted {
                        stream_id,
                        anchor: d.anchor,
                        fingerprint: decision_fingerprint(&d),
                    })
                    .unwrap();
                lane.decisions += 1;
                out.push(d);
            }
            lane.frames += 1;
        }
        out
    }

    #[test]
    fn empty_dir_opens_clean() {
        let dir = tmp("empty");
        let (store, recovery) = DurableStore::open(&dir).unwrap();
        assert!(recovery.snapshot.is_none());
        assert!(recovery.tail.is_empty());
        assert!(!recovery.torn_tail);
        assert_eq!(store.events_applied(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn events_survive_reopen_and_torn_tail_is_truncated() {
        let dir = tmp("torn");
        let _ = fs::remove_dir_all(&dir);
        {
            let (mut store, _) = DurableStore::open(&dir).unwrap();
            store
                .append(&SessionEvent::StreamAdmitted {
                    stream_id: 3,
                    dim: 2,
                })
                .unwrap();
            store
                .append(&SessionEvent::StreamClosed { stream_id: 3 })
                .unwrap();
        }
        // Simulate a crash mid-append: half a record at the tail.
        let log_path = dir.join(LOG_FILE);
        let committed = fs::metadata(&log_path).unwrap().len();
        let half = frame_record(&SessionEvent::StreamClosed { stream_id: 9 }.encode());
        let mut f = fs::OpenOptions::new().append(true).open(&log_path).unwrap();
        f.write_all(&half[..half.len() - 3]).unwrap();
        drop(f);

        let (mut store, recovery) = DurableStore::open(&dir).unwrap();
        assert!(recovery.torn_tail);
        assert_eq!(recovery.tail.len(), 2);
        assert_eq!(fs::metadata(&log_path).unwrap().len(), committed);
        // The log is append-ready again.
        store
            .append(&SessionEvent::StreamAdmitted {
                stream_id: 4,
                dim: 2,
            })
            .unwrap();
        let (_, recovery) = DurableStore::open(&dir).unwrap();
        assert_eq!(recovery.tail.len(), 3);
        assert!(!recovery.torn_tail);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_restores_bit_identical_decisions() {
        let dir = tmp("replay");
        let _ = fs::remove_dir_all(&dir);
        let run = trained();
        let n = run.window + run.horizon * 4;
        let rows: Vec<Vec<f32>> = (0..n).map(|r| run.features.row(r).to_vec()).collect();
        let dim = rows[0].len() as u32;
        let cut = run.window + run.horizon + 2;

        // Uninterrupted reference.
        let mut reference = boot_lane(0);
        let expected: Vec<_> = rows
            .iter()
            .filter_map(|r| reference.push_frame(r.clone()))
            .collect();

        // Serve the prefix durably, snapshotting part-way, then "crash".
        {
            let (mut store, _) = DurableStore::open(&dir).unwrap();
            store
                .append(&SessionEvent::StreamAdmitted { stream_id: 0, dim })
                .unwrap();
            let mut lane = ReplayedLane {
                predictor: boot_lane(0),
                dim,
                frames: 0,
                decisions: 0,
            };
            let mut got = serve_rows(&mut store, &mut lane, 0, &rows[..run.window + 1]);
            // Checkpoint here: recovery must replay only the tail after it.
            let st = lane.predictor.export_state();
            store
                .write_snapshot(&Snapshot {
                    events_applied: store.events_applied(),
                    reload_fingerprint: None,
                    lanes: vec![LaneSnapshot {
                        stream_id: 0,
                        dim,
                        frames: lane.frames,
                        decisions: lane.decisions,
                        frames_seen: st.frames_seen,
                        countdown: st.countdown,
                        rows: st.rows.clone(),
                        state_fingerprint: st.fingerprint(),
                    }],
                })
                .unwrap();
            got.extend(serve_rows(
                &mut store,
                &mut lane,
                0,
                &rows[run.window + 1..cut],
            ));
            assert!(!got.is_empty());
            assert_eq!(got, expected[..got.len()].to_vec());
        } // crash: store dropped without closing streams

        // Recover and finish the stream.
        let (mut store, recovery) = DurableStore::open(&dir).unwrap();
        assert!(recovery.snapshot.is_some());
        let replayed = replay(&dir, &recovery, &mut boot_lane).unwrap();
        let mut lane = replayed.lanes.into_values().next().unwrap();
        assert_eq!(lane.frames, cut as u64);
        let done_before = expected
            .iter()
            .take_while(|d| d.anchor < cut as u64)
            .count();
        assert_eq!(lane.decisions, done_before as u64);
        let after = serve_rows(&mut store, &mut lane, 0, &rows[cut..]);
        assert_eq!(after, expected[done_before..].to_vec());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_detects_divergence() {
        let dir = tmp("diverge");
        let _ = fs::remove_dir_all(&dir);
        let run = trained();
        let dim = run.features.cols() as u32;
        let (mut store, _) = DurableStore::open(&dir).unwrap();
        store
            .append(&SessionEvent::StreamAdmitted { stream_id: 0, dim })
            .unwrap();
        let mut lane = ReplayedLane {
            predictor: boot_lane(0),
            dim,
            frames: 0,
            decisions: 0,
        };
        let rows: Vec<Vec<f32>> = (0..run.window + 1)
            .map(|r| run.features.row(r).to_vec())
            .collect();
        let got = serve_rows(&mut store, &mut lane, 0, &rows);
        assert_eq!(got.len(), 1);
        // Tamper: log a decision that never happened.
        store
            .append(&SessionEvent::DecisionEmitted {
                stream_id: 0,
                anchor: 999,
                fingerprint: 0x1234,
            })
            .unwrap();
        let (_, recovery) = DurableStore::open(&dir).unwrap();
        assert!(matches!(
            replay(&dir, &recovery, &mut boot_lane),
            Err(DurableError::ReplayDiverged {
                stream_id: 0,
                anchor: 999
            })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_applies_model_reload_from_disk() {
        let dir = tmp("reload");
        let _ = fs::remove_dir_all(&dir);
        let run = trained();
        let other = TaskRun::execute(&task("TA10").unwrap(), &ExperimentConfig::quick(72));
        let dim = run.features.cols() as u32;
        let n = run.window + run.horizon * 3;
        let rows: Vec<Vec<f32>> = (0..n).map(|r| run.features.row(r).to_vec()).collect();
        let swap_at = run.window + 1;

        // Reference: same swap applied in-process, no durability.
        let mut reference = boot_lane(0);
        let mut expected = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            if i == swap_at {
                reference
                    .reload_model(other.model.clone(), other.state.clone())
                    .unwrap();
            }
            if let Some(d) = reference.push_frame(row.clone()) {
                expected.push(d);
            }
        }

        // Durable run: crash right after the reload is logged.
        {
            let (mut store, _) = DurableStore::open(&dir).unwrap();
            store
                .append(&SessionEvent::StreamAdmitted { stream_id: 0, dim })
                .unwrap();
            let mut lane = ReplayedLane {
                predictor: boot_lane(0),
                dim,
                frames: 0,
                decisions: 0,
            };
            serve_rows(&mut store, &mut lane, 0, &rows[..swap_at]);
            let mut new_model = other.model.clone();
            let fp = store.save_reload(&mut new_model, &other.state).unwrap();
            store
                .append(&SessionEvent::ModelReloaded { fingerprint: fp })
                .unwrap();
        }

        let (mut store, recovery) = DurableStore::open(&dir).unwrap();
        let replayed = replay(&dir, &recovery, &mut boot_lane).unwrap();
        assert!(replayed.reload.is_some());
        let mut lane = replayed.lanes.into_values().next().unwrap();
        let done = expected
            .iter()
            .take_while(|d| d.anchor < swap_at as u64)
            .count();
        let after = serve_rows(&mut store, &mut lane, 0, &rows[swap_at..]);
        assert_eq!(after, expected[done..].to_vec());
        fs::remove_dir_all(&dir).unwrap();
    }
}
