//! Append-only record framing for the session event log.
//!
//! Each record is `[payload_len: u32 LE][crc32: u32 LE][payload]`, where
//! the CRC covers the payload bytes only. The framing distinguishes two
//! failure modes with very different recovery semantics:
//!
//! - **Torn tail** — the file ends mid-record (header shorter than 8
//!   bytes, or fewer payload bytes than the header declares). This is the
//!   *expected* artifact of a crash during `append` and is recoverable:
//!   every record before the tear is intact, and the tear is truncated
//!   away on reopen. Note a pure truncation can *only* produce a torn
//!   tail, never a checksum failure — the CRC is read from the header,
//!   and a truncated header leaves fewer than 8 bytes.
//! - **Corrupt record** — a record whose payload is fully present but
//!   hashes to a different CRC. That is bit damage (disk fault, manual
//!   edit), not a torn append, and recovery refuses to proceed past it.

use crate::{DurableError, DurableResult};
use eventhit_telemetry::crc32;

/// Upper bound on a single record's payload (64 MiB). A length field
/// beyond this is treated as structural corruption rather than an
/// instruction to allocate.
pub const MAX_RECORD_BYTES: u32 = 1 << 26;

/// Frames one payload as a log record: `[len][crc32][payload]`.
pub fn frame_record(payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_RECORD_BYTES as usize,
        "record payload exceeds MAX_RECORD_BYTES"
    );
    let mut rec = Vec::with_capacity(8 + payload.len());
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(&crc32(payload).to_le_bytes());
    rec.extend_from_slice(payload);
    rec
}

/// How a scanned log ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tail {
    /// The final record is complete; the log ends on a record boundary.
    Clean,
    /// The file ends mid-record. `valid_bytes` in the [`Scan`] marks the
    /// last committed boundary; everything after it should be truncated.
    Torn,
}

/// The result of scanning a log image: the committed payloads, the byte
/// offset of the last record boundary, and how the image ends.
#[derive(Debug)]
pub struct Scan {
    /// Payloads of every fully-committed record, in append order.
    pub payloads: Vec<Vec<u8>>,
    /// Bytes of the image covered by committed records; also the offset
    /// to truncate to when the tail is torn.
    pub valid_bytes: u64,
    /// Whether the image ends cleanly or mid-record.
    pub tail: Tail,
}

/// Scans a log image, validating every record's checksum.
///
/// Returns [`DurableError::Corrupt`] only for a *fully present* record
/// whose CRC does not match — a tear (truncated header or payload) is
/// reported through [`Tail::Torn`], never as an error.
pub fn scan(bytes: &[u8]) -> DurableResult<Scan> {
    let mut payloads = Vec::new();
    let mut pos: usize = 0;
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            return Ok(Scan {
                payloads,
                valid_bytes: pos as u64,
                tail: Tail::Clean,
            });
        }
        if rest.len() < 8 {
            // Torn mid-header: the length or CRC field itself is cut off.
            return Ok(Scan {
                payloads,
                valid_bytes: pos as u64,
                tail: Tail::Torn,
            });
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().unwrap());
        if len > MAX_RECORD_BYTES {
            return Err(DurableError::Format(
                "record length exceeds MAX_RECORD_BYTES",
            ));
        }
        let expected = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        let body = &rest[8..];
        if body.len() < len as usize {
            // Torn mid-payload.
            return Ok(Scan {
                payloads,
                valid_bytes: pos as u64,
                tail: Tail::Torn,
            });
        }
        let payload = &body[..len as usize];
        let got = crc32(payload);
        if got != expected {
            return Err(DurableError::Corrupt { offset: pos as u64 });
        }
        payloads.push(payload.to_vec());
        pos += 8 + len as usize;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_of(payloads: &[&[u8]]) -> Vec<u8> {
        let mut bytes = Vec::new();
        for p in payloads {
            bytes.extend_from_slice(&frame_record(p));
        }
        bytes
    }

    #[test]
    fn round_trips_multiple_records() {
        let image = log_of(&[b"alpha", b"", b"gamma-gamma"]);
        let scan = scan(&image).unwrap();
        assert_eq!(scan.tail, Tail::Clean);
        assert_eq!(scan.valid_bytes, image.len() as u64);
        assert_eq!(
            scan.payloads,
            vec![b"alpha".to_vec(), Vec::new(), b"gamma-gamma".to_vec()]
        );
    }

    #[test]
    fn empty_log_is_clean() {
        let scan = scan(&[]).unwrap();
        assert_eq!(scan.tail, Tail::Clean);
        assert_eq!(scan.valid_bytes, 0);
        assert!(scan.payloads.is_empty());
    }

    #[test]
    fn truncation_anywhere_in_final_record_is_torn_not_corrupt() {
        let image = log_of(&[b"first", b"second-record"]);
        let boundary = frame_record(b"first").len();
        // Cutting exactly at the boundary is a clean one-record log.
        let at_boundary = scan(&image[..boundary]).unwrap();
        assert_eq!(at_boundary.tail, Tail::Clean);
        assert_eq!(at_boundary.payloads, vec![b"first".to_vec()]);
        for cut in boundary + 1..image.len() {
            let scan = scan(&image[..cut]).unwrap();
            assert_eq!(scan.tail, Tail::Torn, "cut at {cut}");
            assert_eq!(scan.valid_bytes, boundary as u64, "cut at {cut}");
            assert_eq!(scan.payloads, vec![b"first".to_vec()], "cut at {cut}");
        }
    }

    #[test]
    fn bit_damage_is_corrupt_with_offset() {
        let mut image = log_of(&[b"first", b"second"]);
        let boundary = frame_record(b"first").len();
        let last = image.len() - 1; // inside the second payload
        image[last] ^= 0x01;
        match scan(&image) {
            Err(DurableError::Corrupt { offset }) => assert_eq!(offset, boundary as u64),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn absurd_length_field_is_a_format_error() {
        let mut image = Vec::new();
        image.extend_from_slice(&(MAX_RECORD_BYTES + 1).to_le_bytes());
        image.extend_from_slice(&[0u8; 4]);
        assert!(matches!(scan(&image), Err(DurableError::Format(_))));
    }
}
