//! The session event vocabulary and its wire encoding.
//!
//! Every state-changing serving operation is one [`SessionEvent`]. The
//! log stores them in application order, and replaying them in that order
//! through real predictors reconstructs lane state bit-identically.
//!
//! Decisions are logged as *fingerprints*, not full payloads: replay
//! recomputes each decision from the model and compares fingerprints, so
//! a divergence (wrong weights, wrong lane, wrong strategy) is detected
//! instead of silently absorbed.

use crate::{DurableError, DurableResult};
use eventhit_core::resilient::DegradationTag;
use eventhit_core::streaming::HorizonDecision;
use eventhit_telemetry::fnv1a;

const TAG_STREAM_ADMITTED: u8 = 1;
const TAG_FRAMES_PUSHED: u8 = 2;
const TAG_DECISION_EMITTED: u8 = 3;
const TAG_MODEL_RELOADED: u8 = 4;
const TAG_STREAM_CLOSED: u8 = 5;

/// One state-changing serving operation, as persisted in the session log.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionEvent {
    /// A stream was admitted and a fresh lane created for it.
    StreamAdmitted {
        /// Server-assigned stream id.
        stream_id: u32,
        /// Feature dimension of the stream's frames.
        dim: u32,
    },
    /// A batch of frames was accepted into the stream's lane. Logged
    /// *before* the frames are fed, so the log never under-counts state
    /// the client may have observed.
    FramesPushed {
        /// The stream the frames belong to.
        stream_id: u32,
        /// Feature dimension (row stride into `data`).
        dim: u32,
        /// Row-major frame data, `data.len() % dim == 0`.
        data: Vec<f32>,
    },
    /// A decision fired at an anchor. Only the fingerprint is stored;
    /// replay recomputes the decision and verifies it.
    DecisionEmitted {
        /// The stream that produced the decision.
        stream_id: u32,
        /// Anchor frame of the decision.
        anchor: u64,
        /// [`decision_fingerprint`] of the emitted decision.
        fingerprint: u64,
    },
    /// The serving model (and its refitted conformal state) was swapped.
    /// The weights and state live beside the log under this fingerprint
    /// (see [`crate::state_io`]), so replay is self-contained.
    ModelReloaded {
        /// [`eventhit_core::model_io::fingerprint`] of the new weights.
        fingerprint: u64,
    },
    /// A stream was closed and its lane retired.
    StreamClosed {
        /// The closed stream.
        stream_id: u32,
    },
}

impl SessionEvent {
    /// Serializes the event to its log payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            SessionEvent::StreamAdmitted { stream_id, dim } => {
                out.push(TAG_STREAM_ADMITTED);
                out.extend_from_slice(&stream_id.to_le_bytes());
                out.extend_from_slice(&dim.to_le_bytes());
            }
            SessionEvent::FramesPushed {
                stream_id,
                dim,
                data,
            } => {
                out.push(TAG_FRAMES_PUSHED);
                out.extend_from_slice(&stream_id.to_le_bytes());
                out.extend_from_slice(&dim.to_le_bytes());
                out.extend_from_slice(&(data.len() as u32).to_le_bytes());
                for &v in data {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            SessionEvent::DecisionEmitted {
                stream_id,
                anchor,
                fingerprint,
            } => {
                out.push(TAG_DECISION_EMITTED);
                out.extend_from_slice(&stream_id.to_le_bytes());
                out.extend_from_slice(&anchor.to_le_bytes());
                out.extend_from_slice(&fingerprint.to_le_bytes());
            }
            SessionEvent::ModelReloaded { fingerprint } => {
                out.push(TAG_MODEL_RELOADED);
                out.extend_from_slice(&fingerprint.to_le_bytes());
            }
            SessionEvent::StreamClosed { stream_id } => {
                out.push(TAG_STREAM_CLOSED);
                out.extend_from_slice(&stream_id.to_le_bytes());
            }
        }
        out
    }

    /// Deserializes an event from a log payload.
    pub fn decode(payload: &[u8]) -> DurableResult<SessionEvent> {
        let mut cur = Cursor {
            bytes: payload,
            pos: 0,
        };
        let tag = cur.u8()?;
        let ev = match tag {
            TAG_STREAM_ADMITTED => SessionEvent::StreamAdmitted {
                stream_id: cur.u32()?,
                dim: cur.u32()?,
            },
            TAG_FRAMES_PUSHED => {
                let stream_id = cur.u32()?;
                let dim = cur.u32()?;
                let n = cur.u32()? as usize;
                if dim == 0 || !n.is_multiple_of(dim as usize) {
                    return Err(DurableError::Format(
                        "frame batch length is not a multiple of its dimension",
                    ));
                }
                let mut data = Vec::with_capacity(n);
                for _ in 0..n {
                    data.push(cur.f32()?);
                }
                SessionEvent::FramesPushed {
                    stream_id,
                    dim,
                    data,
                }
            }
            TAG_DECISION_EMITTED => SessionEvent::DecisionEmitted {
                stream_id: cur.u32()?,
                anchor: cur.u64()?,
                fingerprint: cur.u64()?,
            },
            TAG_MODEL_RELOADED => SessionEvent::ModelReloaded {
                fingerprint: cur.u64()?,
            },
            TAG_STREAM_CLOSED => SessionEvent::StreamClosed {
                stream_id: cur.u32()?,
            },
            _ => return Err(DurableError::Format("unknown session event tag")),
        };
        cur.finish()?;
        Ok(ev)
    }
}

/// FNV-1a fingerprint of a decision's observable content: the anchor,
/// the degradation tag, and every predicted interval. Two decisions
/// fingerprint equal iff a downstream consumer could not tell them apart.
pub fn decision_fingerprint(d: &HorizonDecision) -> u64 {
    let mut bytes = Vec::with_capacity(16 + d.predictions.len() * 9);
    bytes.extend_from_slice(&d.anchor.to_le_bytes());
    match d.degradation {
        DegradationTag::None => bytes.push(0),
        DegradationTag::Retried { retries } => {
            bytes.push(1);
            bytes.extend_from_slice(&retries.to_le_bytes());
        }
        DegradationTag::Dropped => bytes.push(2),
        DegradationTag::Deferred => bytes.push(3),
        DegradationTag::LocalOnly => bytes.push(4),
    }
    bytes.extend_from_slice(&(d.predictions.len() as u32).to_le_bytes());
    for p in &d.predictions {
        bytes.push(p.present as u8);
        bytes.extend_from_slice(&p.start.to_le_bytes());
        bytes.extend_from_slice(&p.end.to_le_bytes());
    }
    fnv1a(&bytes)
}

/// Bounds-checked little-endian reader over a payload. Shared by every
/// payload decoder in the crate.
pub(crate) struct Cursor<'a> {
    pub(crate) bytes: &'a [u8],
    pub(crate) pos: usize,
}

impl Cursor<'_> {
    pub(crate) fn take(&mut self, n: usize) -> DurableResult<&[u8]> {
        if self.bytes.len() - self.pos < n {
            return Err(DurableError::Format("payload truncated"));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> DurableResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> DurableResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> DurableResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn f32(&mut self) -> DurableResult<f32> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn f64(&mut self) -> DurableResult<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn finish(&self) -> DurableResult<()> {
        if self.pos != self.bytes.len() {
            return Err(DurableError::Format("trailing bytes after payload"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventhit_core::IntervalPrediction;

    fn all_events() -> Vec<SessionEvent> {
        vec![
            SessionEvent::StreamAdmitted {
                stream_id: 7,
                dim: 34,
            },
            SessionEvent::FramesPushed {
                stream_id: 7,
                dim: 2,
                data: vec![0.5, -1.25, 3.0, f32::MIN_POSITIVE],
            },
            SessionEvent::DecisionEmitted {
                stream_id: 7,
                anchor: 119,
                fingerprint: 0xDEAD_BEEF_CAFE_F00D,
            },
            SessionEvent::ModelReloaded {
                fingerprint: 0x0123_4567_89AB_CDEF,
            },
            SessionEvent::StreamClosed { stream_id: 7 },
        ]
    }

    #[test]
    fn every_event_round_trips() {
        for ev in all_events() {
            let decoded = SessionEvent::decode(&ev.encode()).unwrap();
            assert_eq!(decoded, ev);
        }
    }

    #[test]
    fn every_truncation_is_a_format_error() {
        for ev in all_events() {
            let bytes = ev.encode();
            for cut in 0..bytes.len() {
                assert!(
                    SessionEvent::decode(&bytes[..cut]).is_err(),
                    "{ev:?} truncated at {cut} should not decode"
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = SessionEvent::StreamClosed { stream_id: 1 }.encode();
        bytes.push(0xFF);
        assert!(SessionEvent::decode(&bytes).is_err());
    }

    #[test]
    fn ragged_frame_batch_is_rejected() {
        // 3 floats declared with dim 2 — not a whole number of rows.
        let ev = SessionEvent::FramesPushed {
            stream_id: 1,
            dim: 2,
            data: vec![1.0, 2.0, 3.0],
        };
        assert!(SessionEvent::decode(&ev.encode()).is_err());
    }

    #[test]
    fn decision_fingerprint_tracks_content() {
        let base = HorizonDecision {
            anchor: 63,
            predictions: vec![
                IntervalPrediction {
                    present: true,
                    start: 2,
                    end: 9,
                },
                IntervalPrediction::absent(),
            ],
            degradation: DegradationTag::None,
        };
        let fp = decision_fingerprint(&base);
        assert_eq!(fp, decision_fingerprint(&base.clone()));

        let mut moved = base.clone();
        moved.anchor += 1;
        assert_ne!(fp, decision_fingerprint(&moved));

        let mut widened = base.clone();
        widened.predictions[0].end = 10;
        assert_ne!(fp, decision_fingerprint(&widened));

        let mut degraded = base;
        degraded.degradation = DegradationTag::Retried { retries: 1 };
        assert_ne!(fp, decision_fingerprint(&degraded));
    }
}
