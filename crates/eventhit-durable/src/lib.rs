//! Durable event-sourced state for EventHit serving.
//!
//! The serving frontend (`eventhit-serve`) keeps per-stream lane state —
//! the predictor's frame window, anchor countdown, and counters — entirely
//! in memory. A crash loses every admitted stream. This crate makes that
//! state *durable* without giving up the repo's bit-determinism guarantee:
//!
//! - [`log`]: an append-only session event log. Every state-changing
//!   serving operation (stream admitted, frames pushed, decision emitted,
//!   model reloaded, stream closed) is framed as
//!   `[payload_len u32][crc32 u32][payload]` and appended before it is
//!   acknowledged.
//! - [`snapshot`]: periodic checkpoints of the complete dynamic lane
//!   state, so recovery replays a bounded log tail instead of the whole
//!   session history. Snapshots are written atomically (temp file +
//!   rename) and carry their own checksum.
//! - [`store`]: the recovery path. [`store::DurableStore::open`] loads
//!   the newest valid snapshot, scans the log tail, *truncates a torn
//!   final record* (the expected artifact of a crash mid-append), and
//!   [`store::replay`] re-feeds the tail through real predictors —
//!   verifying along the way that every recomputed decision matches the
//!   fingerprint logged before the crash.
//! - [`state_io`]: serialization for the fitted conformal state and
//!   reloaded model weights, so a model hot-reload mid-serve is itself
//!   replayable without access to the original calibration split.
//!
//! Because an [`eventhit_core::streaming::OnlinePredictor`] rescores its
//! full window at every anchor (no recurrent state is carried between
//! anchors), the event log plus the snapshot is a *complete* description
//! of lane state: replay is bit-identical, and the crate proves it with
//! FNV-1a fingerprints at every seam.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod log;
pub mod snapshot;
pub mod state_io;
pub mod store;

pub use event::{decision_fingerprint, SessionEvent};
pub use log::{scan, Scan, Tail};
pub use snapshot::{LaneSnapshot, Snapshot};
pub use store::{replay, DurableStore, Recovery, Replayed, ReplayedLane};

use std::fmt;

/// Everything that can go wrong opening, appending to, or replaying a
/// durable session directory.
#[derive(Debug)]
pub enum DurableError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A file or record is structurally malformed (bad magic, impossible
    /// length, unknown tag). Unlike [`DurableError::Corrupt`] this means
    /// the bytes were never valid, not that valid bytes were damaged.
    Format(&'static str),
    /// A fully-present record failed its CRC — bit damage, not a torn
    /// append. Recovery refuses to guess and reports the byte offset.
    Corrupt {
        /// Byte offset of the damaged record within the log file.
        offset: u64,
    },
    /// Replaying the log recomputed a decision whose fingerprint differs
    /// from the one logged before the crash — the environment is not
    /// bit-identical (different weights, lane, or strategy).
    ReplayDiverged {
        /// Stream whose replayed decision diverged.
        stream_id: u32,
        /// Anchor frame of the diverging decision.
        anchor: u64,
    },
    /// A snapshot restored into a predictor whose state fingerprint does
    /// not match the one recorded at snapshot time.
    SnapshotDiverged {
        /// Stream whose restored lane state diverged.
        stream_id: u32,
    },
    /// A core-layer operation (model load, state restore) failed.
    Core(eventhit_core::CoreError),
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "durable I/O error: {e}"),
            DurableError::Format(what) => write!(f, "malformed durable file: {what}"),
            DurableError::Corrupt { offset } => {
                write!(f, "log record at byte {offset} failed its checksum")
            }
            DurableError::ReplayDiverged { stream_id, anchor } => write!(
                f,
                "replay diverged: stream {stream_id} anchor {anchor} recomputed a \
                 different decision than was logged"
            ),
            DurableError::SnapshotDiverged { stream_id } => write!(
                f,
                "snapshot diverged: restored lane state for stream {stream_id} does \
                 not match its recorded fingerprint"
            ),
            DurableError::Core(e) => write!(f, "durable core error: {e}"),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Io(e) => Some(e),
            DurableError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DurableError {
    fn from(e: std::io::Error) -> Self {
        DurableError::Io(e)
    }
}

impl From<eventhit_core::CoreError> for DurableError {
    fn from(e: eventhit_core::CoreError) -> Self {
        DurableError::Core(e)
    }
}

/// Crate-wide result alias.
pub type DurableResult<T> = Result<T, DurableError>;
