//! Periodic checkpoints of the complete dynamic lane state.
//!
//! A snapshot bounds recovery time: instead of replaying the whole log,
//! recovery restores the newest valid snapshot and replays only the
//! events logged after it ([`Snapshot::events_applied`] marks the
//! boundary).
//!
//! Snapshot files are named `snap-<events_applied:020>.evsn` (zero-padded
//! so lexicographic order is numeric order) and written atomically: the
//! payload goes to a temp file first, then a rename publishes it. A crash
//! mid-snapshot therefore leaves either the previous snapshot or a
//! `.tmp` file that loading ignores — never a half-visible checkpoint.
//! The file body is `"EVSN" | version u32 | payload_len u64 | crc32 u32 |
//! payload`, the same checksummed shell the model format uses.

use crate::event::Cursor;
use crate::{DurableError, DurableResult};
use eventhit_telemetry::crc32;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"EVSN";
const VERSION: u32 = 1;
/// Upper bound on a snapshot payload (256 MiB).
const MAX_PAYLOAD_BYTES: u64 = 1 << 28;

/// The complete dynamic state of one serving lane at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneSnapshot {
    /// The stream this lane serves.
    pub stream_id: u32,
    /// Feature dimension of the lane's frames.
    pub dim: u32,
    /// Total frames accepted by the lane (the stream's `next_seq`).
    pub frames: u64,
    /// Total decisions the lane has emitted.
    pub decisions: u64,
    /// Frames the predictor has consumed (`PredictorState::frames_seen`).
    pub frames_seen: u64,
    /// Anchor countdown (`PredictorState::countdown`).
    pub countdown: u64,
    /// Buffered window rows, oldest first (`PredictorState::rows`).
    pub rows: Vec<Vec<f32>>,
    /// Fingerprint of the predictor state these fields restore to —
    /// verified after restore so a drifted environment fails loudly.
    pub state_fingerprint: u64,
}

/// A full checkpoint: every live lane plus the log position it covers.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Number of log events already folded into this snapshot. Replay
    /// starts from the event at this index.
    pub events_applied: u64,
    /// Fingerprint of the hot-reloaded model active at snapshot time,
    /// or `None` when the boot model (the one the serving factory
    /// produces) is still active.
    pub reload_fingerprint: Option<u64>,
    /// Per-stream lane state, ascending by `stream_id`.
    pub lanes: Vec<LaneSnapshot>,
}

impl Snapshot {
    /// Serializes the snapshot payload (the bytes inside the checksummed
    /// shell).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.events_applied.to_le_bytes());
        match self.reload_fingerprint {
            Some(fp) => {
                out.push(1);
                out.extend_from_slice(&fp.to_le_bytes());
            }
            None => out.push(0),
        }
        out.extend_from_slice(&(self.lanes.len() as u32).to_le_bytes());
        for lane in &self.lanes {
            out.extend_from_slice(&lane.stream_id.to_le_bytes());
            out.extend_from_slice(&lane.dim.to_le_bytes());
            out.extend_from_slice(&lane.frames.to_le_bytes());
            out.extend_from_slice(&lane.decisions.to_le_bytes());
            out.extend_from_slice(&lane.frames_seen.to_le_bytes());
            out.extend_from_slice(&lane.countdown.to_le_bytes());
            out.extend_from_slice(&(lane.rows.len() as u32).to_le_bytes());
            for row in &lane.rows {
                debug_assert_eq!(row.len(), lane.dim as usize);
                for &v in row {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            out.extend_from_slice(&lane.state_fingerprint.to_le_bytes());
        }
        out
    }

    /// Deserializes a snapshot payload.
    pub fn decode(payload: &[u8]) -> DurableResult<Snapshot> {
        let mut cur = Cursor {
            bytes: payload,
            pos: 0,
        };
        let events_applied = cur.u64()?;
        let reload_fingerprint = match cur.u8()? {
            0 => None,
            1 => Some(cur.u64()?),
            _ => return Err(DurableError::Format("bad reload-fingerprint marker")),
        };
        let n_lanes = cur.u32()? as usize;
        let mut lanes = Vec::with_capacity(n_lanes);
        for _ in 0..n_lanes {
            let stream_id = cur.u32()?;
            let dim = cur.u32()?;
            if dim == 0 {
                return Err(DurableError::Format("lane snapshot with zero dimension"));
            }
            let frames = cur.u64()?;
            let decisions = cur.u64()?;
            let frames_seen = cur.u64()?;
            let countdown = cur.u64()?;
            let n_rows = cur.u32()? as usize;
            let mut rows = Vec::with_capacity(n_rows);
            for _ in 0..n_rows {
                let mut row = Vec::with_capacity(dim as usize);
                for _ in 0..dim {
                    row.push(cur.f32()?);
                }
                rows.push(row);
            }
            let state_fingerprint = cur.u64()?;
            lanes.push(LaneSnapshot {
                stream_id,
                dim,
                frames,
                decisions,
                frames_seen,
                countdown,
                rows,
                state_fingerprint,
            });
        }
        cur.finish()?;
        Ok(Snapshot {
            events_applied,
            reload_fingerprint,
            lanes,
        })
    }

    /// The file name this snapshot is published under.
    pub fn file_name(&self) -> String {
        format!("snap-{:020}.evsn", self.events_applied)
    }

    /// Writes the snapshot atomically into `dir` (temp file + rename)
    /// and prunes any older snapshots. Returns the published path.
    pub fn write(&self, dir: &Path) -> DurableResult<PathBuf> {
        self.write_with_prune_count(dir).map(|(path, _)| path)
    }

    /// [`Snapshot::write`] that also reports how many older snapshot
    /// files (including stale `.tmp` leftovers) the prune removed, so
    /// the durable store can count them.
    pub fn write_with_prune_count(&self, dir: &Path) -> DurableResult<(PathBuf, u64)> {
        let payload = self.encode();
        let mut bytes = Vec::with_capacity(20 + payload.len());
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);

        let final_path = dir.join(self.file_name());
        let tmp_path = dir.join(format!("{}.tmp", self.file_name()));
        {
            let mut f = fs::File::create(&tmp_path)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;

        // Older snapshots are now redundant; best-effort prune.
        let mut pruned = 0u64;
        for entry in fs::read_dir(dir)? {
            let path = entry?.path();
            if path == final_path {
                continue;
            }
            if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                if name.starts_with("snap-")
                    && (name.ends_with(".evsn") || name.ends_with(".tmp"))
                    && fs::remove_file(&path).is_ok()
                {
                    pruned += 1;
                }
            }
        }
        Ok((final_path, pruned))
    }

    /// Reads one snapshot file, validating shell and checksum.
    pub fn read(path: &Path) -> DurableResult<Snapshot> {
        let bytes = fs::read(path)?;
        if bytes.len() < 20 || &bytes[0..4] != MAGIC {
            return Err(DurableError::Format("not a snapshot file (bad magic)"));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != VERSION {
            return Err(DurableError::Format("unsupported snapshot version"));
        }
        let len = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        if len > MAX_PAYLOAD_BYTES {
            return Err(DurableError::Format("snapshot payload length is absurd"));
        }
        let expected = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
        let payload = &bytes[20..];
        if (payload.len() as u64) < len {
            return Err(DurableError::Format("snapshot payload truncated"));
        }
        let payload = &payload[..len as usize];
        let got = crc32(payload);
        if got != expected {
            return Err(DurableError::Corrupt { offset: 20 });
        }
        Snapshot::decode(payload)
    }

    /// Loads the newest *valid* snapshot in `dir`, skipping unreadable or
    /// damaged ones (a crash mid-write leaves `.tmp` files that are
    /// ignored entirely). Returns `None` when no usable snapshot exists.
    pub fn load_latest(dir: &Path) -> DurableResult<Option<Snapshot>> {
        let mut candidates: Vec<PathBuf> = fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("snap-") && n.ends_with(".evsn"))
            })
            .collect();
        candidates.sort();
        for path in candidates.iter().rev() {
            if let Ok(snap) = Snapshot::read(path) {
                return Ok(Some(snap));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            events_applied: 42,
            reload_fingerprint: Some(0xFEED_F00D_1234_5678),
            lanes: vec![
                LaneSnapshot {
                    stream_id: 0,
                    dim: 3,
                    frames: 17,
                    decisions: 2,
                    frames_seen: 17,
                    countdown: 4,
                    rows: vec![vec![1.0, 2.0, 3.0], vec![-0.5, 0.0, 0.5]],
                    state_fingerprint: 0xAA,
                },
                LaneSnapshot {
                    stream_id: 9,
                    dim: 1,
                    frames: 0,
                    decisions: 0,
                    frames_seen: 0,
                    countdown: 0,
                    rows: vec![],
                    state_fingerprint: 0xBB,
                },
            ],
        }
    }

    #[test]
    fn payload_round_trips() {
        let snap = sample();
        assert_eq!(Snapshot::decode(&snap.encode()).unwrap(), snap);
        let boot = Snapshot {
            reload_fingerprint: None,
            ..sample()
        };
        assert_eq!(Snapshot::decode(&boot.encode()).unwrap(), boot);
    }

    #[test]
    fn file_round_trips_and_prunes_older() {
        let dir = std::env::temp_dir().join(format!("evsn-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let old = Snapshot {
            events_applied: 10,
            ..sample()
        };
        let new = Snapshot {
            events_applied: 42,
            ..sample()
        };
        let old_path = old.write(&dir).unwrap();
        let new_path = new.write(&dir).unwrap();
        assert!(!old_path.exists(), "older snapshot should be pruned");
        assert!(new_path.exists());
        assert_eq!(Snapshot::load_latest(&dir).unwrap().unwrap(), new);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damaged_snapshot_is_skipped_by_load_latest() {
        let dir = std::env::temp_dir().join(format!("evsn-dmg-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let good = Snapshot {
            events_applied: 5,
            ..sample()
        };
        good.write(&dir).unwrap();
        // A newer snapshot that was bit-damaged after publication — built
        // by hand so write()'s pruning doesn't remove the good one.
        let bad = Snapshot {
            events_applied: 50,
            ..sample()
        };
        let payload = bad.encode();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(dir.join(bad.file_name()), &bytes).unwrap();

        let latest = Snapshot::load_latest(&dir).unwrap().unwrap();
        assert_eq!(latest.events_applied, 5, "damaged newer snapshot skipped");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_snapshot_is_a_format_error() {
        let snap = sample();
        let payload = snap.encode();
        for cut in 0..payload.len() {
            assert!(Snapshot::decode(&payload[..cut]).is_err(), "cut at {cut}");
        }
    }
}
