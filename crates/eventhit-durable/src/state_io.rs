//! Serialization for fitted conformal state, plus the model/state pair a
//! hot-reload persists beside the log.
//!
//! A mid-serve model reload changes every future decision, so replay must
//! be able to reproduce it *without* the original calibration records.
//! [`save_reload`] therefore persists both halves next to the session
//! log — the weights as `model-<fp:016x>.evht` (the `model_io` v2 format)
//! and the refitted conformal state as `state-<fp:016x>.evcs` — keyed by
//! the weight fingerprint the [`crate::SessionEvent::ModelReloaded`]
//! event records. [`load_reload`] is the inverse used during recovery.
//!
//! The `.evcs` body is `"EVCS" | version u32 | payload_len u64 |
//! crc32 u32 | payload`; the payload stores the calibrated scores and
//! residuals verbatim (f64 bits), so a loaded state is bit-identical to
//! the one saved.

use crate::event::Cursor;
use crate::{DurableError, DurableResult};
use eventhit_conformal::{ConformalClassifier, IntervalCalibration, Nonconformity};
use eventhit_core::model_io;
use eventhit_core::{ConformalState, EventHit};
use eventhit_telemetry::crc32;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"EVCS";
const VERSION: u32 = 1;
/// Upper bound on a conformal-state payload (256 MiB).
const MAX_PAYLOAD_BYTES: u64 = 1 << 28;

fn measure_code(m: Nonconformity) -> u8 {
    match m {
        Nonconformity::OneMinusScore => 0,
        Nonconformity::NegLogScore => 1,
        Nonconformity::Margin => 2,
    }
}

fn measure_from_code(code: u8) -> DurableResult<Nonconformity> {
    Ok(match code {
        0 => Nonconformity::OneMinusScore,
        1 => Nonconformity::NegLogScore,
        2 => Nonconformity::Margin,
        _ => return Err(DurableError::Format("unknown non-conformity code")),
    })
}

/// Serializes a fitted conformal state to its payload bytes.
pub fn encode_state(state: &ConformalState) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&state.tau2().to_le_bytes());
    out.extend_from_slice(&state.horizon().to_le_bytes());
    out.extend_from_slice(&(state.num_events() as u32).to_le_bytes());
    for k in 0..state.num_events() {
        let cc = state.classifier(k);
        out.push(measure_code(cc.measure()));
        let scores = cc.calibration_scores();
        out.extend_from_slice(&(scores.len() as u32).to_le_bytes());
        for &s in scores {
            out.extend_from_slice(&s.to_le_bytes());
        }
        let cal = state.interval_calibration(k);
        for residuals in [cal.start().residuals(), cal.end().residuals()] {
            out.extend_from_slice(&(residuals.len() as u32).to_le_bytes());
            for &r in residuals {
                out.extend_from_slice(&r.to_le_bytes());
            }
        }
    }
    out
}

/// Deserializes a conformal state from its payload bytes.
pub fn decode_state(payload: &[u8]) -> DurableResult<ConformalState> {
    let mut cur = Cursor {
        bytes: payload,
        pos: 0,
    };
    let tau2 = cur.f32()?;
    let horizon = cur.u32()?;
    let num_events = cur.u32()? as usize;
    let mut classifiers = Vec::with_capacity(num_events);
    let mut intervals = Vec::with_capacity(num_events);
    for _ in 0..num_events {
        let measure = measure_from_code(cur.u8()?)?;
        let n = cur.u32()? as usize;
        let mut scores = Vec::with_capacity(n);
        for _ in 0..n {
            scores.push(cur.f64()?);
        }
        classifiers.push(ConformalClassifier::from_parts(measure, scores));
        let mut halves = Vec::with_capacity(2);
        for _ in 0..2 {
            let n = cur.u32()? as usize;
            let mut residuals = Vec::with_capacity(n);
            for _ in 0..n {
                let r = cur.f64()?;
                // `ConformalRegressor::fit` asserts non-negativity; turn a
                // damaged-but-checksum-passing file into an error instead
                // of a panic.
                if r.is_nan() || r < 0.0 {
                    return Err(DurableError::Format(
                        "negative or NaN residual in conformal state",
                    ));
                }
                residuals.push(r);
            }
            halves.push(residuals);
        }
        let end = halves.pop().unwrap();
        let start = halves.pop().unwrap();
        intervals.push(IntervalCalibration::fit(start, end));
    }
    cur.finish()?;
    ConformalState::from_parts(classifiers, intervals, tau2, horizon).map_err(DurableError::Core)
}

/// Writes a conformal state to `path` inside the checksummed shell.
pub fn save_state(state: &ConformalState, path: &Path) -> DurableResult<()> {
    let payload = encode_state(state);
    let mut bytes = Vec::with_capacity(20 + payload.len());
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&VERSION.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);
    let mut f = fs::File::create(path)?;
    f.write_all(&bytes)?;
    f.sync_all()?;
    Ok(())
}

/// Reads a conformal state from `path`, validating shell and checksum.
pub fn load_state(path: &Path) -> DurableResult<ConformalState> {
    let bytes = fs::read(path)?;
    if bytes.len() < 20 || &bytes[0..4] != MAGIC {
        return Err(DurableError::Format("not a conformal-state file"));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != VERSION {
        return Err(DurableError::Format("unsupported conformal-state version"));
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    if len > MAX_PAYLOAD_BYTES {
        return Err(DurableError::Format("conformal-state length is absurd"));
    }
    let expected = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
    let payload = &bytes[20..];
    if (payload.len() as u64) < len {
        return Err(DurableError::Format("conformal-state payload truncated"));
    }
    let payload = &payload[..len as usize];
    if crc32(payload) != expected {
        return Err(DurableError::Corrupt { offset: 20 });
    }
    decode_state(payload)
}

/// File name of the persisted weights for a reload fingerprint.
pub fn model_file_name(fingerprint: u64) -> String {
    format!("model-{fingerprint:016x}.evht")
}

/// File name of the persisted conformal state for a reload fingerprint.
pub fn state_file_name(fingerprint: u64) -> String {
    format!("state-{fingerprint:016x}.evcs")
}

/// Persists a hot-reloaded model and its refitted conformal state into
/// `dir`, keyed by the weight fingerprint. Returns the fingerprint for
/// the caller to record in a [`crate::SessionEvent::ModelReloaded`]
/// event. (`model` is `&mut` because fingerprinting serializes through
/// the quantization cache.)
pub fn save_reload(dir: &Path, model: &mut EventHit, state: &ConformalState) -> DurableResult<u64> {
    let fingerprint = model_io::fingerprint(model);
    model_io::save_to_path(model, dir.join(model_file_name(fingerprint)))?;
    save_state(state, &dir.join(state_file_name(fingerprint)))?;
    Ok(fingerprint)
}

/// Loads the model/state pair persisted under `fingerprint`, verifying
/// the weights hash back to it.
pub fn load_reload(dir: &Path, fingerprint: u64) -> DurableResult<(EventHit, ConformalState)> {
    let mut model = model_io::load_from_path(dir.join(model_file_name(fingerprint)))?;
    let got = model_io::fingerprint(&mut model);
    if got != fingerprint {
        return Err(DurableError::Format(
            "reloaded weights do not hash to their file name's fingerprint",
        ));
    }
    let state = load_state(&dir.join(state_file_name(fingerprint)))?;
    Ok((model, state))
}

/// Convenience for snapshots/recovery: the path of a reload's weights.
pub fn model_path(dir: &Path, fingerprint: u64) -> PathBuf {
    dir.join(model_file_name(fingerprint))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventhit_core::{task, ExperimentConfig, TaskRun};

    fn fitted_state() -> ConformalState {
        TaskRun::execute(&task("TA10").unwrap(), &ExperimentConfig::quick(31)).state
    }

    #[test]
    fn state_round_trips_bit_identically() {
        let state = fitted_state();
        let decoded = decode_state(&encode_state(&state)).unwrap();
        assert_eq!(decoded.num_events(), state.num_events());
        assert_eq!(decoded.tau2(), state.tau2());
        assert_eq!(decoded.horizon(), state.horizon());
        for k in 0..state.num_events() {
            assert_eq!(
                decoded.classifier(k).calibration_scores(),
                state.classifier(k).calibration_scores(),
                "event {k} classifier scores"
            );
            assert_eq!(
                decoded.interval_calibration(k).start().residuals(),
                state.interval_calibration(k).start().residuals(),
                "event {k} start residuals"
            );
            assert_eq!(
                decoded.interval_calibration(k).end().residuals(),
                state.interval_calibration(k).end().residuals(),
                "event {k} end residuals"
            );
        }
    }

    #[test]
    fn reload_pair_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("evcs-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let run = TaskRun::execute(&task("TA10").unwrap(), &ExperimentConfig::quick(32));
        let mut model = run.model.clone();
        let fp = save_reload(&dir, &mut model, &run.state).unwrap();
        let (mut loaded, state) = load_reload(&dir, fp).unwrap();
        assert_eq!(model_io::fingerprint(&mut loaded), fp);
        assert_eq!(state.num_events(), run.state.num_events());
        assert!(load_reload(&dir, fp ^ 1).is_err(), "missing pair must fail");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_state_payload_is_an_error() {
        let payload = encode_state(&fitted_state());
        for cut in (0..payload.len()).step_by(7) {
            assert!(decode_state(&payload[..cut]).is_err(), "cut at {cut}");
        }
    }
}
