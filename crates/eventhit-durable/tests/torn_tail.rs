//! Property test for crash-tail recovery: truncating the session log at
//! EVERY byte offset of the final record must recover exactly the
//! fully-committed prefix — never panic, never lose a committed record,
//! never report bit damage for a pure truncation.

use eventhit_durable::event::SessionEvent;
use eventhit_durable::log::{frame_record, scan, Tail};
use eventhit_durable::store::DurableStore;
use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// A varied-size event mix: empty-ish, small, and multi-kilobyte records.
fn events() -> Vec<SessionEvent> {
    let mut evs = vec![
        SessionEvent::StreamAdmitted {
            stream_id: 0,
            dim: 4,
        },
        SessionEvent::FramesPushed {
            stream_id: 0,
            dim: 4,
            data: (0..4 * 97).map(|i| i as f32 * 0.25 - 7.0).collect(),
        },
        SessionEvent::DecisionEmitted {
            stream_id: 0,
            anchor: 31,
            fingerprint: 0x9E37_79B9_7F4A_7C15,
        },
        SessionEvent::ModelReloaded {
            fingerprint: 0x0123_4567_89AB_CDEF,
        },
        SessionEvent::FramesPushed {
            stream_id: 0,
            dim: 4,
            data: (0..4 * 113).map(|i| (i as f32).sin()).collect(),
        },
        SessionEvent::StreamClosed { stream_id: 0 },
    ];
    // A second stream so the final record sits on a multi-stream log.
    evs.push(SessionEvent::StreamAdmitted {
        stream_id: 1,
        dim: 2,
    });
    evs
}

fn image_of(evs: &[SessionEvent]) -> Vec<u8> {
    let mut image = Vec::new();
    for ev in evs {
        image.extend_from_slice(&frame_record(&ev.encode()));
    }
    image
}

#[test]
fn every_truncation_offset_of_the_final_record_recovers_the_prefix() {
    let evs = events();
    let image = image_of(&evs);
    let prefix_len = image_of(&evs[..evs.len() - 1]).len();

    for cut in prefix_len..=image.len() {
        let scanned = scan(&image[..cut]).unwrap_or_else(|e| {
            panic!("cut at {cut}: pure truncation must never be an error, got {e}")
        });
        if cut == prefix_len {
            assert_eq!(scanned.tail, Tail::Clean, "cut at committed boundary");
            assert_eq!(scanned.payloads.len(), evs.len() - 1);
        } else if cut == image.len() {
            assert_eq!(scanned.tail, Tail::Clean, "full image is clean");
            assert_eq!(scanned.payloads.len(), evs.len());
        } else {
            assert_eq!(scanned.tail, Tail::Torn, "cut at {cut}");
            assert_eq!(scanned.payloads.len(), evs.len() - 1, "cut at {cut}");
        }
        let expect_valid = if cut == image.len() { cut } else { prefix_len };
        assert_eq!(scanned.valid_bytes, expect_valid as u64);
        // Every committed payload survives intact and still decodes.
        for (payload, ev) in scanned.payloads.iter().zip(&evs) {
            assert_eq!(&SessionEvent::decode(payload).unwrap(), ev);
        }
    }
}

#[test]
fn store_reopens_and_appends_after_every_tail_truncation() {
    let evs = events();
    let image = image_of(&evs);
    let prefix_len = image_of(&evs[..evs.len() - 1]).len();
    let dir: PathBuf = std::env::temp_dir().join(format!("evtorn-reopen-{}", std::process::id()));

    // Exhaustive at the store level too: for each truncation offset,
    // opening must truncate back to the committed prefix and accept a
    // fresh append on the repaired boundary.
    for cut in prefix_len..image.len() {
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let log_path = dir.join("session.evlog");
        let mut f = fs::File::create(&log_path).unwrap();
        f.write_all(&image[..cut]).unwrap();
        drop(f);

        let (mut store, recovery) = DurableStore::open(&dir).unwrap();
        assert_eq!(recovery.torn_tail, cut != prefix_len, "cut at {cut}");
        assert_eq!(recovery.tail.len(), evs.len() - 1, "cut at {cut}");
        assert_eq!(
            fs::metadata(&log_path).unwrap().len(),
            prefix_len as u64,
            "cut at {cut}: torn bytes must be truncated away"
        );

        store
            .append(&SessionEvent::StreamClosed { stream_id: 1 })
            .unwrap();
        let (_, again) = DurableStore::open(&dir).unwrap();
        assert!(!again.torn_tail);
        assert_eq!(again.tail.len(), evs.len(), "cut at {cut}");
        assert_eq!(
            again.tail.last(),
            Some(&SessionEvent::StreamClosed { stream_id: 1 })
        );
    }
    let _ = fs::remove_dir_all(&dir);
}
