//! Wall-clock micro-benchmarks — the in-repo `criterion` replacement.
//!
//! The API mirrors the subset of criterion the workspace's bench files use
//! (`Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`, `Throughput`), so the five bench targets kept their
//! shape when they were ported. The statistics are deliberately simple:
//! calibrate the per-iteration cost, then take a fixed number of timed
//! samples and report min / mean.
//!
//! Tuning via environment:
//! * `EVENTHIT_BENCH_MS` — target measurement time per benchmark in
//!   milliseconds (default 300).
//! * `EVENTHIT_BENCH_SAMPLES` — number of timed samples (default 10).
//!
//! Declare targets with [`bench_group!`](crate::bench_group) + [`bench_main!`](crate::bench_main) and
//! `harness = false` in the manifest, as with criterion.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (mirrors `criterion::Criterion`).
pub struct Criterion {
    target: Duration,
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = env_u64("EVENTHIT_BENCH_MS", 300);
        let samples = env_u64("EVENTHIT_BENCH_SAMPLES", 10) as usize;
        Criterion {
            target: Duration::from_millis(ms.max(1)),
            samples: samples.max(1),
        }
    }
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        run_benchmark(name, self.target, self.samples, None, f);
    }
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for criterion compatibility; the sample count is governed
    /// by `EVENTHIT_BENCH_SAMPLES` instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Reports per-second rates alongside per-iteration times.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(
            &label,
            self.criterion.target,
            self.criterion.samples,
            self.throughput,
            f,
        );
    }

    /// Runs one parameterized benchmark (the input is passed through).
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (criterion compatibility; no-op).
    pub fn finish(self) {}
}

/// A `name/parameter` benchmark label.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds the label `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Units for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Items processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under measurement.
pub struct Bencher {
    target: Duration,
    samples: usize,
    /// Mean per-iteration time of each sample, filled by `iter`.
    measurements: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Measures `f`: calibrates a batch size so one sample takes roughly
    /// `target / samples`, then records `samples` timed batches.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Calibration: double the batch until it runs long enough to time.
        let calibration_floor =
            (self.target / (self.samples as u32 * 10)).max(Duration::from_micros(50));
        let mut batch = 1u64;
        let per_iter_nanos = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= calibration_floor || batch >= 1 << 40 {
                break (elapsed.as_nanos() / batch as u128).max(1);
            }
            batch *= 2;
        };

        let sample_budget = (self.target / self.samples as u32).as_nanos();
        let iters = (sample_budget / per_iter_nanos).max(1) as u64;

        self.iters_per_sample = iters;
        self.measurements.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let per_iter = start.elapsed().as_nanos() / iters as u128;
            self.measurements
                .push(Duration::from_nanos(per_iter.min(u64::MAX as u128) as u64));
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    target: Duration,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        target,
        samples,
        measurements: Vec::new(),
        iters_per_sample: 0,
    };
    f(&mut bencher);

    if bencher.measurements.is_empty() {
        println!("{label:<48} (no measurement: Bencher::iter never called)");
        return;
    }
    let min = bencher
        .measurements
        .iter()
        .min()
        .copied()
        .unwrap_or_default();
    let mean = bencher.measurements.iter().sum::<Duration>() / bencher.measurements.len() as u32;

    let rate = throughput.map(|t| {
        let per_sec = |count: u64| count as f64 / mean.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => format!(" ({:.3e} elem/s)", per_sec(n)),
            Throughput::Bytes(n) => format!(" ({:.3e} B/s)", per_sec(n)),
        }
    });
    println!(
        "{label:<48} time: [min {} / mean {}]{} ({} samples x {} iters)",
        fmt_duration(min),
        fmt_duration(mean),
        rate.unwrap_or_default(),
        bencher.measurements.len(),
        bencher.iters_per_sample,
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group function from a list of `fn(&mut Criterion)`
/// benchmarks (the `criterion_group!` replacement).
#[macro_export]
macro_rules! bench_group {
    ($group:ident, $($bench:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::bench::Criterion::default();
            $( $bench(&mut criterion); )+
        }
    };
}

/// Declares `fn main()` running the listed groups (the `criterion_main!`
/// replacement). Requires `harness = false` on the bench target.
#[macro_export]
macro_rules! bench_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
