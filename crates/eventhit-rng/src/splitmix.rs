//! SplitMix64 — the seed expander.
//!
//! A 64-bit state, 64-bit output generator (Steele, Lea & Flood 2014) whose
//! single-pass avalanche makes it the standard choice for expanding a small
//! seed into the state of a larger generator. `rand` seeds `StdRng` the same
//! way, which keeps `seed_from_u64` semantics familiar.

use crate::traits::RngCore;

/// The SplitMix64 generator. Mainly used to expand `u64` seeds into
/// Xoshiro256++ state; usable as a (weak) generator in its own right.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given starting state.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Advances the state and returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

/// One SplitMix64 step as a pure 64-bit mixing function. Used for
/// domain-separated stream derivation.
pub fn mix64(x: u64) -> u64 {
    SplitMix64::new(x).next_u64()
}
