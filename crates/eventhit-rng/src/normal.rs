//! Gaussian sampling via Box–Muller, on top of the uniform source.

use crate::traits::{Rng, RngCore};

/// One standard-normal (`N(0, 1)`) sample.
pub fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 1 - U keeps the argument of ln strictly positive (U is in [0, 1)).
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A normal sample with the given mean and standard deviation.
pub fn normal<R: RngCore + ?Sized>(mean: f64, std: f64, rng: &mut R) -> f64 {
    assert!(std >= 0.0, "standard deviation must be non-negative");
    mean + std * standard_normal(rng)
}

/// One standard-normal sample in `f32` (single-precision Box–Muller).
pub fn standard_normal_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    let u1: f32 = 1.0 - rng.random::<f32>();
    let u2: f32 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}
