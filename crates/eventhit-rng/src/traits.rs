//! The RNG trait surface: a drop-in replacement for the subset of `rand`'s
//! API the workspace uses (`RngCore`, `Rng`, `SeedableRng`, range sampling).

use crate::splitmix::SplitMix64;
use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (the high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Ergonomic sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A sample from the standard distribution of `T`: uniform in `[0, 1)`
    /// for floats, uniform over all values for integers and `bool`.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_from(self)
    }

    /// A uniform sample from a half-open (`lo..hi`) or inclusive
    /// (`lo..=hi`) range. Integer ranges are sampled without modulo bias
    /// (Lemire rejection).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type (byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator directly from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 — the workspace's
    /// canonical seeding discipline. Identical structure to `rand`'s
    /// default, so one integer pins every downstream draw.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types with a canonical "standard" distribution (see [`Rng::random`]).
pub trait StandardUniform: Sized {
    /// Draws one sample from the standard distribution of `Self`.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_standard_impl {
    ($($t:ty),* $(,)?) => {$(
        impl StandardUniform for $t {
            fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_standard_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can produce a uniform sample (see [`Rng::random_range`]).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform integer in `[0, span)` via Lemire's multiply-shift
/// rejection.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! float_range_impl {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                loop {
                    let u: $t = StandardUniform::sample_from(rng);
                    let x = self.start + u * (self.end - self.start);
                    // `u` < 1 but rounding can still land on `end`; reject.
                    if x < self.end {
                        return x;
                    }
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let u: $t = StandardUniform::sample_from(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
float_range_impl!(f32, f64);

macro_rules! int_range_impl {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // The full 64-bit domain: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span as u64) as $t)
            }
        }
    )*};
}
int_range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
