//! # eventhit-rng
//!
//! The workspace's zero-external-dependency random substrate. The build
//! environment is hermetic (no crates.io access), and the paper's
//! split-conformal guarantees (C-CLASSIFY / C-REGRESS) are only checkable
//! when every calibration draw is replayable, so the whole workspace runs on
//! this crate instead of `rand`/`proptest`/`criterion`.
//!
//! ## Algorithm
//!
//! * **Generator:** Xoshiro256++ (Blackman & Vigna), 256-bit state, period
//!   `2^256 - 1`, passes BigCrush. [`rngs::StdRng`] is an alias for it.
//! * **Seeding:** a `u64` seed is expanded to the 256-bit state with
//!   SplitMix64 ([`SeedableRng::seed_from_u64`]), the same discipline `rand`
//!   uses, so a single integer fully determines every downstream draw.
//! * **Streams:** [`rngs::StdRng::stream`] derives statistically independent
//!   generators for parallel workers from `(seed, stream_id)`;
//!   [`rngs::StdRng::jump`] / [`rngs::StdRng::long_jump`] give guaranteed
//!   non-overlapping subsequences (`2^128` / `2^192` steps apart).
//!
//! ## API compatibility
//!
//! The trait surface is a drop-in for the subset of `rand 0.9` the workspace
//! used: `StdRng::seed_from_u64`, `Rng::random`, `Rng::random_range`,
//! `Rng::random_bool`, `seq::SliceRandom::shuffle`, and `R: Rng + ?Sized`
//! generic bounds. Gaussians via Box–Muller live in [`normal`].
//!
//! ## Test and bench harness
//!
//! [`testkit`] replaces `proptest` with a property-test macro
//! ([`property!`]) with shrinking-lite, and [`bench`](mod@bench) replaces `criterion`
//! with a wall-clock micro-bench timer behind a criterion-shaped API.

pub mod bench;
pub mod normal;
pub mod rngs;
pub mod seq;
mod splitmix;
pub mod testkit;
mod traits;

pub use splitmix::{mix64, SplitMix64};
pub use traits::{Rng, RngCore, SampleRange, SeedableRng, StandardUniform};
