//! Property-based testing with shrinking-lite — the in-repo `proptest`
//! replacement.
//!
//! A [`Strategy`] samples values from a seeded [`StdRng`] and optionally
//! proposes smaller failing candidates ([`Strategy::shrink`]). The
//! [`property!`](crate::property) macro wraps each property in a `#[test]` that runs a fixed
//! number of cases (default 64, override with `EVENTHIT_PT_CASES`) from a
//! seed derived from the test's name, so failures replay deterministically.
//!
//! ```ignore
//! eventhit_rng::property! {
//!     #[test]
//!     fn add_commutes(a in 0u64..100, b in 0u64..100) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! ```
//!
//! Dependent generation (proptest's `prop_compose!`) is covered by
//! [`from_fn`], which builds a strategy from any closure over the RNG.

use crate::rngs::StdRng;
use crate::traits::{Rng, SeedableRng};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Why a single property case did not pass.
pub enum PropError {
    /// The case was rejected by `prop_assume!` — resample, don't fail.
    Reject,
    /// The property is false for this input.
    Fail(String),
}

/// The result type property bodies evaluate to.
pub type PropResult = Result<(), PropError>;

/// A generator of test inputs with optional shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value: Clone + Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Candidate "smaller" values to try when `v` fails. Shrinking-lite:
    /// a handful of candidates per step is enough to turn a wild failing
    /// case into a readable one; we don't chase minimality.
    fn shrink(&self, _v: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// A strategy that post-processes samples with `f` (no shrinking
    /// through the map — use [`from_fn`] if shrink quality matters).
    /// Named `prop_map` (as in proptest) so it never shadows
    /// `Iterator::map` on ranges.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Clone + Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map()`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: Clone + Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy from a closure over the RNG — the escape hatch for dependent
/// generation (no shrinking).
pub fn from_fn<T, F>(f: F) -> FromFn<F>
where
    T: Clone + Debug,
    F: Fn(&mut StdRng) -> T,
{
    FromFn { f }
}

/// See [`from_fn`].
pub struct FromFn<F> {
    f: F,
}

impl<T, F> Strategy for FromFn<F>
where
    T: Clone + Debug,
    F: Fn(&mut StdRng) -> T,
{
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        (self.f)(rng)
    }
}

/// A strategy that always yields `value` (proptest's `Just`).
pub fn just<T: Clone + Debug>(value: T) -> Just<T> {
    Just(value)
}

/// See [`just`].
#[derive(Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// A uniformly random `bool`; shrinks `true` to `false`.
pub fn any_bool() -> AnyBool {
    AnyBool
}

/// See [`any_bool`].
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn sample(&self, rng: &mut StdRng) -> bool {
        rng.random()
    }
    fn shrink(&self, v: &bool) -> Vec<bool> {
        if *v {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

macro_rules! int_strategy_impl {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                let lo = self.start;
                let mut out = Vec::new();
                if *v != lo {
                    out.push(lo);
                    let mid = lo + (*v - lo) / 2;
                    if mid != lo && mid != *v {
                        out.push(mid);
                    }
                }
                out
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                let lo = *self.start();
                let mut out = Vec::new();
                if *v != lo {
                    out.push(lo);
                    let mid = lo + (*v - lo) / 2;
                    if mid != lo && mid != *v {
                        out.push(mid);
                    }
                }
                out
            }
        }
    )*};
}
int_strategy_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy_impl {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                let mut out = Vec::new();
                // Prefer zero when the range straddles it, else the start.
                let anchor = if self.start <= 0.0 && 0.0 < self.end { 0.0 } else { self.start };
                if *v != anchor {
                    out.push(anchor);
                    let mid = anchor + (*v - anchor) / 2.0;
                    if mid != anchor && mid != *v {
                        out.push(mid);
                    }
                }
                out
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
float_strategy_impl!(f32, f64);

/// Vector length specification: an exact `usize` or a `Range<usize>`.
pub trait IntoSizeRange {
    /// Returns `(min_len, max_len)` inclusive.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty length range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

/// A `Vec` of samples from `elem` with a length drawn from `len`
/// (proptest's `collection::vec`).
pub fn vec<S: Strategy, L: IntoSizeRange>(elem: S, len: L) -> VecStrategy<S> {
    let (min_len, max_len) = len.bounds();
    VecStrategy {
        elem,
        min_len,
        max_len,
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    elem: S,
    min_len: usize,
    max_len: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.random_range(self.min_len..=self.max_len);
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.elem.sample(rng));
        }
        out
    }

    fn shrink(&self, v: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        // Structural shrinks first: shorter vectors fail more readably.
        if v.len() > self.min_len {
            let half = (v.len() / 2).max(self.min_len);
            if half < v.len() {
                out.push(v[..half].to_vec());
            }
            out.push(v[..v.len() - 1].to_vec());
        }
        // Element-wise: first shrink candidate per position, bounded.
        for i in 0..v.len().min(16) {
            if let Some(smaller) = self.elem.shrink(&v[i]).into_iter().next() {
                let mut copy = v.clone();
                copy[i] = smaller;
                out.push(copy);
            }
        }
        out
    }
}

macro_rules! tuple_strategy_impl {
    ($(($($s:ident / $v:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }

            fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&v.$idx) {
                        let mut copy = v.clone();
                        copy.$idx = candidate;
                        out.push(copy);
                    }
                )+
                out
            }
        }
    )*};
}
tuple_strategy_impl! {
    (A / a / 0)
    (A / a / 0, B / b / 1)
    (A / a / 0, B / b / 1, C / c / 2)
    (A / a / 0, B / b / 1, C / c / 2, D / d / 3)
    (A / a / 0, B / b / 1, C / c / 2, D / d / 3, E / e / 4)
    (A / a / 0, B / b / 1, C / c / 2, D / d / 3, E / e / 4, F / f / 5)
}

enum Outcome {
    Pass,
    Reject,
    Fail(String),
}

fn check<V: Clone>(f: &dyn Fn(V) -> PropResult, v: &V) -> Outcome {
    let value = v.clone();
    match catch_unwind(AssertUnwindSafe(|| f(value))) {
        Ok(Ok(())) => Outcome::Pass,
        Ok(Err(PropError::Reject)) => Outcome::Reject,
        Ok(Err(PropError::Fail(msg))) => Outcome::Fail(msg),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic with non-string payload".into());
            Outcome::Fail(format!("panicked: {msg}"))
        }
    }
}

/// FNV-1a over the test name: the per-test seed, so every property has its
/// own deterministic input stream.
fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs a property to completion; called by the [`property!`](crate::property) macro.
///
/// Panics (failing the enclosing `#[test]`) with the shrunk counterexample
/// on the first failing case.
pub fn run_property<S: Strategy>(name: &str, strat: S, f: impl Fn(S::Value) -> PropResult) {
    let cases: u64 = std::env::var("EVENTHIT_PT_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let mut rng = StdRng::seed_from_u64(name_seed(name));
    let mut passed = 0u64;
    let mut rejected = 0u64;

    while passed < cases {
        let value = strat.sample(&mut rng);
        match check(&f, &value) {
            Outcome::Pass => passed += 1,
            Outcome::Reject => {
                rejected += 1;
                assert!(
                    rejected <= cases * 16 + 256,
                    "property {name}: too many rejected cases ({rejected}); \
                     weaken prop_assume! or narrow the strategies"
                );
            }
            Outcome::Fail(msg) => {
                let (min_value, min_msg) = shrink_failure(&strat, &f, value, msg);
                panic!(
                    "property {name} failed after {passed} passing case(s)\n\
                     minimal failing input: {min_value:?}\n{min_msg}"
                );
            }
        }
    }
}

fn shrink_failure<S: Strategy>(
    strat: &S,
    f: &impl Fn(S::Value) -> PropResult,
    mut value: S::Value,
    mut msg: String,
) -> (S::Value, String) {
    for _ in 0..256 {
        let mut improved = false;
        for candidate in strat.shrink(&value) {
            if let Outcome::Fail(m) = check(f, &candidate) {
                value = candidate;
                msg = m;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    (value, msg)
}

/// Declares property-based `#[test]`s (the in-repo `proptest!`).
///
/// Each argument is `pattern in strategy`; the body may use
/// [`prop_assert!`](crate::prop_assert), [`prop_assert_eq!`](crate::prop_assert_eq), and [`prop_assume!`](crate::prop_assume).
#[macro_export]
macro_rules! property {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __strat = ($($strat,)+);
            #[allow(unreachable_code)]
            $crate::testkit::run_property(stringify!($name), __strat, move |__vals| {
                let ($($pat,)+) = __vals;
                $body
                Ok(())
            });
        }
    )*};
}

/// Asserts a condition inside a [`property!`](crate::property) body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::testkit::PropError::Fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::testkit::PropError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`property!`](crate::property) body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return Err($crate::testkit::PropError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                __l,
                __r,
                file!(),
                line!()
            )));
        }
    }};
}

/// Discards the current case (resampled, not counted) when the precondition
/// does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::testkit::PropError::Reject);
        }
    };
}
