//! Concrete generators. [`StdRng`] is Xoshiro256++ — the workspace default.

use crate::splitmix::{mix64, SplitMix64};
use crate::traits::{RngCore, SeedableRng};

/// Xoshiro256++ (Blackman & Vigna, 2019): 256-bit state, period
/// `2^256 - 1`, no known statistical failures, ~1 ns per draw. The `++`
/// scrambler makes all 64 output bits full-quality (unlike `+`, whose low
/// bits are weak), which matters because integer range sampling consumes
/// whole words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

/// The workspace's default seeded generator (mirrors `rand::rngs::StdRng`).
pub type StdRng = Xoshiro256PlusPlus;

const JUMP: [u64; 4] = [
    0x180e_c6d3_3cfd_0aba,
    0xd5a6_1266_f0c9_392c,
    0xa958_2618_e03f_c9aa,
    0x39ab_dc45_29b1_661c,
];

const LONG_JUMP: [u64; 4] = [
    0x76e1_5d3e_fefd_cbbf,
    0xc500_4e44_1c52_2fb3,
    0x7771_0069_854e_e241,
    0x3910_9bb0_2acb_e635,
];

impl Xoshiro256PlusPlus {
    /// Builds a generator by expanding `SplitMix64` output into the state.
    fn from_splitmix(sm: &mut SplitMix64) -> Self {
        let mut s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        if s == [0; 4] {
            // All-zero is the one forbidden state (it is a fixed point).
            // Unreachable in practice from SplitMix64, but cheap to guard.
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Xoshiro256PlusPlus { s }
    }

    /// A generator for worker `stream_id` of the run seeded by `seed`.
    ///
    /// Both inputs pass through SplitMix64's avalanche before expansion, so
    /// distinct `(seed, stream_id)` pairs yield statistically independent
    /// streams — the reproducible-parallelism entry point: give every
    /// worker `StdRng::stream(master_seed, worker_index)`.
    pub fn stream(seed: u64, stream_id: u64) -> Self {
        let mixed = mix64(seed).wrapping_add(mix64(stream_id ^ 0x853C_49E6_748F_EA9B));
        Self::from_splitmix(&mut SplitMix64::new(mixed))
    }

    /// Splits off an independent child generator, advancing `self`.
    ///
    /// Deterministic: the nth split of a generator in a given state is
    /// always the same generator.
    pub fn split(&mut self) -> Self {
        let derived = self.next_u64() ^ 0x5851_F42D_4C95_7F2D;
        Self::from_splitmix(&mut SplitMix64::new(derived))
    }

    /// Advances the state by `2^128` steps — equivalent to that many
    /// `next_u64` calls. Up to `2^128` non-overlapping subsequences.
    pub fn jump(&mut self) {
        self.polynomial_jump(&JUMP);
    }

    /// Advances the state by `2^192` steps. Up to `2^64` non-overlapping
    /// subsequences of length `2^192` each.
    pub fn long_jump(&mut self) {
        self.polynomial_jump(&LONG_JUMP);
    }

    fn polynomial_jump(&mut self, poly: &[u64; 4]) {
        let mut acc = [0u64; 4];
        for &word in poly {
            for bit in 0..64 {
                if (word >> bit) & 1 == 1 {
                    for (a, s) in acc.iter_mut().zip(self.s.iter()) {
                        *a ^= s;
                    }
                }
                self.advance();
            }
        }
        self.s = acc;
    }

    #[inline]
    fn advance(&mut self) {
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
    }
}

impl RngCore for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        self.advance();
        result
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Xoshiro256PlusPlus { s }
    }
}
