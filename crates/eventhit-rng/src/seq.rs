//! Slice utilities (mirrors the used subset of `rand::seq`).

use crate::traits::{Rng, RngCore};

/// Random slice operations, implemented for `[T]` (and therefore available
/// on `Vec<T>` via deref).
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Uniform in-place shuffle (Fisher–Yates). Every permutation is
    /// equally likely because the index draws are bias-free.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` for an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}
