//! Statistical sanity checks for the RNG substrate.
//!
//! Every test uses a fixed seed, so these are deterministic regression
//! tests, not flaky Monte-Carlo assertions: the tolerances are chosen
//! with generous margin (roughly 5–10 standard errors at the sample
//! sizes used), so they only fail if the generator or a conversion is
//! actually broken.

use eventhit_rng::normal::standard_normal;
use eventhit_rng::rngs::StdRng;
use eventhit_rng::seq::SliceRandom;
use eventhit_rng::{Rng, SeedableRng};

const N: usize = 100_000;

fn mean_var(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    (mean, var)
}

/// χ² statistic over `k` equiprobable buckets with `counts` observations.
fn chi_square(counts: &[u64], total: u64) -> f64 {
    let expected = total as f64 / counts.len() as f64;
    counts
        .iter()
        .map(|&o| {
            let d = o as f64 - expected;
            d * d / expected
        })
        .sum()
}

#[test]
fn uniform_f64_moments() {
    let mut rng = StdRng::seed_from_u64(1);
    let xs: Vec<f64> = (0..N).map(|_| rng.random::<f64>()).collect();
    assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
    let (mean, var) = mean_var(&xs);
    // Uniform(0,1): mean 1/2 (SE ≈ 0.0009), variance 1/12.
    assert!((mean - 0.5).abs() < 0.005, "mean={mean}");
    assert!((var - 1.0 / 12.0).abs() < 0.002, "var={var}");
}

#[test]
fn uniform_f32_stays_in_unit_interval() {
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..N {
        let x: f32 = rng.random();
        assert!((0.0..1.0).contains(&x), "x={x}");
    }
}

#[test]
fn random_range_int_is_uniform() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut counts = [0u64; 10];
    for _ in 0..N {
        counts[rng.random_range(0usize..10)] += 1;
    }
    // df = 9; χ² > 27.9 has p < 0.001 under uniformity.
    let chi2 = chi_square(&counts, N as u64);
    assert!(chi2 < 27.9, "chi2={chi2} counts={counts:?}");
}

#[test]
fn random_range_small_span_is_unbiased() {
    // Span 3 exercises the Lemire rejection path hardest (largest bias
    // without rejection would still be tiny, but the bucket test catches
    // gross errors in the threshold arithmetic).
    let mut rng = StdRng::seed_from_u64(4);
    let mut counts = [0u64; 3];
    for _ in 0..N {
        counts[rng.random_range(0usize..3)] += 1;
    }
    let chi2 = chi_square(&counts, N as u64);
    // df = 2; χ² > 13.8 has p < 0.001.
    assert!(chi2 < 13.8, "chi2={chi2} counts={counts:?}");
}

#[test]
fn random_range_float_moments_and_bounds() {
    let mut rng = StdRng::seed_from_u64(5);
    let (lo, hi) = (-2.5f64, 7.5f64);
    let xs: Vec<f64> = (0..N).map(|_| rng.random_range(lo..hi)).collect();
    assert!(xs.iter().all(|x| (lo..hi).contains(x)));
    let (mean, var) = mean_var(&xs);
    let span = hi - lo;
    assert!((mean - (lo + hi) / 2.0).abs() < 0.05, "mean={mean}");
    assert!((var - span * span / 12.0).abs() < 0.2, "var={var}");
}

#[test]
fn signed_range_covers_both_sides() {
    let mut rng = StdRng::seed_from_u64(6);
    let (mut neg, mut pos) = (0u64, 0u64);
    for _ in 0..N {
        let v: i64 = rng.random_range(-50i64..=50);
        assert!((-50..=50).contains(&v));
        if v < 0 {
            neg += 1;
        } else if v > 0 {
            pos += 1;
        }
    }
    let ratio = neg as f64 / pos as f64;
    assert!((0.9..1.1).contains(&ratio), "neg={neg} pos={pos}");
}

#[test]
fn box_muller_normal_moments() {
    let mut rng = StdRng::seed_from_u64(7);
    let xs: Vec<f64> = (0..N).map(|_| standard_normal(&mut rng)).collect();
    let (mean, var) = mean_var(&xs);
    // N(0,1): SE(mean) ≈ 0.003, SE(var) ≈ 0.0045.
    assert!(mean.abs() < 0.02, "mean={mean}");
    assert!((var - 1.0).abs() < 0.03, "var={var}");
    // Central mass: P(|X| < 1) = 0.6827.
    let inside = xs.iter().filter(|x| x.abs() < 1.0).count() as f64 / N as f64;
    assert!((inside - 0.6827).abs() < 0.01, "inside={inside}");
    // Tails exist but are thin: P(|X| > 3) ≈ 0.0027.
    let tail = xs.iter().filter(|x| x.abs() > 3.0).count() as f64 / N as f64;
    assert!(tail > 0.0005 && tail < 0.008, "tail={tail}");
}

#[test]
fn box_muller_quantile_buckets() {
    // Bucket draws by the standard normal quartiles; each bucket should
    // hold ~25% of the mass.
    let mut rng = StdRng::seed_from_u64(8);
    let q = [-0.6745, 0.0, 0.6745]; // 25/50/75 % points of N(0,1)
    let mut counts = [0u64; 4];
    for _ in 0..N {
        let x = standard_normal(&mut rng);
        let bucket = q.iter().position(|&b| x < b).unwrap_or(3);
        counts[bucket] += 1;
    }
    let chi2 = chi_square(&counts, N as u64);
    // df = 3; χ² > 16.3 has p < 0.001.
    assert!(chi2 < 16.3, "chi2={chi2} counts={counts:?}");
}

#[test]
fn shuffle_permutations_are_uniform() {
    // All 4! = 24 permutations of a 4-element slice should be equally
    // likely under Fisher–Yates.
    let trials = 120_000u64;
    let mut rng = StdRng::seed_from_u64(9);
    let mut counts = std::collections::HashMap::new();
    for _ in 0..trials {
        let mut xs = [0u8, 1, 2, 3];
        xs.shuffle(&mut rng);
        *counts.entry(xs).or_insert(0u64) += 1;
    }
    assert_eq!(counts.len(), 24, "not all permutations reached");
    let observed: Vec<u64> = counts.values().copied().collect();
    let chi2 = chi_square(&observed, trials);
    // df = 23; χ² > 49.7 has p < 0.001.
    assert!(chi2 < 49.7, "chi2={chi2}");
}

#[test]
fn shuffle_positions_are_uniform() {
    // A fixed element should land in every slot equally often.
    let trials = 50_000u64;
    let mut rng = StdRng::seed_from_u64(10);
    let mut counts = [0u64; 10];
    for _ in 0..trials {
        let mut xs: Vec<u8> = (0..10).collect();
        xs.shuffle(&mut rng);
        let pos = xs.iter().position(|&x| x == 0).unwrap();
        counts[pos] += 1;
    }
    let chi2 = chi_square(&counts, trials);
    assert!(chi2 < 27.9, "chi2={chi2} counts={counts:?}");
}

#[test]
fn random_bool_frequency() {
    let mut rng = StdRng::seed_from_u64(11);
    for p in [0.1, 0.3, 0.5, 0.9] {
        let hits = (0..N).filter(|_| rng.random_bool(p)).count() as f64 / N as f64;
        assert!((hits - p).abs() < 0.01, "p={p} hits={hits}");
    }
}

#[test]
fn bit_balance_of_raw_output() {
    // Each of the 64 output bits should be set about half the time.
    use eventhit_rng::RngCore;
    let mut rng = StdRng::seed_from_u64(12);
    let mut ones = [0u64; 64];
    let draws = 20_000u64;
    for _ in 0..draws {
        let x = rng.next_u64();
        for (b, slot) in ones.iter_mut().enumerate() {
            *slot += (x >> b) & 1;
        }
    }
    for (b, &c) in ones.iter().enumerate() {
        let frac = c as f64 / draws as f64;
        // SE ≈ 0.0035; allow ±5 SE.
        assert!((frac - 0.5).abs() < 0.02, "bit {b}: frac={frac}");
    }
}
