//! Determinism and golden-value tests for the RNG substrate.
//!
//! The workspace's reproducibility story rests on this crate: the same
//! seed must produce bit-identical draws on every platform and every run.
//! These tests pin the generator to the *published* xoshiro256++ test
//! vector and to golden values captured at the time the crate was
//! written, so any accidental change to the state transition, the seeding
//! discipline, or the float conversion fails loudly.

use eventhit_rng::rngs::{StdRng, Xoshiro256PlusPlus};
use eventhit_rng::seq::SliceRandom;
use eventhit_rng::{Rng, RngCore, SeedableRng};

/// The canonical xoshiro256++ test vector: the first ten outputs of the
/// generator initialised with state `[1, 2, 3, 4]`, as published with the
/// reference C implementation (and mirrored by `rand_xoshiro`).
#[test]
fn matches_published_xoshiro256pp_vector() {
    let mut seed = [0u8; 32];
    seed[0] = 1;
    seed[8] = 2;
    seed[16] = 3;
    seed[24] = 4;
    let mut rng = Xoshiro256PlusPlus::from_seed(seed);
    let expected: [u64; 10] = [
        41943041,
        58720359,
        3588806011781223,
        3591011842654386,
        9228616714210784205,
        9973669472204895162,
        14011001112246962877,
        12406186145184390807,
        15849039046786891736,
        10450023813501588000,
    ];
    for (i, want) in expected.iter().enumerate() {
        assert_eq!(rng.next_u64(), *want, "output {i} diverged");
    }
}

/// `seed_from_u64` expands the seed through SplitMix64; these golden
/// values pin that expansion so the seeding discipline cannot silently
/// change (which would alter every experiment in the workspace).
#[test]
fn seed_from_u64_golden_values() {
    let mut rng = StdRng::seed_from_u64(0);
    assert_eq!(
        [
            rng.next_u64(),
            rng.next_u64(),
            rng.next_u64(),
            rng.next_u64()
        ],
        [
            5987356902031041503,
            7051070477665621255,
            6633766593972829180,
            211316841551650330,
        ]
    );
    let mut rng = StdRng::seed_from_u64(42);
    assert_eq!(
        [
            rng.next_u64(),
            rng.next_u64(),
            rng.next_u64(),
            rng.next_u64()
        ],
        [
            15021278609987233951,
            5881210131331364753,
            18149643915985481100,
            12933668939759105464,
        ]
    );
}

/// Float conversion is part of the reproducibility contract: pin the bit
/// patterns of the first `f64` draws.
#[test]
fn f64_draws_are_bit_stable() {
    let mut rng = StdRng::seed_from_u64(7);
    let bits: Vec<u64> = (0..4).map(|_| rng.random::<f64>().to_bits()).collect();
    assert_eq!(
        bits,
        [
            4588139100750830880,
            4595369147474192204,
            4604638570713848459,
            4601367547849786880,
        ]
    );
}

/// Fisher–Yates shuffle golden permutation.
#[test]
fn shuffle_golden_permutation() {
    let mut rng = StdRng::seed_from_u64(42);
    let mut xs: Vec<u32> = (0..10).collect();
    xs.shuffle(&mut rng);
    assert_eq!(xs, [5, 3, 1, 0, 9, 6, 4, 7, 2, 8]);
}

/// Same seed ⇒ bit-identical long sequences; different seeds diverge.
#[test]
fn same_seed_same_sequence() {
    let mut a = StdRng::seed_from_u64(123);
    let mut b = StdRng::seed_from_u64(123);
    for _ in 0..1000 {
        assert_eq!(a.next_u64(), b.next_u64());
    }
    let mut c = StdRng::seed_from_u64(124);
    let first: Vec<u64> = (0..8)
        .map(|_| StdRng::seed_from_u64(123).next_u64())
        .collect();
    let other: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
    assert_ne!(first, other);
}

/// Stream-splitting: `stream(seed, i)` is deterministic and distinct
/// across `i` — this is what makes parallel trial workers reproducible.
#[test]
fn streams_are_deterministic_and_distinct() {
    let mut s0 = StdRng::stream(9, 0);
    let a: Vec<u64> = (0..3).map(|_| s0.next_u64()).collect();
    assert_eq!(
        a,
        [
            18042647766004470083,
            9976776682348904028,
            16194548466566330340,
        ]
    );
    let mut s1 = StdRng::stream(9, 1);
    let b: Vec<u64> = (0..3).map(|_| s1.next_u64()).collect();
    assert_eq!(
        b,
        [
            8975975956173078749,
            1316666585990535663,
            3490460270103327524,
        ]
    );
    // Re-derivation is stable.
    let mut again = StdRng::stream(9, 0);
    assert_eq!(again.next_u64(), 18042647766004470083);
}

/// `split()` derives a child stream deterministically and leaves the
/// parent on a different trajectory than the child.
#[test]
fn split_is_deterministic_and_decorrelated() {
    let mut p1 = StdRng::seed_from_u64(5);
    let mut c1 = p1.split();
    let mut p2 = StdRng::seed_from_u64(5);
    let mut c2 = p2.split();
    for _ in 0..100 {
        assert_eq!(c1.next_u64(), c2.next_u64());
        assert_eq!(p1.next_u64(), p2.next_u64());
    }
    // Child and parent continuations do not collide over a window.
    let mut p = StdRng::seed_from_u64(5);
    let mut c = p.split();
    let parent: Vec<u64> = (0..64).map(|_| p.next_u64()).collect();
    let child: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
    assert!(parent.iter().all(|x| !child.contains(x)));
}

/// `jump()` advances by 2^128 draws: the jumped generator's outputs are
/// disjoint from the original's first draws.
#[test]
fn jump_produces_disjoint_subsequence() {
    let mut base = StdRng::seed_from_u64(11);
    let head: Vec<u64> = (0..256).map(|_| base.next_u64()).collect();
    let mut jumped = StdRng::seed_from_u64(11);
    jumped.jump();
    let tail: Vec<u64> = (0..256).map(|_| jumped.next_u64()).collect();
    assert!(head.iter().all(|x| !tail.contains(x)));
    let mut far = StdRng::seed_from_u64(11);
    far.long_jump();
    let far_tail: Vec<u64> = (0..256).map(|_| far.next_u64()).collect();
    assert!(head.iter().all(|x| !far_tail.contains(x)));
    assert!(tail.iter().all(|x| !far_tail.contains(x)));
}

/// Ranges and Gaussians are reproducible end to end.
#[test]
fn derived_draws_are_reproducible() {
    let draw = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let ints: Vec<i64> = (0..32).map(|_| rng.random_range(-100i64..100)).collect();
        let floats: Vec<u64> = (0..32)
            .map(|_| rng.random_range(0.0f64..3.5).to_bits())
            .collect();
        let normals: Vec<u64> = (0..32)
            .map(|_| eventhit_rng::normal::standard_normal(&mut rng).to_bits())
            .collect();
        (ints, floats, normals)
    };
    assert_eq!(draw(77), draw(77));
    assert_ne!(draw(77), draw(78));
}
