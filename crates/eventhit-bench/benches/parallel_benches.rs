//! Scaling benchmarks for the parallel execution layer: dense matmul,
//! batched inference, and multi-stream marshalling at 1/2/4/8 workers.
//!
//! Unlike the criterion-style targets, this harness times regions with
//! raw [`Instant`] so it can report *speedups* relative to the 1-worker
//! baseline and the per-task scheduling overhead, and it writes the
//! whole table to `results/parallel_benches.json` alongside the machine
//! core count — a 1-core box will honestly report speedup ≈ 1.

use std::time::Instant;

use eventhit_core::experiment::{ExperimentConfig, TaskRun};
use eventhit_core::infer::score_records_with;
use eventhit_core::multi::{run_lanes, StreamLane};
use eventhit_core::pipeline::Strategy;
use eventhit_core::streaming::OnlinePredictor;
use eventhit_core::tasks::task;
use eventhit_core::train::TrainConfig;
use eventhit_nn::matrix::Matrix;
use eventhit_parallel::{with_workers, Pool};
use eventhit_rng::rngs::StdRng;
use eventhit_rng::{Rng, SeedableRng};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Median wall-clock seconds of `reps` runs of `f`.
fn time_median<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

struct Scaling {
    name: String,
    /// Number of pool tasks one run submits (for overhead accounting).
    tasks: usize,
    /// `(workers, median_seconds)` per worker count.
    times: Vec<(usize, f64)>,
}

impl Scaling {
    fn speedup(&self, workers: usize) -> f64 {
        let base = self.times[0].1;
        let t = self
            .times
            .iter()
            .find(|&&(w, _)| w == workers)
            .map(|&(_, t)| t)
            .unwrap_or(base);
        base / t.max(1e-12)
    }

    /// Scheduling overhead per task: the extra wall-clock of the
    /// 2-worker run over the 1-worker run, amortized over tasks. On a
    /// single-core machine this is the full cost of the pool machinery.
    fn per_task_overhead_seconds(&self) -> f64 {
        let base = self.times[0].1;
        let two = self.times.get(1).map(|&(_, t)| t).unwrap_or(base);
        ((two - base) / self.tasks.max(1) as f64).max(0.0)
    }

    fn to_json(&self) -> String {
        let times: Vec<String> = self
            .times
            .iter()
            .map(|&(w, t)| {
                format!(
                    "{{\"workers\":{w},\"seconds\":{t:.9},\"speedup\":{:.4}}}",
                    self.speedup(w)
                )
            })
            .collect();
        format!(
            "{{\"name\":\"{}\",\"tasks\":{},\"per_task_overhead_seconds\":{:.9},\"runs\":[{}]}}",
            self.name,
            self.tasks,
            self.per_task_overhead_seconds(),
            times.join(",")
        )
    }

    fn print(&self) {
        for &(w, t) in &self.times {
            println!(
                "{:<40} workers={w} time: {:>10.3} ms  speedup: {:.2}x",
                self.name,
                t * 1e3,
                self.speedup(w)
            );
        }
        println!(
            "{:<40} per-task overhead: {:.2} µs",
            self.name,
            self.per_task_overhead_seconds() * 1e6
        );
    }
}

fn random_matrix(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| rng.random_range(-1.0..1.0))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn bench_matmul() -> Scaling {
    let mut rng = StdRng::seed_from_u64(7);
    // Large enough to clear PAR_THRESHOLD (2^20 mul-adds).
    let a = random_matrix(192, 96, &mut rng);
    let b = random_matrix(96, 128, &mut rng);
    let times = WORKER_COUNTS
        .iter()
        .map(|&w| (w, time_median(9, || with_workers(w, || a.matmul(&b)))))
        .collect();
    Scaling {
        name: "matmul_192x96x128".into(),
        // default_chunk → workers*4 row blocks per product.
        tasks: 16,
        times,
    }
}

fn quick_run() -> TaskRun {
    let cfg = ExperimentConfig {
        scale: 0.1,
        train: TrainConfig {
            epochs: 2,
            ..Default::default()
        },
        ..ExperimentConfig::quick(9)
    };
    TaskRun::execute(&task("TA10").unwrap(), &cfg)
}

fn bench_batched_inference(run: &TaskRun) -> Scaling {
    let records = &run.test_records;
    let batch = 16usize;
    let tasks = records.len().div_ceil(batch);
    let times = WORKER_COUNTS
        .iter()
        .map(|&w| {
            let pool = Pool::new(w);
            (
                w,
                time_median(7, || score_records_with(&run.model, records, batch, &pool)),
            )
        })
        .collect();
    Scaling {
        name: format!("score_records_{}rec_batch{batch}", records.len()),
        tasks,
        times,
    }
}

fn bench_multi_stream(run: &TaskRun) -> Scaling {
    let lanes = || -> Vec<StreamLane> {
        (0..4usize)
            .map(|stream_id| StreamLane {
                stream_id,
                predictor: OnlinePredictor::new(
                    run.model.clone(),
                    run.state.clone(),
                    Strategy::Ehcr { c: 0.9, alpha: 0.5 },
                ),
                features: run.features.clone(),
                from: run.window + stream_id * 16,
            })
            .collect()
    };
    let times = WORKER_COUNTS
        .iter()
        .map(|&w| {
            let pool = Pool::new(w);
            (w, time_median(5, || run_lanes(lanes(), &pool)))
        })
        .collect();
    Scaling {
        name: "run_lanes_4streams".into(),
        tasks: 4,
        times,
    }
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("parallel scaling benchmarks ({cores} cores available)\n");

    let run = quick_run();
    let results = [
        bench_matmul(),
        bench_batched_inference(&run),
        bench_multi_stream(&run),
    ];
    for r in &results {
        r.print();
        println!();
    }

    let body: Vec<String> = results.iter().map(Scaling::to_json).collect();
    let json = format!(
        "{{\"cores\":{cores},\"worker_counts\":[1,2,4,8],\"benchmarks\":[{}]}}\n",
        body.join(",")
    );
    // Anchor at the workspace root (two levels above this crate) so the
    // JSON lands next to the committed results/*.tsv tables regardless
    // of where cargo was invoked.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let path = root.join("results").join("parallel_benches.json");
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
