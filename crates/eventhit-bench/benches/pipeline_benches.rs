//! End-to-end pipeline benchmarks: EventHit inference throughput (the
//! quantity behind the paper's FPS accounting, §VI.H), conformal state
//! fitting, and strategy evaluation sweeps.

use eventhit_rng::bench::Criterion;
use eventhit_rng::{bench_group, bench_main};
use std::hint::black_box;

use eventhit_core::experiment::{ExperimentConfig, TaskRun};
use eventhit_core::infer::score_records;
use eventhit_core::pipeline::{ConformalState, Strategy};
use eventhit_core::tasks::task;
use eventhit_core::train::TrainConfig;

fn quick_run() -> TaskRun {
    let cfg = ExperimentConfig {
        scale: 0.1,
        train: TrainConfig {
            epochs: 2,
            ..Default::default()
        },
        ..ExperimentConfig::quick(9)
    };
    TaskRun::execute(&task("TA10").unwrap(), &cfg)
}

fn bench_inference(c: &mut Criterion) {
    let run = quick_run();
    let records = run.test_records.clone();
    let mut group = c.benchmark_group("eventhit_inference");
    group.sample_size(20);
    group.throughput(eventhit_rng::bench::Throughput::Elements(
        records.len() as u64
    ));
    group.bench_function("score_records_batch128", |b| {
        b.iter(|| black_box(score_records(&run.model, &records, 128)))
    });
    group.finish();
}

fn bench_conformal_state(c: &mut Criterion) {
    let run = quick_run();
    let mut group = c.benchmark_group("conformal_state");
    group.sample_size(20);
    group.bench_function("fit", |b| {
        b.iter(|| black_box(ConformalState::fit(&run.calib, 1, 0.5, run.horizon)))
    });
    group.finish();
}

fn bench_strategy_sweep(c: &mut Criterion) {
    let run = quick_run();
    let mut group = c.benchmark_group("strategy_evaluation");
    group.sample_size(20);
    group.bench_function("eho", |b| {
        b.iter(|| black_box(run.evaluate(&Strategy::Eho { tau1: 0.5 })))
    });
    group.bench_function("ehcr", |b| {
        b.iter(|| black_box(run.evaluate(&Strategy::Ehcr { c: 0.9, alpha: 0.9 })))
    });
    group.finish();
}

bench_group!(
    benches,
    bench_inference,
    bench_conformal_state,
    bench_strategy_sweep
);
bench_main!(benches);
