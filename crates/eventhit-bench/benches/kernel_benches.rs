//! Single-core kernel benchmarks: end-to-end inference frames/sec on the
//! naive reference kernels, the blocked/unrolled exact lane, and the int8
//! quantized fast lane.
//!
//! Everything runs on a 1-worker pool so the numbers are *per core* —
//! the parallel layer's scaling is `parallel_benches`' job. Two workloads
//! are measured, the same two the serving stack runs hot:
//!
//! * `score_records` — minibatched scoring of the held-out test split;
//! * `run_lanes` — two multi-stream marshalling lanes drained end to end.
//!
//! The naive baseline routes the *same* pooled entry points through the
//! retained reference loops via `set_naive_kernels(true)`, so the only
//! difference measured is the kernel inner loop. Results are written to
//! `BENCH_kernels.json` at the workspace root.
//!
//! Flags (after `--`): `--smoke` cuts repetitions for CI; with
//! `--enforce-floor` the process exits non-zero if the quantized lane is
//! slower than the exact lane (a sanity floor, deliberately far below
//! the ~2x speedups a healthy build shows over naive).

use std::time::Instant;

use eventhit_core::experiment::{ExperimentConfig, TaskRun};
use eventhit_core::infer::{score_records_lane_with, score_records_with};
use eventhit_core::multi::{run_lanes, StreamLane};
use eventhit_core::pipeline::Strategy;
use eventhit_core::streaming::OnlinePredictor;
use eventhit_core::tasks::task;
use eventhit_core::train::TrainConfig;
use eventhit_core::InferenceLane;
use eventhit_nn::matrix::set_naive_kernels;
use eventhit_parallel::Pool;

/// Median wall-clock seconds of `reps` runs of `f`.
fn time_median<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Frames/sec per core for one workload on all three kernel paths.
struct LaneRates {
    name: String,
    frames: usize,
    naive: f64,
    exact: f64,
    quantized: f64,
}

impl LaneRates {
    fn exact_speedup(&self) -> f64 {
        self.exact / self.naive.max(1e-12)
    }

    fn quantized_speedup(&self) -> f64 {
        self.quantized / self.naive.max(1e-12)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"frames\":{},\"frames_per_sec_per_core\":{{\
             \"naive\":{:.1},\"exact\":{:.1},\"quantized\":{:.1}}},\
             \"speedup_exact_vs_naive\":{:.3},\"speedup_quantized_vs_naive\":{:.3}}}",
            self.name,
            self.frames,
            self.naive,
            self.exact,
            self.quantized,
            self.exact_speedup(),
            self.quantized_speedup(),
        )
    }

    fn print(&self) {
        println!(
            "{:<24} naive {:>9.0} f/s | exact {:>9.0} f/s ({:.2}x) | quantized {:>9.0} f/s ({:.2}x)",
            self.name,
            self.naive,
            self.exact,
            self.exact_speedup(),
            self.quantized,
            self.quantized_speedup(),
        );
    }
}

/// A model sized so the gate/product kernels dominate the forward pass
/// (MAC count grows with `hidden²` while the activation/overhead cost
/// grows with `hidden`), trained for a single epoch — the bench measures
/// inference.
fn bench_run() -> TaskRun {
    let cfg = ExperimentConfig {
        scale: 0.1,
        hidden_dim: 384,
        shared_dim: 192,
        // A decision-dense serving load: one anchor every 8 frames keeps
        // run_lanes in the scoring kernels instead of ring-buffer pushes.
        override_horizon: Some(8),
        train: TrainConfig {
            epochs: 1,
            ..Default::default()
        },
        ..ExperimentConfig::quick(9)
    };
    TaskRun::execute(&task("TA10").unwrap(), &cfg)
}

fn bench_score_records(run: &TaskRun, reps: usize) -> LaneRates {
    let records = &run.test_records;
    let batch = 16usize;
    let pool = Pool::new(1);

    set_naive_kernels(true);
    let t_naive = time_median(reps, || {
        score_records_with(&run.model, records, batch, &pool)
    });
    set_naive_kernels(false);
    let t_exact = time_median(reps, || {
        score_records_with(&run.model, records, batch, &pool)
    });
    let t_quant = time_median(reps, || {
        score_records_lane_with(&run.model, records, batch, InferenceLane::Quantized, &pool)
    });

    let frames = records.len();
    LaneRates {
        name: format!("score_records_{frames}rec"),
        frames,
        naive: frames as f64 / t_naive.max(1e-12),
        exact: frames as f64 / t_exact.max(1e-12),
        quantized: frames as f64 / t_quant.max(1e-12),
    }
}

fn bench_run_lanes(run: &TaskRun, reps: usize) -> LaneRates {
    let strategy = Strategy::Ehcr { c: 0.9, alpha: 0.5 };
    let quant_state = run.state_for_lane(InferenceLane::Quantized);
    let rows = run.features.rows();
    let from = run.window;
    let frames = 2 * (rows - from);
    let pool = Pool::new(1);

    let lanes_for = |lane: InferenceLane| -> Vec<StreamLane> {
        (0..2usize)
            .map(|stream_id| StreamLane {
                stream_id,
                predictor: match lane {
                    InferenceLane::Exact => {
                        OnlinePredictor::new(run.model.clone(), run.state.clone(), strategy)
                    }
                    InferenceLane::Quantized => OnlinePredictor::with_lane(
                        run.model.clone(),
                        quant_state.clone(),
                        strategy,
                        lane,
                    ),
                },
                features: run.features.clone(),
                from,
            })
            .collect()
    };

    set_naive_kernels(true);
    let t_naive = time_median(reps, || run_lanes(lanes_for(InferenceLane::Exact), &pool));
    set_naive_kernels(false);
    let t_exact = time_median(reps, || run_lanes(lanes_for(InferenceLane::Exact), &pool));
    let t_quant = time_median(reps, || {
        run_lanes(lanes_for(InferenceLane::Quantized), &pool)
    });

    LaneRates {
        name: "run_lanes_2streams".into(),
        frames,
        naive: frames as f64 / t_naive.max(1e-12),
        exact: frames as f64 / t_exact.max(1e-12),
        quantized: frames as f64 / t_quant.max(1e-12),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let enforce_floor = args.iter().any(|a| a == "--enforce-floor");
    let reps = if smoke { 3 } else { 9 };

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "single-core kernel benchmarks ({cores} cores available, {} mode)\n",
        if smoke { "smoke" } else { "full" }
    );

    let run = bench_run();
    let results = [bench_score_records(&run, reps), bench_run_lanes(&run, reps)];
    for r in &results {
        r.print();
    }

    let body: Vec<String> = results.iter().map(LaneRates::to_json).collect();
    let json = format!(
        "{{\"cores\":{cores},\"smoke\":{smoke},\"workers\":1,\"benchmarks\":[{}]}}\n",
        body.join(",")
    );
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let path = root.join("BENCH_kernels.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
    }

    if enforce_floor {
        for r in &results {
            if r.quantized < r.exact {
                eprintln!(
                    "FLOOR VIOLATION: {} quantized lane ({:.0} f/s) slower than exact ({:.0} f/s)",
                    r.name, r.quantized, r.exact
                );
                std::process::exit(1);
            }
        }
        println!("floor ok: quantized lane at least as fast as exact on every workload");
    }
}
