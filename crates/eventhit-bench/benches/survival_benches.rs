//! Micro-benchmarks of the survival substrate: Cox fitting (the COX
//! baseline's training cost) and survival-curve queries (its per-record
//! inference cost).

use eventhit_rng::bench::{BenchmarkId, Criterion};
use eventhit_rng::{bench_group, bench_main};
use std::hint::black_box;

use eventhit_rng::rngs::StdRng;
use eventhit_rng::{Rng, SeedableRng};
use eventhit_survival::cox::{CoxConfig, CoxModel, Subject};
use eventhit_survival::km::KaplanMeier;

fn subjects(n: usize, d: usize, seed: u64) -> Vec<Subject> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x: Vec<f64> = (0..d).map(|_| rng.random_range(-1.0..1.0)).collect();
            let rate = (0.8 * x[0]).exp();
            let u: f64 = 1.0 - rng.random::<f64>();
            Subject {
                x,
                time: -u.ln() / rate,
                observed: rng.random::<f64>() < 0.7,
            }
        })
        .collect()
}

fn bench_cox_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("cox_fit");
    group.sample_size(10);
    for &(n, d) in &[(200usize, 4usize), (1_000, 8), (2_000, 16)] {
        let subs = subjects(n, d, 0);
        group.bench_with_input(
            BenchmarkId::new("newton", format!("n{n}_d{d}")),
            &n,
            |b, _| b.iter(|| black_box(CoxModel::fit(&subs, &CoxConfig::default()).unwrap())),
        );
    }
    group.finish();
}

fn bench_survival_curve(c: &mut Criterion) {
    let subs = subjects(1_000, 8, 1);
    let model = CoxModel::fit(&subs, &CoxConfig::default()).unwrap();
    let x: Vec<f64> = (0..8).map(|i| 0.1 * i as f64).collect();
    let times: Vec<f64> = (1..=500).map(|t| t as f64 / 100.0).collect();
    c.bench_function("cox_survival_curve_500pts", |b| {
        b.iter(|| black_box(model.survival_curve(&x, &times)))
    });
}

fn bench_kaplan_meier(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let obs: Vec<(f64, bool)> = (0..5_000)
        .map(|_| (rng.random_range(0.0..100.0), rng.random::<f64>() < 0.6))
        .collect();
    c.bench_function("kaplan_meier_fit_5000", |b| {
        b.iter(|| black_box(KaplanMeier::fit(&obs)))
    });
}

bench_group!(
    benches,
    bench_cox_fit,
    bench_survival_curve,
    bench_kaplan_meier
);
bench_main!(benches);
