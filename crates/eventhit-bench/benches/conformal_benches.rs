//! Micro-benchmarks of the conformal machinery: calibration fitting,
//! p-value queries, and interval adjustment. These run once per record at
//! deployment time, so their cost bounds the marshaller's overhead.

use eventhit_rng::bench::{BenchmarkId, Criterion};
use eventhit_rng::{bench_group, bench_main};
use std::hint::black_box;

use eventhit_conformal::classify::ConformalClassifier;
use eventhit_conformal::nonconformity::Nonconformity;
use eventhit_conformal::regress::{ConformalRegressor, IntervalCalibration};
use eventhit_rng::rngs::StdRng;
use eventhit_rng::{Rng, SeedableRng};

fn scores(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random::<f64>()).collect()
}

fn bench_classifier(c: &mut Criterion) {
    let mut group = c.benchmark_group("conformal_classifier");
    for &n in &[100usize, 1_000, 10_000] {
        let calib = scores(n, 0);
        group.bench_with_input(BenchmarkId::new("fit", n), &n, |b, _| {
            b.iter(|| {
                black_box(ConformalClassifier::fit(
                    &calib,
                    Nonconformity::OneMinusScore,
                ))
            })
        });
        let cc = ConformalClassifier::fit(&calib, Nonconformity::OneMinusScore);
        group.bench_with_input(BenchmarkId::new("p_value", n), &n, |b, _| {
            b.iter(|| black_box(cc.p_value(0.42)))
        });
    }
    group.finish();
}

fn bench_regressor(c: &mut Criterion) {
    let mut group = c.benchmark_group("conformal_regressor");
    for &n in &[100usize, 1_000, 10_000] {
        let residuals = scores(n, 1)
            .into_iter()
            .map(|x| x * 50.0)
            .collect::<Vec<_>>();
        group.bench_with_input(BenchmarkId::new("fit", n), &n, |b, _| {
            b.iter(|| black_box(ConformalRegressor::fit(residuals.clone())))
        });
        let reg = ConformalRegressor::fit(residuals.clone());
        group.bench_with_input(BenchmarkId::new("quantile", n), &n, |b, _| {
            b.iter(|| black_box(reg.quantile(0.9)))
        });
    }
    group.finish();
}

fn bench_interval_adjust(c: &mut Criterion) {
    let cal = IntervalCalibration::fit(scores(1_000, 2), scores(1_000, 3));
    c.bench_function("interval_adjust", |b| {
        b.iter(|| black_box(cal.adjust(black_box(120), black_box(180), 500, 0.9)))
    });
}

bench_group!(
    benches,
    bench_classifier,
    bench_regressor,
    bench_interval_adjust
);
bench_main!(benches);
