//! Telemetry overhead benchmarks: the online predictor's `push_frame`
//! hot path with no recorder, a disabled recorder, and a live wall-clock
//! recorder (the numbers quoted in DESIGN.md §8), plus micro-benchmarks
//! of the raw recorder operations.

use eventhit_rng::bench::Criterion;
use eventhit_rng::{bench_group, bench_main};
use std::hint::black_box;
use std::sync::Arc;

use eventhit_core::experiment::{ExperimentConfig, TaskRun};
use eventhit_core::pipeline::Strategy;
use eventhit_core::streaming::OnlinePredictor;
use eventhit_core::tasks::task;
use eventhit_core::train::TrainConfig;
use eventhit_telemetry::Telemetry;

fn quick_run() -> TaskRun {
    let cfg = ExperimentConfig {
        scale: 0.1,
        train: TrainConfig {
            epochs: 2,
            ..Default::default()
        },
        ..ExperimentConfig::quick(9)
    };
    TaskRun::execute(&task("TA10").unwrap(), &cfg)
}

fn predictor(run: TaskRun) -> OnlinePredictor {
    OnlinePredictor::new(run.model, run.state, Strategy::Ehcr { c: 0.9, alpha: 0.9 })
}

const FRAMES_PER_ITER: usize = 256;

/// Pushes `FRAMES_PER_ITER` frames through the predictor, cycling over
/// the run's feature rows.
fn drive(p: &mut OnlinePredictor, features: &eventhit_nn::matrix::Matrix) -> usize {
    let mut decisions = 0;
    for i in 0..FRAMES_PER_ITER {
        let r = i % features.rows();
        if p.push_frame(features.row(r).to_vec()).is_some() {
            decisions += 1;
        }
    }
    decisions
}

fn bench_push_frame_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(20);
    group.throughput(eventhit_rng::bench::Throughput::Elements(
        FRAMES_PER_ITER as u64,
    ));

    // Baseline: no recorder attached — the hot path's natural cost.
    let run = quick_run();
    let features = run.features.clone();
    let mut plain = predictor(run);
    group.bench_function("push_frame_no_telemetry", |b| {
        b.iter(|| black_box(drive(&mut plain, &features)))
    });

    // Disabled recorder: every record call is a single enabled-flag check.
    let run = quick_run();
    let features = run.features.clone();
    let mut off = predictor(run);
    off.set_telemetry(Arc::new(Telemetry::disabled()));
    group.bench_function("push_frame_disabled_recorder", |b| {
        b.iter(|| black_box(drive(&mut off, &features)))
    });

    // Live wall-clock recorder: mutex + BTreeMap counter bumps per frame,
    // histogram observe + gauge per decision.
    let run = quick_run();
    let features = run.features.clone();
    let mut on = predictor(run);
    on.set_telemetry(Arc::new(Telemetry::new()));
    group.bench_function("push_frame_live_recorder", |b| {
        b.iter(|| black_box(drive(&mut on, &features)))
    });

    group.finish();
}

fn bench_recorder_ops(c: &mut Criterion) {
    let tel = Telemetry::new();
    let mut group = c.benchmark_group("telemetry_ops");
    group.sample_size(50);
    group.bench_function("counter_add", |b| {
        b.iter(|| tel.add(black_box("bench.counter"), black_box(1)))
    });
    group.bench_function("hist_observe", |b| {
        b.iter(|| tel.observe(black_box("bench.hist"), black_box(0.0125)))
    });
    // Fresh recorder per iteration so the trace never hits the span cap
    // (a capped recorder hands out inert guards, which would understate
    // the cost); 1024 spans amortise the recorder's construction.
    group.bench_function("span_open_close_x1024", |b| {
        b.iter(|| {
            let t = Telemetry::new();
            for _ in 0..1024 {
                black_box(t.span("bench.span"));
            }
        })
    });
    group.finish();
}

bench_group!(benches, bench_push_frame_overhead, bench_recorder_ops);
bench_main!(benches);
