//! Micro-benchmarks of the neural substrate: the matrix kernels and the
//! LSTM/Dense forward/backward passes that dominate EventHit's training and
//! inference time (§VI.H: EventHit inference is ~0.1% of pipeline time; we
//! measure the real number here).

use eventhit_rng::bench::{BenchmarkId, Criterion};
use eventhit_rng::{bench_group, bench_main};
use std::hint::black_box;

use eventhit_nn::activation::Activation;
use eventhit_nn::dense::Dense;
use eventhit_nn::init::Init;
use eventhit_nn::lstm::Lstm;
use eventhit_nn::matrix::Matrix;
use eventhit_rng::rngs::StdRng;
use eventhit_rng::SeedableRng;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[16usize, 64, 128] {
        let mut rng = StdRng::seed_from_u64(0);
        let a = Matrix::uniform(n, n, -1.0, 1.0, &mut rng);
        let b = Matrix::uniform(n, n, -1.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("square", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b)))
        });
        group.bench_with_input(BenchmarkId::new("a_t_times_b", n), &n, |bench, _| {
            bench.iter(|| black_box(a.t_matmul(&b)))
        });
        group.bench_with_input(BenchmarkId::new("a_times_b_t", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul_t(&b)))
        });
    }
    group.finish();
}

fn bench_lstm(c: &mut Criterion) {
    // The EventHit encoder shape: batch 64, window 25, D=9, hidden 48.
    let mut rng = StdRng::seed_from_u64(1);
    let mut lstm = Lstm::new(9, 48, &mut rng);
    let xs: Vec<Matrix> = (0..25)
        .map(|_| Matrix::uniform(64, 9, -1.0, 1.0, &mut rng))
        .collect();

    c.bench_function("lstm_forward_b64_t25_h48", |b| {
        b.iter(|| black_box(lstm.forward_inference(&xs)))
    });
    c.bench_function("lstm_forward_backward_b64_t25_h48", |b| {
        b.iter(|| {
            lstm.zero_grad();
            let h = lstm.forward(&xs);
            black_box(lstm.backward_last(&h));
        })
    });
}

fn bench_gru(c: &mut Criterion) {
    use eventhit_nn::gru::Gru;
    let mut rng = StdRng::seed_from_u64(3);
    let mut gru = Gru::new(9, 48, &mut rng);
    let xs: Vec<Matrix> = (0..25)
        .map(|_| Matrix::uniform(64, 9, -1.0, 1.0, &mut rng))
        .collect();
    c.bench_function("gru_forward_b64_t25_h48", |b| {
        b.iter(|| black_box(gru.forward_inference(&xs)))
    });
    c.bench_function("gru_forward_backward_b64_t25_h48", |b| {
        b.iter(|| {
            gru.zero_grad();
            let h = gru.forward(&xs);
            black_box(gru.backward_last(&h));
        })
    });
}

fn bench_dense_head(c: &mut Criterion) {
    // The event head shape: (32 + 9) -> (1 + 500) with sigmoid.
    let mut rng = StdRng::seed_from_u64(2);
    let mut head = Dense::new(41, 501, Activation::Sigmoid, Init::XavierUniform, &mut rng);
    let x = Matrix::uniform(64, 41, -1.0, 1.0, &mut rng);
    c.bench_function("event_head_forward_b64_h500", |b| {
        b.iter(|| black_box(head.forward_inference(&x)))
    });
    c.bench_function("event_head_forward_backward_b64_h500", |b| {
        b.iter(|| {
            head.zero_grad();
            let y = head.forward(&x);
            black_box(head.backward(&y));
        })
    });
}

bench_group!(
    benches,
    bench_matmul,
    bench_lstm,
    bench_gru,
    bench_dense_head
);
bench_main!(benches);
