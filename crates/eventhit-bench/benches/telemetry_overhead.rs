//! Telemetry overhead smoke bench: per-frame cost of the online
//! predictor's hot path with (a) no recorder, (b) a disabled recorder,
//! and (c) a live wall-clock recorder with a trace id attached to every
//! batch — the exact shape the traced serving path (`SubmitTraced`)
//! runs. Results are written to `BENCH_telemetry.json` at the workspace
//! root.
//!
//! This is the CI-gated companion to `telemetry_benches` (which uses the
//! Criterion-style harness for local exploration): a plain `main` so the
//! job can enforce a ceiling and exit non-zero.
//!
//! Flags (after `--`): `--smoke` cuts repetitions for CI; with
//! `--enforce-ceiling` the process exits non-zero if the live-traced
//! path costs more than [`CEILING`]× the plain path per frame. The
//! ceiling is deliberately loose — shared CI runners are noisy and the
//! absolute overhead is tens of nanoseconds against a ~hundreds-of-ns
//! frame — so only a pathological regression (a lock in the disabled
//! path, an allocation per frame) trips it.

use std::sync::Arc;
use std::time::Instant;

use eventhit_core::experiment::{ExperimentConfig, TaskRun};
use eventhit_core::pipeline::Strategy;
use eventhit_core::streaming::OnlinePredictor;
use eventhit_core::tasks::task;
use eventhit_core::train::TrainConfig;
use eventhit_telemetry::Telemetry;

/// Live-traced per-frame cost must stay under this multiple of plain.
const CEILING: f64 = 8.0;

/// Frames pushed per timed repetition.
const FRAMES_PER_REP: usize = 4096;

/// Frames per simulated batch between trace-id changes (the serving
/// path re-stamps the lane's trace id once per `SubmitTraced` batch).
const BATCH: usize = 97;

/// Median wall-clock seconds of `reps` runs of `f`.
fn time_median<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn quick_run() -> TaskRun {
    let cfg = ExperimentConfig {
        scale: 0.1,
        train: TrainConfig {
            epochs: 2,
            ..Default::default()
        },
        ..ExperimentConfig::quick(9)
    };
    TaskRun::execute(&task("TA10").unwrap(), &cfg)
}

fn predictor(run: &TaskRun) -> OnlinePredictor {
    OnlinePredictor::new(
        run.model.clone(),
        run.state.clone(),
        Strategy::Ehcr { c: 0.9, alpha: 0.9 },
    )
}

/// Pushes [`FRAMES_PER_REP`] frames, cycling the run's feature rows and
/// (when `traced`) re-stamping a fresh trace id every [`BATCH`] frames.
fn drive(p: &mut OnlinePredictor, run: &TaskRun, traced: bool) -> usize {
    let features = &run.features;
    let mut decisions = 0;
    for i in 0..FRAMES_PER_REP {
        if traced && i % BATCH == 0 {
            p.set_trace(Some((i / BATCH) as u64 + 1));
        }
        let r = i % features.rows();
        if p.push_frame(features.row(r).to_vec()).is_some() {
            decisions += 1;
        }
    }
    p.set_trace(None);
    decisions
}

/// One configuration's measured per-frame cost.
struct Lane {
    name: &'static str,
    ns_per_frame: f64,
}

impl Lane {
    fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"ns_per_frame\":{:.1}}}",
            self.name, self.ns_per_frame
        )
    }
}

fn measure(name: &'static str, run: &TaskRun, reps: usize, tel: Option<Telemetry>) -> Lane {
    let mut p = predictor(run);
    let traced = tel.as_ref().is_some_and(Telemetry::is_enabled);
    if let Some(t) = tel {
        p.set_telemetry(Arc::new(t));
    }
    let secs = time_median(reps, || drive(&mut p, run, traced));
    Lane {
        name,
        ns_per_frame: secs * 1e9 / FRAMES_PER_REP as f64,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let enforce = args.iter().any(|a| a == "--enforce-ceiling");
    let reps = if smoke { 5 } else { 15 };

    println!(
        "telemetry overhead ({} mode, {FRAMES_PER_REP} frames/rep, median of {reps})\n",
        if smoke { "smoke" } else { "full" }
    );

    let run = quick_run();
    let results = [
        measure("plain", &run, reps, None),
        measure("disabled_recorder", &run, reps, Some(Telemetry::disabled())),
        measure("live_traced", &run, reps, Some(Telemetry::new())),
    ];
    let plain = results[0].ns_per_frame.max(1e-3);
    for r in &results {
        println!(
            "{:<20} {:>8.1} ns/frame ({:.2}x plain)",
            r.name,
            r.ns_per_frame,
            r.ns_per_frame / plain
        );
    }
    let ratio = results[2].ns_per_frame / plain;

    let body: Vec<String> = results.iter().map(Lane::to_json).collect();
    let json = format!(
        "{{\"smoke\":{smoke},\"frames_per_rep\":{FRAMES_PER_REP},\
         \"live_traced_over_plain\":{ratio:.3},\"ceiling\":{CEILING},\
         \"benchmarks\":[{}]}}\n",
        body.join(",")
    );
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let path = root.join("BENCH_telemetry.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
    }

    if enforce {
        if ratio > CEILING {
            eprintln!(
                "CEILING VIOLATION: live_traced costs {ratio:.2}x plain per frame (ceiling {CEILING}x)"
            );
            std::process::exit(1);
        }
        println!("ceiling ok: live_traced at {ratio:.2}x plain (ceiling {CEILING}x)");
    }
}
