//! Micro-benchmarks of the video substrate: stream planting, simulated
//! feature extraction throughput (frames/second of the generator — not the
//! modeled detector), and record slicing.

use eventhit_rng::bench::Criterion;
use eventhit_rng::{bench_group, bench_main};
use std::hint::black_box;

use eventhit_video::dataset::{Dataset, SplitSpec};
use eventhit_video::features::{extract, FeatureConfig};
use eventhit_video::records::extract_record;
use eventhit_video::stream::VideoStream;
use eventhit_video::synthetic;

fn bench_stream_generation(c: &mut Criterion) {
    let profile = synthetic::virat().scaled(0.1);
    c.bench_function("stream_generate_virat_60k", |b| {
        b.iter(|| black_box(VideoStream::generate(&profile, 1)))
    });
}

fn bench_feature_extraction(c: &mut Criterion) {
    let profile = synthetic::thumos().scaled(0.1);
    let stream = VideoStream::generate(&profile, 2);
    let cfg = FeatureConfig::default();
    let mut group = c.benchmark_group("feature_extraction");
    group.sample_size(20);
    group.bench_function("thumos_24k_frames", |b| {
        b.iter(|| black_box(extract(&stream, &cfg, 3)))
    });
    group.finish();
}

fn bench_record_extraction(c: &mut Criterion) {
    let profile = synthetic::thumos().scaled(0.1);
    let stream = VideoStream::generate(&profile, 4);
    let features = extract(&stream, &FeatureConfig::default(), 5);
    c.bench_function("extract_record_m10_h200", |b| {
        b.iter(|| black_box(extract_record(&stream, &features, 5_000, 10, 200)))
    });
    let mut group = c.benchmark_group("dataset_build");
    group.sample_size(10);
    group.bench_function("thumos_24k_stride50", |b| {
        b.iter(|| {
            black_box(Dataset::build(
                &stream,
                &features,
                10,
                200,
                &SplitSpec::default(),
            ))
        })
    });
    group.finish();
}

bench_group!(
    benches,
    bench_stream_generation,
    bench_feature_extraction,
    bench_record_extraction
);
bench_main!(benches);
