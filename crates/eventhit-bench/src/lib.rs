//! # eventhit-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation section (see DESIGN.md §4 for the index), plus
//! micro-benchmarks built on `eventhit_rng::bench`. This library holds
//! the shared plumbing: CLI parsing,
//! TSV output, multi-trial averaging, and operating-point search.

use eventhit_core::experiment::{grids, ExperimentConfig, TaskRun};
use eventhit_core::metrics::EvalOutcome;
use eventhit_core::pipeline::Strategy;
use eventhit_core::tasks::{task, Task};

/// Command-line arguments shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct CommonArgs {
    /// Dataset scale factor (`--scale`, default 0.35).
    pub scale: f64,
    /// Master seed (`--seed`, default 1).
    pub seed: u64,
    /// Number of independent trials to average (`--trials`, default 2;
    /// the paper uses 10).
    pub trials: usize,
    /// Restrict to one task (`--task TA5`).
    pub task: Option<String>,
    /// Quick mode (`--quick`): tiny streams and models, for smoke runs.
    pub quick: bool,
}

impl Default for CommonArgs {
    fn default() -> Self {
        CommonArgs {
            scale: 0.35,
            seed: 1,
            trials: 2,
            task: None,
            quick: false,
        }
    }
}

impl CommonArgs {
    /// Parses `std::env::args()`; unknown flags abort with a usage message.
    pub fn parse() -> CommonArgs {
        let mut args = CommonArgs::default();
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--scale" => args.scale = expect_value(&mut it, "--scale"),
                "--seed" => args.seed = expect_value(&mut it, "--seed"),
                "--trials" => args.trials = expect_value(&mut it, "--trials"),
                "--task" => {
                    args.task = Some(it.next().unwrap_or_else(|| usage("--task needs a value")))
                }
                "--quick" => args.quick = true,
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        args
    }

    /// The experiment configuration for trial `trial`.
    pub fn config(&self, trial: usize) -> ExperimentConfig {
        let seed = self.seed.wrapping_add(trial as u64 * 1000);
        if self.quick {
            ExperimentConfig::quick(seed)
        } else {
            ExperimentConfig {
                scale: self.scale,
                seed,
                ..Default::default()
            }
        }
    }

    /// Tasks to run: the one named by `--task`, or all of `default`.
    pub fn tasks_or(&self, default: &[&str]) -> Vec<Task> {
        match &self.task {
            Some(id) => vec![task(id).unwrap_or_else(|| usage(&format!("unknown task {id}")))],
            None => default
                .iter()
                .map(|id| task(id).expect("built-in task id"))
                .collect(),
        }
    }
}

fn expect_value<T: std::str::FromStr>(it: &mut impl Iterator<Item = String>, flag: &str) -> T {
    it.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a numeric value")))
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: <experiment> [--scale F] [--seed N] [--trials N] [--task TAi] [--quick]");
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

/// An averaged evaluation outcome across trials.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeanOutcome {
    /// Mean end-to-end recall.
    pub rec: f64,
    /// Mean spillage.
    pub spl: f64,
    /// Mean existence recall.
    pub rec_c: f64,
    /// Mean interval recall.
    pub rec_r: f64,
    /// Mean frames relayed.
    pub frames_relayed: f64,
    /// Number of trials averaged.
    pub trials: usize,
}

/// Averages outcomes across trials.
pub fn mean_outcome(outcomes: &[EvalOutcome]) -> MeanOutcome {
    let n = outcomes.len().max(1) as f64;
    MeanOutcome {
        rec: outcomes.iter().map(|o| o.rec).sum::<f64>() / n,
        spl: outcomes.iter().map(|o| o.spl).sum::<f64>() / n,
        rec_c: outcomes.iter().map(|o| o.rec_c).sum::<f64>() / n,
        rec_r: outcomes.iter().map(|o| o.rec_r).sum::<f64>() / n,
        frames_relayed: outcomes
            .iter()
            .map(|o| o.frames_relayed as f64)
            .sum::<f64>()
            / n,
        trials: outcomes.len(),
    }
}

/// Executes all trials of a task, in parallel when multiple trials are
/// requested.
pub fn run_trials(task: &Task, args: &CommonArgs) -> Vec<TaskRun> {
    if args.trials <= 1 {
        return vec![TaskRun::execute(task, &args.config(0))];
    }
    let mut runs: Vec<Option<TaskRun>> = (0..args.trials).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (trial, slot) in runs.iter_mut().enumerate() {
            let cfg = args.config(trial);
            scope.spawn(move || {
                *slot = Some(TaskRun::execute(task, &cfg));
            });
        }
    });
    runs.into_iter()
        .map(|r| r.expect("trial completed"))
        .collect()
}

/// Evaluates one strategy across trials and averages.
pub fn evaluate_trials(runs: &[TaskRun], strategy: &Strategy) -> MeanOutcome {
    let outcomes: Vec<EvalOutcome> = runs.iter().map(|r| r.evaluate(strategy)).collect();
    mean_outcome(&outcomes)
}

/// Finds the EHCR operating point with the smallest mean spillage whose
/// mean recall reaches `target` — the "SPL at REC ≥ x" quantity of Fig. 7
/// and the FPS/expense comparisons.
pub fn ehcr_at_target_rec(runs: &[TaskRun], target: f64) -> Option<(Strategy, MeanOutcome)> {
    grids::ehcr()
        .into_iter()
        .map(|s| (s, evaluate_trials(runs, &s)))
        .filter(|(_, o)| o.rec >= target)
        .min_by(|a, b| a.1.spl.total_cmp(&b.1.spl))
}

/// Prints a TSV header line prefixed with `#`.
pub fn tsv_header(cols: &[&str]) {
    println!("#{}", cols.join("\t"));
}

/// Formats a float with 4 decimals for TSV cells.
pub fn f(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventhit_core::metrics::EvalOutcome;

    fn outcome(rec: f64, spl: f64) -> EvalOutcome {
        EvalOutcome {
            rec,
            spl,
            rec_c: rec,
            rec_r: rec,
            frames_relayed: 100,
            true_frames: 50,
            positives: 10,
            records: 20,
        }
    }

    #[test]
    fn mean_outcome_averages() {
        let m = mean_outcome(&[outcome(0.4, 0.1), outcome(0.6, 0.3)]);
        assert!((m.rec - 0.5).abs() < 1e-12);
        assert!((m.spl - 0.2).abs() < 1e-12);
        assert_eq!(m.trials, 2);
    }

    #[test]
    fn mean_outcome_empty_is_zero() {
        let m = mean_outcome(&[]);
        assert_eq!(m.rec, 0.0);
        assert_eq!(m.trials, 0);
    }

    #[test]
    fn default_args() {
        let a = CommonArgs::default();
        assert_eq!(a.trials, 2);
        assert!(a.task.is_none());
        let cfg = a.config(1);
        assert_eq!(cfg.seed, 1001);
    }

    #[test]
    fn quick_config_is_small() {
        let a = CommonArgs {
            quick: true,
            ..Default::default()
        };
        let cfg = a.config(0);
        assert!(cfg.scale < 0.2);
    }

    #[test]
    fn tasks_or_resolves_names() {
        let a = CommonArgs::default();
        let ts = a.tasks_or(&["TA1", "TA10"]);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[1].id, "TA10");
        let b = CommonArgs {
            task: Some("TA5".into()),
            ..Default::default()
        };
        assert_eq!(b.tasks_or(&["TA1"])[0].id, "TA5");
    }
}
