//! Table I — events of interest with occurrence counts and duration
//! statistics, for the paper's targets and our planted streams.
//!
//! ```text
//! cargo run --release -p eventhit-bench --bin table1 [--scale F] [--seed N]
//! ```

use eventhit_bench::{f, tsv_header, CommonArgs};
use eventhit_video::stream::VideoStream;
use eventhit_video::synthetic::all_profiles;

fn main() {
    let args = CommonArgs::parse();
    println!("# Table I: events of interest (paper targets vs planted streams)");
    println!("# scale={} seed={}", args.scale, args.seed);
    tsv_header(&[
        "dataset",
        "event",
        "name",
        "occ_paper",
        "occ_planted",
        "dur_avg_paper",
        "dur_avg_planted",
        "dur_std_paper",
        "dur_std_planted",
    ]);

    for profile in all_profiles() {
        let scaled = profile.scaled(args.scale);
        let stream = VideoStream::generate(&scaled, args.seed);
        for (k, class) in scaled.classes.iter().enumerate() {
            let (mean, std) = stream.duration_stats(k);
            println!(
                "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                profile.name,
                class.paper_id,
                class.name,
                class.occurrences,
                stream.count_of(k),
                f(class.duration_mean),
                f(mean),
                f(class.duration_std),
                f(std),
            );
        }
    }
    println!("# Note: occurrence targets are scaled by --scale; duration statistics");
    println!("# (mean/std) are scale-invariant and should match Table I closely.");
}
