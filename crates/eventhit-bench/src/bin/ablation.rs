//! Ablation studies for the design decisions called out in DESIGN.md §12:
//!
//! 1. **L1-only vs L1+L2 training** — dropping the per-frame occurrence
//!    loss (γ = 0) should leave existence prediction roughly intact but
//!    destroy interval estimation (REC_r collapses).
//! 2. **Shared encoder vs per-event models** — EventHit's shared LSTM +
//!    per-event heads vs one full network per event, on the same records:
//!    accuracy should be comparable while the shared model uses fewer
//!    parameters and less training time.
//! 3. **Calibration-set size** — conformal guarantees need surprisingly
//!    few positives; quantify how REC_c at c = 0.9 degrades as the
//!    calibration split shrinks.
//! 4. **Non-conformity measure** — Theorem 4.1 holds for any measure, and
//!    monotone measures give *identical* predictions; verified on real
//!    calibration scores.
//!
//! ```text
//! cargo run --release -p eventhit-bench --bin ablation [--scale F] [--seed N]
//! ```

use std::time::Instant;

use eventhit_bench::{f, CommonArgs};
use eventhit_conformal::classify::ConformalClassifier;
use eventhit_conformal::nonconformity::Nonconformity;
use eventhit_core::experiment::{ExperimentConfig, TaskRun};
use eventhit_core::infer::score_records;
use eventhit_core::metrics::evaluate;
use eventhit_core::model::{EventHit, EventHitConfig};
use eventhit_core::pipeline::{ConformalState, Strategy};
use eventhit_core::tasks::task;
use eventhit_core::train::{train, TrainConfig};
use eventhit_video::records::Record;

fn main() {
    let args = CommonArgs::parse();
    println!("# Ablation studies (DESIGN.md §12)");
    println!("# scale={} seed={}", args.scale, args.seed);

    ablation_l2_loss(&args);
    ablation_shared_encoder(&args);
    ablation_calibration_size(&args);
    ablation_nonconformity(&args);
    ablation_encoder_kind(&args);
}

/// 5. LSTM vs GRU encoder under the same budget.
fn ablation_encoder_kind(args: &CommonArgs) {
    use eventhit_core::model::EncoderKind;
    println!("\n## 5. Recurrent encoder choice (TA10)");
    println!("#encoder\tREC\tSPL\tREC_c\tparams");
    let t = task("TA10").unwrap();
    for (name, kind) in [("LSTM", EncoderKind::Lstm), ("GRU", EncoderKind::Gru)] {
        let mut cfg = args.config(0);
        cfg.encoder = kind;
        let run = TaskRun::execute(&t, &cfg);
        let o = run.evaluate(&Strategy::Eho { tau1: 0.5 });
        println!(
            "{name}\t{}\t{}\t{}\t{}",
            f(o.rec),
            f(o.spl),
            f(o.rec_c),
            run.model.param_count()
        );
    }
    println!("# expectation: comparable accuracy; GRU uses ~25% fewer encoder params");
}

/// 1. Train with and without the occurrence loss L2.
fn ablation_l2_loss(args: &CommonArgs) {
    println!("\n## 1. L1-only vs L1+L2 training (TA10)");
    println!("#variant\tREC\tSPL\tREC_c\tREC_r");
    let t = task("TA10").unwrap();
    for (name, gamma) in [("L1+L2", 1.0f32), ("L1-only", 0.0)] {
        let mut cfg = args.config(0);
        cfg.train.gamma = vec![gamma];
        let run = TaskRun::execute(&t, &cfg);
        let o = run.evaluate(&Strategy::Eho { tau1: 0.5 });
        println!(
            "{name}\t{}\t{}\t{}\t{}",
            f(o.rec),
            f(o.spl),
            f(o.rec_c),
            f(o.rec_r)
        );
    }
    println!("# expectation: REC_c similar (L1 drives existence); without L2 the");
    println!("# theta head is untrained, so intervals degenerate to wide spans and");
    println!("# SPL is several times higher for the same recall");
}

/// 2. Shared encoder (EventHit, K=2) vs two independent networks on the
///    same TA7 records.
fn ablation_shared_encoder(args: &CommonArgs) {
    println!("\n## 2. Shared encoder vs per-event networks (TA7)");
    let t = task("TA7").unwrap();
    let cfg = args.config(0);

    // Shared model: the normal pipeline.
    let t0 = Instant::now();
    let shared = TaskRun::execute(&t, &cfg);
    let shared_time = t0.elapsed().as_secs_f64();
    let shared_params = shared.model.param_count();
    let shared_out = shared.evaluate(&Strategy::Ehcr { c: 0.9, alpha: 0.6 });

    // Independent models: one K=1 network per event, trained on the same
    // records with labels restricted to that event.
    let restrict = |records: &[Record], k: usize| -> Vec<Record> {
        records
            .iter()
            .map(|r| Record {
                anchor: r.anchor,
                covariates: r.covariates.clone(),
                labels: vec![r.labels[k]],
            })
            .collect()
    };
    let t0 = Instant::now();
    let mut per_event_params = 0usize;
    let mut merged_preds: Vec<Vec<eventhit_core::infer::IntervalPrediction>> =
        vec![Vec::new(); shared.test.len()];
    for k in 0..t.num_events() {
        let train_k = restrict(&shared.train_records, k);
        let calib_k = restrict(&shared.calib_records, k);
        let test_k = restrict(&shared.test_records, k);
        let model_cfg = EventHitConfig {
            input_dim: shared.model.config().input_dim,
            window: shared.window,
            horizon: shared.horizon,
            num_events: 1,
            hidden_dim: cfg.hidden_dim,
            shared_dim: cfg.shared_dim,
            dropout: cfg.dropout,
        };
        let mut model = EventHit::new(model_cfg, cfg.seed.wrapping_add(900 + k as u64));
        let mut tc: TrainConfig = cfg.train.clone();
        tc.seed = cfg.seed.wrapping_add(950 + k as u64);
        train(&mut model, &train_k, &tc);
        per_event_params += model.param_count();
        let calib_scored = score_records(&model, &calib_k, 128);
        let test_scored = score_records(&model, &test_k, 128);
        let state = ConformalState::fit(&calib_scored, 1, 0.5, shared.horizon);
        for (i, rec) in test_scored.iter().enumerate() {
            merged_preds[i].push(state.predict(rec, &Strategy::Ehcr { c: 0.9, alpha: 0.6 })[0]);
        }
    }
    let split_time = t0.elapsed().as_secs_f64();
    let split_out = evaluate(&merged_preds, &shared.test, shared.horizon as u32);

    println!("#variant\tREC\tSPL\tparams\ttrain_seconds");
    println!(
        "shared\t{}\t{}\t{}\t{}",
        f(shared_out.rec),
        f(shared_out.spl),
        shared_params,
        f(shared_time)
    );
    println!(
        "per-event\t{}\t{}\t{}\t{}",
        f(split_out.rec),
        f(split_out.spl),
        per_event_params,
        f(split_time)
    );
    println!("# expectation: comparable accuracy; the shared encoder uses fewer\n# parameters and roughly half the training time");
}

/// 3. Conformal calibration-set size sensitivity.
fn ablation_calibration_size(args: &CommonArgs) {
    println!("\n## 3. Calibration-set size (TA10, EHC at c = 0.9)");
    println!("#calib_fraction\tpositives\tREC_c\tSPL");
    let t = task("TA10").unwrap();
    let run = TaskRun::execute(&t, &args.config(0));
    for frac in [1.0f64, 0.5, 0.25, 0.1, 0.05] {
        let n = ((run.calib.len() as f64) * frac).ceil() as usize;
        let subset = &run.calib[..n.min(run.calib.len())];
        let state = ConformalState::fit(subset, 1, 0.5, run.horizon);
        let preds: Vec<_> = run
            .test
            .iter()
            .map(|r| state.predict(r, &Strategy::Ehc { c: 0.9 }))
            .collect();
        let o = evaluate(&preds, &run.test, run.horizon as u32);
        println!(
            "{frac}\t{}\t{}\t{}",
            state.calibration_sizes()[0],
            f(o.rec_c),
            f(o.spl)
        );
    }
    println!("# expectation: REC_c stays near/above c until positives get very scarce");
}

/// 4. Non-conformity measures produce identical decisions.
fn ablation_nonconformity(args: &CommonArgs) {
    println!("\n## 4. Non-conformity measure equivalence (TA10)");
    let t = task("TA10").unwrap();
    let cfg: ExperimentConfig = args.config(0);
    let run = TaskRun::execute(&t, &cfg);
    let positives: Vec<f64> = run
        .calib
        .iter()
        .filter(|r| r.labels[0].present)
        .map(|r| r.scores[0].b)
        .collect();
    let measures = [
        ("1-b", Nonconformity::OneMinusScore),
        ("-ln(b)", Nonconformity::NegLogScore),
        ("margin", Nonconformity::Margin),
    ];
    let classifiers: Vec<(&str, ConformalClassifier)> = measures
        .iter()
        .map(|&(n, m)| (n, ConformalClassifier::fit(&positives, m)))
        .collect();
    let mut disagreements = 0usize;
    let mut total = 0usize;
    for rec in &run.test {
        let decisions: Vec<bool> = classifiers
            .iter()
            .map(|(_, cc)| cc.predict(rec.scores[0].b, 0.9))
            .collect();
        total += 1;
        if decisions.iter().any(|&d| d != decisions[0]) {
            disagreements += 1;
        }
    }
    println!("#measures\ttest_records\tdisagreements");
    println!(
        "{}\t{total}\t{disagreements}",
        measures
            .iter()
            .map(|&(n, _)| n)
            .collect::<Vec<_>>()
            .join(",")
    );
    println!("# expectation: 0 disagreements (footnote 5: monotone measures are equivalent)");
}
