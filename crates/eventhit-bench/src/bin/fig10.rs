//! Figure 10 — proportion of wall-clock time per pipeline stage (feature
//! extraction / EventHit / CI) for EHCR on TA10 at REC ≈ 0.9.
//!
//! ```text
//! cargo run --release -p eventhit-bench --bin fig10 [--scale F] [--trials N]
//! ```
//!
//! Expected shape (paper: CI 95.9%, feature extraction 4.0%, EventHit
//! 0.1%): CI time dominates, which is exactly why reducing CI invocations
//! is worthwhile.

use eventhit_bench::{ehcr_at_target_rec, f, run_trials, CommonArgs};
use eventhit_core::ci::CiConfig;

fn main() {
    let args = CommonArgs::parse();
    let ci = CiConfig::default();
    println!("# Figure 10: time proportion per stage, EHCR on TA10 at REC>=0.9");
    println!(
        "# scale={} seed={} trials={}",
        args.scale, args.seed, args.trials
    );

    let task = args.tasks_or(&["TA10"]).remove(0);
    let runs = run_trials(&task, &args);

    let Some((strategy, outcome)) = ehcr_at_target_rec(&runs, 0.9) else {
        println!("# EHCR could not reach REC 0.9 at this scale; rerun with a larger --scale");
        return;
    };

    let n = runs[0].test.len();
    let predictor = runs
        .iter()
        .map(|r| r.predictor_seconds_per_record)
        .sum::<f64>()
        / runs.len() as f64
        * n as f64;
    let report = ci.account(
        n,
        runs[0].window,
        runs[0].horizon,
        outcome.frames_relayed.round() as u64,
        predictor,
    );
    let (fe, pr, cif) = report.stage_fractions();

    println!(
        "# operating point: {strategy:?}, achieved REC={}",
        f(outcome.rec)
    );
    println!("#stage\tseconds\tfraction\tpaper_fraction");
    println!(
        "feature_extraction\t{}\t{}\t0.040",
        f(report.feature_seconds),
        f(fe)
    );
    println!(
        "eventhit\t{}\t{}\t0.001",
        f(report.predictor_seconds),
        f(pr)
    );
    println!("ci\t{}\t{}\t0.959", f(report.ci_seconds), f(cif));
}
