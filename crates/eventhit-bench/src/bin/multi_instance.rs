//! Footnote-1 experiment: single-interval (Eq. 6) vs multi-instance
//! prediction on horizons that contain several occurrences.
//!
//! The paper's main text assumes at most one instance per horizon and
//! takes the min/max span of the θ threshold crossings; footnote 1 notes
//! the framework extends to multiple instances. This experiment quantifies
//! the difference on the Breakfast profile (dense, short-cycle actions —
//! the dataset where multi-occurrence horizons actually happen): for
//! multi-occurrence horizons, the single span bridges the gap between
//! instances and pays spillage; θ-run splitting does not.
//!
//! ```text
//! cargo run --release -p eventhit-bench --bin multi_instance [--scale F]
//! ```

use eventhit_bench::{f, tsv_header, CommonArgs};
use eventhit_core::experiment::TaskRun;
use eventhit_core::multi::{evaluate_multi, multi_horizon_label, multi_predict, MultiLabel};

fn main() {
    let args = CommonArgs::parse();
    println!("# Footnote-1 extension: single-span (Eq. 6) vs multi-instance prediction");
    println!("# scale={} seed={}", args.scale, args.seed);
    tsv_header(&[
        "task",
        "mode",
        "horizons",
        "multi_occurrence_horizons",
        "REC",
        "SPL",
        "instance_recall",
        "frames_relayed",
    ]);

    for task in args.tasks_or(&["TA13", "TA14"]) {
        // Densify the stream (3x Table I occurrence rate) so horizons with
        // several instances actually occur.
        let mut cfg = args.config(0);
        cfg.occurrence_boost = 3.0;
        let run = TaskRun::execute(&task, &cfg);
        let h = run.horizon as u32;

        // Multi-instance ground truth for every test horizon.
        let labels: Vec<MultiLabel> = run
            .test
            .iter()
            .map(|r| multi_horizon_label(&run.stream, 0, r.anchor, run.horizon))
            .collect();
        let multi_occ = labels.iter().filter(|l| l.intervals.len() > 1).count();

        // Mode A: Eq. 6 single span (merge_gap = H collapses runs into one).
        // Mode B: θ-run splitting with a small flicker-merging gap.
        // Each with and without C-REGRESS widening: wide bands can re-merge
        // adjacent runs, hiding the splitting benefit.
        for (mode, merge_gap, widen) in [
            ("single-span", h, true),
            ("multi-instance", 10u32, true),
            ("single-span-raw", h, false),
            ("multi-instance-raw", 10u32, false),
        ] {
            let cal = widen.then(|| (run.state.interval_calibration(0), 0.5));
            let preds: Vec<Vec<(u32, u32)>> = run
                .test
                .iter()
                .map(|r| multi_predict(&r.scores[0], 0.5, 0.5, merge_gap, cal, h))
                .collect();
            let o = evaluate_multi(&preds, &labels, h);
            println!(
                "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                task.id,
                mode,
                labels.len(),
                multi_occ,
                f(o.rec),
                f(o.spl),
                f(o.instance_recall),
                o.frames_relayed
            );
        }
    }
    println!("# expectation: multi-instance mode relays fewer frames (lower SPL) at");
    println!("# comparable recall when horizons contain several occurrences");
}
