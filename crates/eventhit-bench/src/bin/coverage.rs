//! Empirical validation of the conformal guarantees (Theorems 4.2 and 5.2)
//! on the actual EventHit pipeline: the test split plays the role of the
//! exchangeable new data.
//!
//! * Theorem 4.2: among records whose horizon truly contains the event, the
//!   fraction *not* flagged by C-CLASSIFY at confidence `c` must be ≤ 1-c
//!   (up to exchangeability violations from the temporal split and
//!   finite-sample noise).
//! * Theorem 5.2: among true positives, the true start (end) offset must
//!   fall within ±q̂ of the raw estimate with probability ≥ α.
//!
//! ```text
//! cargo run --release -p eventhit-bench --bin coverage [--task TA10] [--scale F]
//! ```

use eventhit_bench::{f, run_trials, tsv_header, CommonArgs};
use eventhit_core::infer::raw_interval;

fn main() {
    let args = CommonArgs::parse();
    println!("# Conformal coverage: empirical vs nominal (Theorems 4.2 / 5.2)");
    println!(
        "# scale={} seed={} trials={}",
        args.scale, args.seed, args.trials
    );
    tsv_header(&["task", "guarantee", "level", "nominal_bound", "empirical"]);

    for task in args.tasks_or(&["TA1", "TA10", "TA13"]) {
        let runs = run_trials(&task, &args);
        for run in &runs {
            // Theorem 4.2 — miss rate of C-CLASSIFY at confidence c.
            for &c in &[0.5, 0.7, 0.9, 0.95] {
                let mut misses = 0usize;
                let mut positives = 0usize;
                for rec in &run.test {
                    for k in 0..run.task.num_events() {
                        if !rec.labels[k].present {
                            continue;
                        }
                        positives += 1;
                        if !run.state.classifier(k).predict(rec.scores[k].b, c) {
                            misses += 1;
                        }
                    }
                }
                if positives > 0 {
                    println!(
                        "{}\tmiss_rate(c)\t{c}\t{}\t{}",
                        task.id,
                        f(1.0 - c),
                        f(misses as f64 / positives as f64)
                    );
                }
            }

            // Theorem 5.2 — start/end coverage of the ±q̂ band at level α.
            for &alpha in &[0.5, 0.8, 0.9] {
                let mut start_cov = 0usize;
                let mut end_cov = 0usize;
                let mut positives = 0usize;
                for rec in &run.test {
                    for k in 0..run.task.num_events() {
                        let label = &rec.labels[k];
                        if !label.present {
                            continue;
                        }
                        positives += 1;
                        let (s_hat, e_hat) = raw_interval(&rec.scores[k], 0.5);
                        let (qs, qe) = run.state.interval_calibration(k).quantiles(alpha);
                        if (label.start as f64 - s_hat as f64).abs() <= qs {
                            start_cov += 1;
                        }
                        if (label.end as f64 - e_hat as f64).abs() <= qe {
                            end_cov += 1;
                        }
                    }
                }
                if positives > 0 {
                    println!(
                        "{}\tstart_coverage(alpha)\t{alpha}\t{}\t{}",
                        task.id,
                        f(alpha),
                        f(start_cov as f64 / positives as f64)
                    );
                    println!(
                        "{}\tend_coverage(alpha)\t{alpha}\t{}\t{}",
                        task.id,
                        f(alpha),
                        f(end_cov as f64 / positives as f64)
                    );
                }
            }
        }
    }
    println!("# miss_rate should be <= the nominal bound; coverages should be >= alpha");
    println!("# (both up to finite-sample noise and the temporal-split");
    println!("# exchangeability approximation).");
}
