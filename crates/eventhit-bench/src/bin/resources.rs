//! §VI.H details of resource utilization: training time, parameter count,
//! memory footprint, and per-record inference latency of EventHit.
//!
//! The paper reports: training < 1 hour at batch 128, ≈150 MB of GPU
//! memory for training and inference. Our model is CPU-resident and much
//! smaller (synthetic features are low-dimensional), so the absolute
//! numbers are far lower; the point reproduced is that the predictor is
//! *lightweight* relative to the CI models it gates.
//!
//! ```text
//! cargo run --release -p eventhit-bench --bin resources [--scale F] [--task TAi]
//! ```

use std::time::Instant;

use eventhit_bench::{f, CommonArgs};
use eventhit_core::experiment::TaskRun;
use eventhit_core::infer::score_records;

fn main() {
    let args = CommonArgs::parse();
    println!("# Resource utilization (paper §VI.H)");
    println!("# scale={} seed={}", args.scale, args.seed);
    println!("#task\tparams\tparam_mb\ttrain_s\ttrain_records\tinfer_us_per_record\tthroughput_rec_per_s");

    for task in args.tasks_or(&["TA1", "TA10", "TA13"]) {
        let cfg = args.config(0);
        let t0 = Instant::now();
        let run = TaskRun::execute(&task, &cfg);
        let train_seconds = t0.elapsed().as_secs_f64();

        let params = run.model.param_count();
        // Values + gradients + Adam moments, f32 each.
        let param_mb = (params * 4 * 4) as f64 / (1024.0 * 1024.0);

        // Measured inference latency over the test split.
        let records = run.test_records.clone();
        let t0 = Instant::now();
        let _ = score_records(&run.model, &records, 128);
        let secs = t0.elapsed().as_secs_f64();
        let per_record_us = secs / records.len().max(1) as f64 * 1e6;

        println!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}",
            task.id,
            params,
            f(param_mb),
            f(train_seconds),
            run.train_records.len(),
            f(per_record_us),
            f(records.len() as f64 / secs.max(1e-12)),
        );
    }
    println!("# paper: training < 1 h (batch 128), ~150 MB GPU for train+inference;");
    println!("# ours is CPU-only and far smaller — the predictor stays lightweight.");
}
