//! Figure 9 — REC versus end-to-end FPS for EHCR, COX and VQS on TA10 and
//! TA11.
//!
//! FPS accounting (DESIGN.md §3.3): per prediction episode, EHCR and COX
//! extract features for the `M`-frame collection window (YOLOv3-class,
//! simulated throughput) and send their predicted frames to the CI
//! (I3D-class, simulated); EventHit's own inference time is *measured*.
//! VQS must scan every frame of every horizon with its specialized model
//! before deciding, then relays whole horizons.
//!
//! ```text
//! cargo run --release -p eventhit-bench --bin fig9 [--scale F] [--trials N]
//! ```
//!
//! Expected shape: EHCR dominates the REC–FPS trade-off; at REC = 0.9 it
//! sustains >100 FPS on TA11 while COX and VQS stay below ~40–50.

use eventhit_baselines::cox_baseline::{self, CoxBaseline};
use eventhit_baselines::vqs;
use eventhit_bench::{f, mean_outcome, run_trials, tsv_header, CommonArgs, MeanOutcome};
use eventhit_core::ci::CiConfig;
use eventhit_core::experiment::{grids, TaskRun};

fn fps_of(runs: &[TaskRun], ci: &CiConfig, o: &MeanOutcome, window: usize) -> f64 {
    let n = runs[0].test.len();
    let predictor = runs
        .iter()
        .map(|r| r.predictor_seconds_per_record)
        .sum::<f64>()
        / runs.len() as f64
        * n as f64;
    ci.account(
        n,
        window,
        runs[0].horizon,
        o.frames_relayed.round() as u64,
        predictor,
    )
    .fps()
}

fn main() {
    let args = CommonArgs::parse();
    let ci = CiConfig::default();
    println!("# Figure 9: REC vs FPS for EHCR, COX, VQS");
    println!(
        "# scale={} seed={} trials={}",
        args.scale, args.seed, args.trials
    );
    println!(
        "# stage model: feature extraction {} fps, CI {} fps, EventHit measured",
        ci.feature_extraction.fps, ci.ci.fps
    );
    tsv_header(&["task", "algorithm", "knob", "REC", "FPS"]);

    for task in args.tasks_or(&["TA10", "TA11"]) {
        let runs = run_trials(&task, &args);
        let window = runs[0].window;
        let horizon = runs[0].horizon;

        for s in grids::ehcr() {
            let o = eventhit_bench::evaluate_trials(&runs, &s);
            if let eventhit_core::pipeline::Strategy::Ehcr { c, alpha } = s {
                println!(
                    "{}\tEHCR\tc={c},alpha={alpha}\t{}\t{}",
                    task.id,
                    f(o.rec),
                    f(fps_of(&runs, &ci, &o, window))
                );
            }
        }

        let cox_models: Vec<CoxBaseline> = runs.iter().map(CoxBaseline::from_run).collect();
        for tau in cox_baseline::default_taus() {
            let outs: Vec<_> = cox_models
                .iter()
                .zip(&runs)
                .map(|(m, r)| m.evaluate_at(r, tau))
                .collect();
            let o = mean_outcome(&outs);
            println!(
                "{}\tCOX\ttau={tau}\t{}\t{}",
                task.id,
                f(o.rec),
                f(fps_of(&runs, &ci, &o, window))
            );
        }

        for tau in vqs::default_taus(horizon) {
            let outs: Vec<_> = runs.iter().map(|r| vqs::evaluate_at(r, tau)).collect();
            let o = mean_outcome(&outs);
            // VQS scans the whole horizon with its model: window = horizon.
            println!(
                "{}\tVQS\ttau={tau}\t{}\t{}",
                task.id,
                f(o.rec),
                f(fps_of(&runs, &ci, &o, horizon))
            );
        }
    }
}
