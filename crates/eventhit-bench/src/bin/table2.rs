//! Table II — the sixteen prediction tasks and their events of interest.
//!
//! ```text
//! cargo run --release -p eventhit-bench --bin table2
//! ```

use eventhit_bench::tsv_header;
use eventhit_core::tasks::all_tasks;

fn main() {
    println!("# Table II: tasks");
    tsv_header(&["task", "dataset", "events", "M", "H"]);
    for t in all_tasks() {
        let p = t.profile();
        println!(
            "{}\t{:?}\t{}\t{}\t{}",
            t.id,
            t.dataset,
            t.events.join(","),
            p.collection_window,
            p.horizon
        );
    }
}
