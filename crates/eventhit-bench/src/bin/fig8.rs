//! Figure 8 — case study on monetary cost: REC versus expense (USD, at
//! Amazon Rekognition's $0.001/frame) on TA1 for EHCR, COX, OPT, and BF.
//!
//! ```text
//! cargo run --release -p eventhit-bench --bin fig8 [--scale F] [--trials N]
//! ```
//!
//! Expected shape: EHCR reaches ≈100% REC at well under one fifth of BF's
//! expense and far cheaper than COX at the same REC; OPT is the expense
//! floor.

use eventhit_baselines::cox_baseline::{self, CoxBaseline};
use eventhit_bench::{f, mean_outcome, run_trials, tsv_header, CommonArgs};
use eventhit_core::ci::CiConfig;
use eventhit_core::experiment::grids;

fn main() {
    let args = CommonArgs::parse();
    let ci = CiConfig::default();
    println!(
        "# Figure 8: REC vs expense (USD) on TA1, price ${}/frame",
        ci.price_per_frame
    );
    println!(
        "# scale={} seed={} trials={}",
        args.scale, args.seed, args.trials
    );
    tsv_header(&["algorithm", "knob", "REC", "expense_usd", "frames_relayed"]);

    let task = args.tasks_or(&["TA1"]).remove(0);
    let runs = run_trials(&task, &args);
    let price = ci.price_per_frame;

    let opt = mean_outcome(&runs.iter().map(|r| r.oracle_outcome()).collect::<Vec<_>>());
    println!(
        "OPT\t-\t{}\t{}\t{}",
        f(opt.rec),
        f(opt.frames_relayed * price),
        f(opt.frames_relayed)
    );

    let bf = mean_outcome(
        &runs
            .iter()
            .map(|r| r.brute_force_outcome())
            .collect::<Vec<_>>(),
    );
    println!(
        "BF\t-\t{}\t{}\t{}",
        f(bf.rec),
        f(bf.frames_relayed * price),
        f(bf.frames_relayed)
    );

    for s in grids::ehcr() {
        let o = eventhit_bench::evaluate_trials(&runs, &s);
        if let eventhit_core::pipeline::Strategy::Ehcr { c, alpha } = s {
            println!(
                "EHCR\tc={c},alpha={alpha}\t{}\t{}\t{}",
                f(o.rec),
                f(o.frames_relayed * price),
                f(o.frames_relayed)
            );
        }
    }

    let cox_models: Vec<CoxBaseline> = runs.iter().map(CoxBaseline::from_run).collect();
    for tau in cox_baseline::default_taus() {
        let outs: Vec<_> = cox_models
            .iter()
            .zip(&runs)
            .map(|(m, r)| m.evaluate_at(r, tau))
            .collect();
        let o = mean_outcome(&outs);
        println!(
            "COX\ttau={tau}\t{}\t{}\t{}",
            f(o.rec),
            f(o.frames_relayed * price),
            f(o.frames_relayed)
        );
    }

    println!("# BF expense is the budget ceiling; the paper reports EHCR reaching ~100% REC");
    println!("# at <1/5 of BF's expense on TA1.");
}
