//! Figure 4 — REC–SPL curves of all compared algorithms on tasks
//! TA1–TA16.
//!
//! For each task, prints the operating points of: OPT, BF (single points);
//! EHO (single point at τ1 = τ2 = 0.5); EHC (sweeping c); EHR (sweeping α);
//! EHCR (sweeping c and α); COX (sweeping τ_cox); VQS (sweeping τ_vqs);
//! and, on Breakfast tasks only, APP-VAE with windows 200 and 1500.
//!
//! ```text
//! cargo run --release -p eventhit-bench --bin fig4 [--task TA5] [--scale F] [--trials N]
//! ```
//!
//! Expected shape (paper §VI.D): EHO beats COX/VQS; EHCR reaches any REC
//! at the lowest SPL and its curve dominates; Group-2 event tasks (TA5,
//! TA6, TA14…) need more SPL for the same REC than Group-1 tasks; tasks
//! with more events are harder than their single-event components.

use eventhit_baselines::appvae::AppVae;
use eventhit_baselines::cox_baseline::{self, CoxBaseline};
use eventhit_baselines::vqs;
use eventhit_bench::{evaluate_trials, f, mean_outcome, run_trials, tsv_header, CommonArgs};
use eventhit_core::experiment::grids;
use eventhit_core::pipeline::Strategy;
use eventhit_core::tasks::DatasetKind;

const ALL_TASKS: [&str; 16] = [
    "TA1", "TA2", "TA3", "TA4", "TA5", "TA6", "TA7", "TA8", "TA9", "TA10", "TA11", "TA12", "TA13",
    "TA14", "TA15", "TA16",
];

fn main() {
    let args = CommonArgs::parse();
    println!("# Figure 4: REC-SPL curves for all algorithms");
    println!(
        "# scale={} seed={} trials={}",
        args.scale, args.seed, args.trials
    );
    tsv_header(&["task", "algorithm", "knob", "REC", "SPL", "REC_c", "REC_r"]);

    for task in args.tasks_or(&ALL_TASKS) {
        let runs = run_trials(&task, &args);
        let emit = |alg: &str, knob: String, o: eventhit_bench::MeanOutcome| {
            println!(
                "{}\t{}\t{}\t{}\t{}\t{}\t{}",
                task.id,
                alg,
                knob,
                f(o.rec),
                f(o.spl),
                f(o.rec_c),
                f(o.rec_r)
            );
        };

        // Reference points.
        emit(
            "OPT",
            "-".into(),
            mean_outcome(&runs.iter().map(|r| r.oracle_outcome()).collect::<Vec<_>>()),
        );
        emit(
            "BF",
            "-".into(),
            mean_outcome(
                &runs
                    .iter()
                    .map(|r| r.brute_force_outcome())
                    .collect::<Vec<_>>(),
            ),
        );

        // EventHit variants.
        emit(
            "EHO",
            "tau1=0.5".into(),
            evaluate_trials(&runs, &Strategy::Eho { tau1: 0.5 }),
        );
        for s in grids::ehc() {
            if let Strategy::Ehc { c } = s {
                emit("EHC", format!("c={c}"), evaluate_trials(&runs, &s));
            }
        }
        for s in grids::ehr() {
            if let Strategy::Ehr { alpha, .. } = s {
                emit("EHR", format!("alpha={alpha}"), evaluate_trials(&runs, &s));
            }
        }
        for s in grids::ehcr() {
            if let Strategy::Ehcr { c, alpha } = s {
                emit(
                    "EHCR",
                    format!("c={c},alpha={alpha}"),
                    evaluate_trials(&runs, &s),
                );
            }
        }

        // COX baseline.
        let cox_models: Vec<CoxBaseline> = runs.iter().map(CoxBaseline::from_run).collect();
        for tau in cox_baseline::default_taus() {
            let outs: Vec<_> = cox_models
                .iter()
                .zip(&runs)
                .map(|(m, r)| m.evaluate_at(r, tau))
                .collect();
            emit("COX", format!("tau={tau}"), mean_outcome(&outs));
        }

        // VQS baseline.
        for tau in vqs::default_taus(runs[0].horizon) {
            let outs: Vec<_> = runs.iter().map(|r| vqs::evaluate_at(r, tau)).collect();
            emit("VQS", format!("tau={tau}"), mean_outcome(&outs));
        }

        // APP-VAE on Breakfast only (paper §VI.D: event occurrences on
        // VIRAT/THUMOS are too sparse for its window requirements).
        if task.dataset == DatasetKind::Breakfast {
            for window in [200usize, 1500] {
                let outs: Vec<_> = runs
                    .iter()
                    .map(|r| AppVae::fit(r, window).evaluate_run(r))
                    .collect();
                emit("APP-VAE", format!("M={window}"), mean_outcome(&outs));
            }
        }
    }
}
