//! Figure 7 — SPL of EHCR at fixed REC levels, varying the collection
//! window `M` (left panel) and the horizon `H` (right panel) on TA1.
//!
//! ```text
//! cargo run --release -p eventhit-bench --bin fig7 [--scale F] [--trials N]
//! ```
//!
//! Expected shape: SPL falls with M up to ≈50 then plateaus (diminishing
//! returns); larger H raises the SPL needed for high REC levels because
//! the event occupies a shrinking fraction of the horizon.

use eventhit_bench::{ehcr_at_target_rec, f, tsv_header, CommonArgs};
use eventhit_core::experiment::TaskRun;

const REC_LEVELS: [f64; 4] = [0.6, 0.7, 0.8, 0.9];

fn main() {
    let args = CommonArgs::parse();
    println!("# Figure 7: EHCR SPL at fixed REC levels varying M (left) and H (right), TA1");
    println!(
        "# scale={} seed={} trials={}",
        args.scale, args.seed, args.trials
    );
    tsv_header(&["panel", "value", "target_REC", "SPL", "achieved_REC"]);
    let task = args.tasks_or(&["TA1"]).remove(0);

    // Left panel: vary M at the default H.
    for m in [5usize, 10, 25, 50, 100] {
        let runs: Vec<TaskRun> = (0..args.trials)
            .map(|t| {
                let mut cfg = args.config(t);
                cfg.override_window = Some(m);
                TaskRun::execute(&task, &cfg)
            })
            .collect();
        for &target in &REC_LEVELS {
            match ehcr_at_target_rec(&runs, target) {
                Some((_, o)) => println!("M\t{m}\t{target}\t{}\t{}", f(o.spl), f(o.rec)),
                None => println!("M\t{m}\t{target}\tNA\tNA"),
            }
        }
    }

    // Right panel: vary H at the default M.
    for h in [100usize, 300, 500, 700, 900] {
        let runs: Vec<TaskRun> = (0..args.trials)
            .map(|t| {
                let mut cfg = args.config(t);
                cfg.override_horizon = Some(h);
                TaskRun::execute(&task, &cfg)
            })
            .collect();
        for &target in &REC_LEVELS {
            match ehcr_at_target_rec(&runs, target) {
                Some((_, o)) => println!("H\t{h}\t{target}\t{}\t{}", f(o.spl), f(o.rec)),
                None => println!("H\t{h}\t{target}\tNA\tNA"),
            }
        }
    }
}
