//! Figure 6 — EHR: REC, SPL and REC_r as functions of the coverage level
//! `α`, on the paper's four representative tasks.
//!
//! ```text
//! cargo run --release -p eventhit-bench --bin fig6 [--scale F] [--trials N]
//! ```
//!
//! Expected shape: larger α widens intervals, raising REC_r (≥0.95 by
//! α = 0.5 per §VI.E) and SPL; tasks whose EHO interval estimates are
//! already good (TA1, TA10) gain little, Group-2 tasks (TA5, TA7) gain a
//! lot.

use eventhit_bench::{evaluate_trials, f, run_trials, tsv_header, CommonArgs};
use eventhit_core::pipeline::Strategy;

fn main() {
    let args = CommonArgs::parse();
    println!("# Figure 6: EHR with varying coverage level alpha");
    println!(
        "# scale={} seed={} trials={}",
        args.scale, args.seed, args.trials
    );
    tsv_header(&["task", "alpha", "REC", "SPL", "REC_r"]);

    let alphas = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95];
    for task in args.tasks_or(&["TA1", "TA5", "TA7", "TA10"]) {
        let runs = run_trials(&task, &args);
        for &alpha in &alphas {
            let o = evaluate_trials(&runs, &Strategy::Ehr { tau1: 0.5, alpha });
            println!(
                "{}\t{}\t{}\t{}\t{}",
                task.id,
                alpha,
                f(o.rec),
                f(o.spl),
                f(o.rec_r)
            );
        }
    }
}
