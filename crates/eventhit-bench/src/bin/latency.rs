//! Detection-latency experiment (beyond the paper): feed each algorithm's
//! relay segments through the CI's FIFO queue and measure how long a
//! relayed frame waits for its verdict. The paper's FPS metric (Fig. 9) is
//! a throughput average; this shows the queueing consequence — brute force
//! doesn't just cost more, it falls behind a live stream.
//!
//! ```text
//! cargo run --release -p eventhit-bench --bin latency [--scale F] [--task TAi]
//! ```

use eventhit_bench::{f, tsv_header, CommonArgs};
use eventhit_core::ci_queue::{simulate, submissions_from_segments, QueueConfig};
use eventhit_core::experiment::TaskRun;
use eventhit_core::pipeline::Strategy;

fn main() {
    let args = CommonArgs::parse();
    let qcfg = QueueConfig::default();
    println!(
        "# Detection latency through the CI queue (stream {} fps, CI {} fps)",
        qcfg.stream_fps, qcfg.ci.fps
    );
    println!("# scale={} seed={}", args.scale, args.seed);
    tsv_header(&[
        "task",
        "algorithm",
        "REC",
        "mean_latency_s",
        "p95_latency_s",
        "max_backlog_frames",
        "utilization",
    ]);

    for task in args.tasks_or(&["TA10", "TA11"]) {
        let run = TaskRun::execute(&task, &args.config(0));

        // A deployment predicts once per horizon; the test split's anchors
        // overlap (stride < H), so keep only non-overlapping horizons.
        let mut keep = Vec::new();
        let mut next_anchor = 0u64;
        for (i, rec) in run.test.iter().enumerate() {
            if rec.anchor >= next_anchor {
                keep.push(i);
                next_anchor = rec.anchor + run.horizon as u64;
            }
        }
        let test: Vec<eventhit_core::infer::ScoredRecord> =
            keep.iter().map(|&i| run.test[i].clone()).collect();

        let evaluate = |name: &str, preds: Vec<Vec<eventhit_core::infer::IntervalPrediction>>| {
            let outcome = eventhit_core::metrics::evaluate(&preds, &test, run.horizon as u32);
            let segments: Vec<(u64, u64)> = preds
                .iter()
                .zip(&test)
                .flat_map(|(ps, rec)| {
                    ps.iter()
                        .filter(|p| p.present)
                        .map(move |p| (rec.anchor + p.start as u64, rec.anchor + p.end as u64))
                })
                .collect();
            let subs = submissions_from_segments(&segments);
            match simulate(&subs, &qcfg) {
                Some(r) => println!(
                    "{}\t{}\t{}\t{}\t{}\t{}\t{}",
                    task.id,
                    name,
                    f(outcome.rec),
                    f(r.mean_latency),
                    f(r.p95_latency),
                    r.max_backlog_frames,
                    f(r.utilization)
                ),
                None => println!("{}\t{}\t{}\tNA\tNA\tNA\tNA", task.id, name, f(outcome.rec)),
            }
        };

        let predict = |s: &Strategy| -> Vec<Vec<eventhit_core::infer::IntervalPrediction>> {
            test.iter().map(|r| run.state.predict(r, s)).collect()
        };
        evaluate(
            "EHCR(c=0.95,a=0.9)",
            predict(&Strategy::Ehcr {
                c: 0.95,
                alpha: 0.9,
            }),
        );
        // Capacity-aware choice: the cheapest EHCR point reaching REC 0.9
        // (a deployment should pick the operating point that both meets the
        // recall target and keeps the queue stable).
        if let Some((s, _)) = eventhit_bench::ehcr_at_target_rec(std::slice::from_ref(&run), 0.9) {
            evaluate("EHCR@REC>=0.9", predict(&s));
        }
        evaluate("EHO", predict(&Strategy::Eho { tau1: 0.5 }));
        // Brute force: every horizon fully relayed.
        let bf: Vec<Vec<eventhit_core::infer::IntervalPrediction>> = test
            .iter()
            .map(|r| {
                vec![
                    eventhit_core::infer::IntervalPrediction {
                        present: true,
                        start: 1,
                        end: run.horizon as u32,
                    };
                    r.labels.len()
                ]
            })
            .collect();
        evaluate("BF", bf);
    }
    println!("# expectation: BF saturates the CI (utilization ~1, runaway latency);");
    println!("# EHCR keeps the queue drained with second-scale latency.");
}
