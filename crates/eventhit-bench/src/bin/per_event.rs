//! Per-event breakdown of the multi-event tasks — the data behind the
//! paper's §VI.D observation that "the overall performance is bound by the
//! event with the worst performance".
//!
//! ```text
//! cargo run --release -p eventhit-bench --bin per_event [--scale F]
//! ```

use eventhit_bench::{f, tsv_header, CommonArgs};
use eventhit_core::experiment::TaskRun;
use eventhit_core::metrics::{evaluate_per_event, existence_precision};
use eventhit_core::pipeline::Strategy;

fn main() {
    let args = CommonArgs::parse();
    println!("# Per-event breakdown of multi-event tasks (EHO at tau=0.5)");
    println!("# scale={} seed={}", args.scale, args.seed);
    tsv_header(&[
        "task",
        "event",
        "REC",
        "SPL",
        "REC_c",
        "precision",
        "positives",
    ]);

    for task in args.tasks_or(&["TA7", "TA8", "TA9", "TA15", "TA16"]) {
        let run = TaskRun::execute(&task, &args.config(0));
        let preds = run.predictions(&Strategy::Eho { tau1: 0.5 });
        let per = evaluate_per_event(&preds, &run.test, run.horizon as u32);
        let overall = run.evaluate(&Strategy::Eho { tau1: 0.5 });
        let precision = existence_precision(&preds, &run.test);

        for (k, o) in per.iter().enumerate() {
            println!(
                "{}\t{}\t{}\t{}\t{}\t-\t{}",
                task.id,
                task.events[k],
                f(o.rec),
                f(o.spl),
                f(o.rec_c),
                o.positives
            );
        }
        println!(
            "{}\toverall\t{}\t{}\t{}\t{}\t{}",
            task.id,
            f(overall.rec),
            f(overall.spl),
            f(overall.rec_c),
            f(precision),
            overall.positives
        );
        let worst = per.iter().map(|o| o.rec).fold(f64::INFINITY, f64::min);
        println!(
            "# {}: overall REC {} vs worst event {} — bounded by the worst event",
            task.id,
            f(overall.rec),
            f(worst)
        );
    }
}
