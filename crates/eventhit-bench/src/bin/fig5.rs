//! Figure 5 — EHC: REC, SPL and REC_c as functions of the confidence
//! level `c`, on the paper's four representative tasks.
//!
//! ```text
//! cargo run --release -p eventhit-bench --bin fig5 [--scale F] [--trials N]
//! ```
//!
//! Expected shape: REC and SPL increase with c; REC_c → 1 as c → 1 while
//! REC saturates below 1 (interval-estimation error remains).

use eventhit_bench::{evaluate_trials, f, run_trials, tsv_header, CommonArgs};
use eventhit_core::pipeline::Strategy;

fn main() {
    let args = CommonArgs::parse();
    println!("# Figure 5: EHC with varying confidence level c");
    println!(
        "# scale={} seed={} trials={}",
        args.scale, args.seed, args.trials
    );
    tsv_header(&["task", "c", "REC", "SPL", "REC_c"]);

    let cs = [0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.98, 0.99, 0.995, 0.999];
    for task in args.tasks_or(&["TA1", "TA5", "TA7", "TA10"]) {
        let runs = run_trials(&task, &args);
        for &c in &cs {
            let o = evaluate_trials(&runs, &Strategy::Ehc { c });
            println!(
                "{}\t{}\t{}\t{}\t{}",
                task.id,
                c,
                f(o.rec),
                f(o.spl),
                f(o.rec_c)
            );
        }
    }
}
