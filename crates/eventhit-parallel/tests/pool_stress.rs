//! Pool stress test: uneven task durations, nested spawns, and repeated
//! runs. Every iteration checks exactly-once execution and ordered
//! results; the loop count is high enough to shake out scheduling races.

use std::sync::atomic::{AtomicUsize, Ordering};

use eventhit_parallel::{DeterministicReduce, Pool};

/// Burns CPU proportional to `units` and returns a value derived from
/// the work so the optimizer cannot elide it.
fn spin(units: usize) -> u64 {
    let mut acc = 0u64;
    for i in 0..units {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
    }
    acc | 1
}

#[test]
fn uneven_durations_execute_exactly_once_in_order() {
    const ITERS: usize = 100;
    const TASKS: usize = 33;
    for iter in 0..ITERS {
        let counts: Vec<AtomicUsize> = (0..TASKS).map(|_| AtomicUsize::new(0)).collect();
        let reduce = DeterministicReduce::with_capacity(TASKS);
        let pool = Pool::new(1 + iter % 8);
        pool.run_tasks((0..TASKS).collect(), |i, idx| {
            // Task cost varies ~300x across indices so stealing actually
            // happens: early tasks are heavy, late ones nearly free.
            let heavy = (TASKS - idx) * (TASKS - idx) * 50;
            let _ = spin(heavy);
            counts[idx].fetch_add(1, Ordering::SeqCst);
            reduce.submit(i, idx as u64 * 7 + 1);
        });
        for (idx, c) in counts.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::SeqCst),
                1,
                "iter {iter}: task {idx} ran {} times",
                c.load(Ordering::SeqCst)
            );
        }
        let got = reduce.into_ordered();
        let want: Vec<u64> = (0..TASKS as u64).map(|i| i * 7 + 1).collect();
        assert_eq!(got, want, "iter {iter}: out-of-order results");
    }
}

#[test]
fn nested_spawns_complete_without_deadlock() {
    // Each outer task runs its own inner pool region. Scoped threads are
    // created per region, so inner regions cannot starve waiting on
    // workers held by outer regions.
    const ITERS: usize = 100;
    for iter in 0..ITERS {
        let outer = Pool::new(4);
        let results = outer.map(6, |i| {
            let inner = Pool::new(2);
            let parts = inner.map_chunked(10, 3, move |j| (i * 100 + j) as u64);
            parts.iter().sum::<u64>()
        });
        let want: Vec<u64> = (0..6u64)
            .map(|i| (0..10).map(|j| i * 100 + j).sum())
            .collect();
        assert_eq!(results, want, "iter {iter}");
    }
}

#[test]
fn pool_survives_repeated_reuse() {
    // One Pool value driving many regions back to back — no worker
    // residue can leak between regions because threads are scoped.
    let pool = Pool::new(3);
    let mut total = 0u64;
    for round in 0..200usize {
        let out = pool.map_chunked(round % 17, 2, |i| i as u64 + round as u64);
        total += out.iter().sum::<u64>();
        assert_eq!(out.len(), round % 17);
    }
    assert!(total > 0);
}
