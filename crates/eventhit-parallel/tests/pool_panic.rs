//! Panic propagation: a panicking task must surface exactly once at the
//! call site, must not lose sibling tasks silently (the pool stops
//! picking up new work but joins cleanly), and must leave the pool
//! reusable. Kept in its own test binary so the temporary no-op panic
//! hook cannot swallow backtraces from unrelated tests.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use eventhit_parallel::Pool;

/// Installs a silent panic hook for the duration of `f` so expected
/// panics do not spam test output.
fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

#[test]
fn panic_propagates_once_and_pool_stays_usable() {
    with_quiet_panics(|| {
        for workers in [1usize, 2, 4, 8] {
            let pool = Pool::new(workers);
            for _ in 0..25 {
                let ran = AtomicUsize::new(0);
                let err = catch_unwind(AssertUnwindSafe(|| {
                    pool.run_tasks((0..16usize).collect(), |_, idx| {
                        if idx == 5 {
                            panic!("boom from task {idx}");
                        }
                        ran.fetch_add(1, Ordering::SeqCst);
                    });
                }));
                let payload = err.expect_err("panic must propagate to the caller");
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .expect("payload should be the formatted panic message");
                assert_eq!(msg, "boom from task 5");
                // Tasks that ran completed exactly once; none ran twice.
                assert!(ran.load(Ordering::SeqCst) <= 15);

                // Clean shutdown: the same pool value works immediately
                // afterwards and produces ordered results.
                let out = pool.map(8, |i| i * 2);
                assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12, 14]);
            }
        }
    });
}

#[test]
fn first_of_many_panics_wins_and_only_one_propagates() {
    with_quiet_panics(|| {
        let pool = Pool::new(4);
        for _ in 0..25 {
            let err = catch_unwind(AssertUnwindSafe(|| {
                pool.run_tasks((0..32usize).collect(), |_, idx| {
                    if idx % 3 == 0 {
                        panic!("multi-panic {idx}");
                    }
                });
            }));
            // Exactly one payload reaches the caller even though many
            // tasks panic; which one is first is scheduling-dependent,
            // but it is always one of ours.
            let payload = err.expect_err("panic must propagate");
            let msg = payload.downcast_ref::<String>().expect("formatted message");
            assert!(msg.starts_with("multi-panic "), "unexpected payload: {msg}");
        }
    });
}

#[test]
fn panic_in_nested_region_unwinds_through_outer_region() {
    with_quiet_panics(|| {
        let outer = Pool::new(2);
        let err = catch_unwind(AssertUnwindSafe(|| {
            outer.run_tasks((0..4usize).collect(), |_, i| {
                let inner = Pool::new(2);
                inner.run_tasks((0..4usize).collect(), |_, j| {
                    if i == 2 && j == 3 {
                        panic!("nested boom");
                    }
                });
            });
        }));
        let payload = err.expect_err("nested panic must reach the caller");
        // A literal panic message arrives as &'static str, not String.
        let msg = payload.downcast_ref::<&str>().expect("literal message");
        assert_eq!(*msg, "nested boom");
        // Both pools remain usable.
        assert_eq!(outer.map(3, |i| i + 1), vec![1, 2, 3]);
    });
}
