//! Property tests of the determinism substrate: ordered reduction equals
//! the sequential fold, and chunking is an exact partition — for random
//! task counts, chunk sizes, and worker counts.

use eventhit_parallel::{chunk_ranges, DeterministicReduce, Pool};
use eventhit_rng::testkit::from_fn;
use eventhit_rng::{prop_assert, prop_assert_eq, property, Rng};

fn values(n: usize) -> impl eventhit_rng::testkit::Strategy<Value = Vec<f64>> {
    from_fn(move |rng| (0..n).map(|_| rng.random_range(-1.0e3..1.0e3)).collect())
}

property! {
    #[test]
    fn reduce_equals_sequential_fold(
        n in 0usize..200,
        workers in 1usize..9,
        seed_vals in values(200),
    ) {
        let vals = &seed_vals[..n];
        // Sequential baseline: a plain left fold in index order.
        let want = vals.iter().fold(0.25f64, |acc, &v| acc * 0.5 + v);
        // Parallel: submit from pool tasks in whatever order the
        // scheduler picks, fold through DeterministicReduce.
        let reduce = DeterministicReduce::with_capacity(n);
        Pool::new(workers).run_tasks((0..n).collect(), |i, idx| {
            reduce.submit(i, vals[idx]);
        });
        let got = reduce.fold(0.25f64, |acc, v| acc * 0.5 + v);
        prop_assert_eq!(got.to_bits(), want.to_bits());
    }

    #[test]
    fn chunking_covers_every_index_exactly_once(
        n in 0usize..500,
        chunk in 1usize..64,
    ) {
        let ranges = chunk_ranges(n, chunk);
        let mut seen = vec![0u32; n];
        for r in &ranges {
            prop_assert!(r.start < r.end || n == 0, "empty chunk emitted");
            prop_assert!(r.end - r.start <= chunk, "oversized chunk");
            for i in r.clone() {
                seen[i] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1) || n == 0);
        prop_assert_eq!(seen.iter().map(|&c| c as usize).sum::<usize>(), n);
        // Chunks are emitted in order and contiguous.
        for pair in ranges.windows(2) {
            prop_assert_eq!(pair[0].end, pair[1].start);
        }
    }

    #[test]
    fn map_chunked_is_invariant_to_chunk_and_workers(
        n in 0usize..120,
        chunk in 1usize..40,
        workers in 1usize..9,
    ) {
        // f folds the index through nontrivial float ops so any reorder
        // or double-execution would change bits.
        let f = |i: usize| ((i as f64) * 0.37 + 1.0).ln().to_bits();
        let want: Vec<u64> = (0..n).map(f).collect();
        let got = Pool::new(workers).map_chunked(n, chunk, f);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn reduce_orders_random_submission_patterns(perm_seed in 0u64..1_000_000) {
        // Submit a fixed payload under a random permutation of indices;
        // the output order must not care.
        let n = 40usize;
        let mut order: Vec<usize> = (0..n).collect();
        // Fisher–Yates off the raw seed (no RNG state shared with the
        // harness draw).
        let mut s = perm_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        for i in (1..n).rev() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            order.swap(i, (s as usize) % (i + 1));
        }
        let reduce = DeterministicReduce::new();
        for &idx in &order {
            reduce.submit(idx, idx * 3);
        }
        let got = reduce.into_ordered();
        prop_assert_eq!(got, (0..n).map(|i| i * 3).collect::<Vec<_>>());
    }
}
