//! The scoped thread pool: fixed worker count, chunked work-stealing
//! deques, panic propagation, and optional telemetry.
//!
//! The pool spawns scoped threads per parallel region rather than keeping
//! a resident worker set: scoped threads may borrow from the caller's
//! stack (which is what lets `matmul` hand out `&mut` row blocks without
//! `unsafe`), and nested regions — a task that itself calls into the pool
//! — cannot deadlock because every region brings its own workers. The
//! spawn cost (~tens of microseconds) is amortized by only going parallel
//! above a work threshold at each call site (`par_threshold` in
//! `eventhit-nn::matrix`, chunked batches in `eventhit-core::infer`).

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread;

use eventhit_telemetry::Telemetry;

thread_local! {
    static WORKER_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

fn env_workers() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("EVENTHIT_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&w| w >= 1)
            .unwrap_or_else(|| {
                thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
                    .min(8)
            })
    })
}

/// The worker count [`Pool::current`] resolves on this thread: the
/// innermost [`with_workers`] override, else `EVENTHIT_WORKERS`, else
/// `available_parallelism()` capped at 8.
pub fn current_workers() -> usize {
    WORKER_OVERRIDE.with(Cell::get).unwrap_or_else(env_workers)
}

/// Runs `f` with this thread's default worker count pinned to `workers`
/// (minimum 1). Every `Pool::current()` resolved inside `f` — including
/// the implicit pools behind `Matrix::matmul` and `score_records` — uses
/// that count. The previous override is restored on exit, panic included.
///
/// This is how the thread-count-invariance suite varies the worker count
/// in-process; production code sets `EVENTHIT_WORKERS` instead.
pub fn with_workers<R>(workers: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            WORKER_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = WORKER_OVERRIDE.with(|c| c.replace(Some(workers.max(1))));
    let _restore = Restore(prev);
    f()
}

/// Splits `0..n` into contiguous chunks of at most `chunk` indices, in
/// order. Every index is covered exactly once (property-tested).
pub fn chunk_ranges(n: usize, chunk: usize) -> Vec<Range<usize>> {
    assert!(chunk > 0, "chunk size must be positive");
    (0..n.div_ceil(chunk))
        .map(|c| c * chunk..((c + 1) * chunk).min(n))
        .collect()
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Wall-clock trace of one worker, replayed into telemetry after the
/// region joins (worker threads cannot share the recorder's scoped span
/// stack, so spans are recorded post-hoc, worker by worker, in index
/// order).
#[derive(Default)]
struct WorkerLog {
    start: f64,
    end: f64,
    tasks: Vec<(f64, f64)>,
}

/// A deterministic scoped thread pool with a fixed worker count.
///
/// Cheap to construct (two words); the threads live only for the duration
/// of each parallel region. See the crate docs for the determinism
/// argument and [`Pool::current`] for worker-count resolution.
///
/// ```
/// use eventhit_parallel::Pool;
///
/// // map() preserves input order no matter which worker computes what.
/// let doubled = Pool::new(4).map(5, |i| i * 2);
/// assert_eq!(doubled, vec![0, 2, 4, 6, 8]);
/// assert_eq!(doubled, Pool::sequential().map(5, |i| i * 2));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Pool {
    workers: usize,
    telemetry: Option<Arc<Telemetry>>,
}

impl Pool {
    /// A pool with exactly `workers` workers (minimum 1).
    pub fn new(workers: usize) -> Self {
        Pool {
            workers: workers.max(1),
            telemetry: None,
        }
    }

    /// The single-worker pool: every task runs inline on the calling
    /// thread, in submission order.
    pub fn sequential() -> Self {
        Pool::new(1)
    }

    /// The pool for the calling thread's resolved worker count
    /// ([`current_workers`]).
    pub fn current() -> Self {
        Pool::new(current_workers())
    }

    /// Number of workers this pool runs.
    pub fn workers(&self) -> usize {
        self.workers.max(1)
    }

    /// Attaches a telemetry recorder for pool diagnostics: a
    /// `pool.run` → `pool.worker` → `pool.task` span forest per region, a
    /// `pool.queue_depth` gauge, and `pool.tasks` / `pool.steals`
    /// counters.
    ///
    /// Pool diagnostics are **wall-clock scheduling facts** (which worker
    /// ran which task, when), so they are *not* invariant across worker
    /// counts or replays. Keep this recorder separate from the
    /// pipeline's fingerprinted recorder; the instrumented hot paths
    /// never attach one to their internal pools.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.telemetry = Some(telemetry);
    }

    /// Builder form of [`Pool::set_telemetry`].
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.set_telemetry(telemetry);
        self
    }

    /// The core primitive: runs `run(index, task)` exactly once for every
    /// task, on up to `workers` scoped threads.
    ///
    /// Tasks are dealt into per-worker deques in contiguous submission
    /// blocks; a worker pops its own deque from the front and steals from
    /// other deques' backs when empty, so uneven task durations
    /// rebalance. If a task panics, the first panic payload is captured,
    /// remaining *unstarted* tasks are abandoned, in-flight tasks finish,
    /// all workers join, and the panic resumes exactly once on the
    /// caller.
    ///
    /// Determinism: `index` is the task's submission position. The pool
    /// guarantees each task runs at most once and (absent panics) exactly
    /// once; it makes no ordering guarantee between tasks, which is why
    /// callers merge results through
    /// [`DeterministicReduce`](crate::DeterministicReduce) keyed on
    /// `index`.
    pub fn run_tasks<I: Send>(&self, tasks: Vec<I>, run: impl Fn(usize, I) + Sync) {
        let n = tasks.len();
        if n == 0 {
            return;
        }
        let workers = self.workers().min(n);
        if workers <= 1 {
            for (i, task) in tasks.into_iter().enumerate() {
                run(i, task);
            }
            return;
        }

        let mut queues: Vec<Mutex<VecDeque<(usize, I)>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, task) in tasks.into_iter().enumerate() {
            // Contiguous blocks: worker w starts on tasks [w*n/W, (w+1)*n/W).
            let w = i * workers / n;
            queues[w]
                .get_mut()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back((i, task));
        }

        let queues = &queues;
        let run = &run;
        let pending = AtomicUsize::new(n);
        let pending = &pending;
        let steals = AtomicUsize::new(0);
        let steals = &steals;
        let poisoned = AtomicBool::new(false);
        let poisoned = &poisoned;
        let panic_slot: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
        let panic_slot = &panic_slot;
        let tel = self.telemetry.as_deref();
        let t0 = tel.map(Telemetry::now);
        let logs: Vec<Mutex<WorkerLog>> = (0..workers).map(|_| Mutex::default()).collect();
        let logs = &logs;

        thread::scope(|scope| {
            for (w, worker_log) in logs.iter().enumerate() {
                scope.spawn(move || {
                    let mut log = WorkerLog {
                        start: tel.map_or(0.0, Telemetry::now),
                        ..WorkerLog::default()
                    };
                    while !poisoned.load(Ordering::Acquire) {
                        let Some((idx, task)) = pop_task(queues, w, steals) else {
                            break;
                        };
                        let task_start = tel.map(Telemetry::now);
                        let outcome = catch_unwind(AssertUnwindSafe(|| run(idx, task)));
                        let remaining = pending.fetch_sub(1, Ordering::AcqRel) - 1;
                        if let (Some(t), Some(s)) = (tel, task_start) {
                            log.tasks.push((s, t.now()));
                            t.gauge_set("pool.queue_depth", remaining as f64);
                        }
                        if let Err(payload) = outcome {
                            let mut slot = lock(panic_slot);
                            if slot.is_none() {
                                *slot = Some(payload);
                            }
                            poisoned.store(true, Ordering::Release);
                            break;
                        }
                    }
                    if let Some(t) = tel {
                        log.end = t.now();
                        *lock(worker_log) = log;
                    }
                });
            }
        });

        if let Some(t) = tel {
            let run_id = t.record_closed_span("pool.run", t0.unwrap_or(0.0), t.now(), None);
            t.add("pool.tasks", (n - pending.load(Ordering::Acquire)) as u64);
            t.add("pool.steals", steals.load(Ordering::Acquire) as u64);
            t.gauge_set("pool.workers", workers as f64);
            for log in logs {
                let log = lock(log);
                let worker_id = t.record_closed_span("pool.worker", log.start, log.end, run_id);
                for &(s, e) in &log.tasks {
                    t.record_closed_span("pool.task", s, e, worker_id);
                }
            }
        }

        let payload = lock(panic_slot).take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// The chunk size [`Pool::map`] uses for `n` items: ~4 chunks per
    /// worker, so stealing can rebalance uneven durations without
    /// drowning in per-chunk overhead.
    pub fn default_chunk(&self, n: usize) -> usize {
        if self.workers() <= 1 {
            n.max(1)
        } else {
            n.div_ceil(self.workers() * 4).max(1)
        }
    }

    /// Computes `f(i)` for every `i in 0..n` and returns the results in
    /// index order — bit-identical for any worker count when `f` is pure
    /// per index.
    pub fn map<T: Send, F: Fn(usize) -> T + Sync>(&self, n: usize, f: F) -> Vec<T> {
        self.map_chunked(n, self.default_chunk(n), f)
    }

    /// [`Pool::map`] with an explicit chunk size (one task per chunk of
    /// indices). The chunking never affects the output, only scheduling
    /// granularity (property-tested).
    pub fn map_chunked<T: Send, F: Fn(usize) -> T + Sync>(
        &self,
        n: usize,
        chunk: usize,
        f: F,
    ) -> Vec<T> {
        let ranges = chunk_ranges(n, chunk);
        let reduce = crate::DeterministicReduce::with_capacity(ranges.len());
        self.run_tasks(ranges, |ci, range| {
            reduce.submit(ci, range.map(&f).collect::<Vec<T>>());
        });
        let mut out = Vec::with_capacity(n);
        for part in reduce.into_ordered() {
            out.extend(part);
        }
        out
    }

    /// Splits `data` into consecutive chunks of at most `chunk_len`
    /// elements and runs `f(chunk_index, start_offset, chunk)` for each,
    /// in parallel. This is the in-place primitive behind the row-blocked
    /// matmuls: each chunk is a disjoint `&mut` view, so no
    /// synchronization (and no `unsafe`) is needed.
    pub fn for_each_chunk_mut<T: Send, F: Fn(usize, usize, &mut [T]) + Sync>(
        &self,
        data: &mut [T],
        chunk_len: usize,
        f: F,
    ) {
        assert!(chunk_len > 0, "chunk length must be positive");
        let tasks: Vec<&mut [T]> = data.chunks_mut(chunk_len).collect();
        self.run_tasks(tasks, |ci, chunk| f(ci, ci * chunk_len, chunk));
    }
}

/// Pops the next task for worker `w`: own deque front first, then steal
/// from the back of the other deques in ring order.
fn pop_task<I>(
    queues: &[Mutex<VecDeque<(usize, I)>>],
    w: usize,
    steals: &AtomicUsize,
) -> Option<(usize, I)> {
    if let Some(task) = lock(&queues[w]).pop_front() {
        return Some(task);
    }
    for offset in 1..queues.len() {
        let victim = (w + offset) % queues.len();
        if let Some(task) = lock(&queues[victim]).pop_back() {
            steals.fetch_add(1, Ordering::Relaxed);
            return Some(task);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_returns_results_in_index_order() {
        for workers in [1, 2, 4, 8] {
            let pool = Pool::new(workers);
            let got = pool.map(100, |i| i * i);
            let want: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(got, want, "workers={workers}");
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        let pool = Pool::new(4);
        assert_eq!(pool.map(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.map(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn run_tasks_executes_each_task_exactly_once() {
        let n = 257;
        let counts: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let pool = Pool::new(4);
        pool.run_tasks((0..n).collect(), |idx, task| {
            assert_eq!(idx, task);
            counts[task].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn for_each_chunk_mut_writes_disjoint_chunks() {
        let mut data = vec![0u32; 103];
        let pool = Pool::new(4);
        pool.for_each_chunk_mut(&mut data, 10, |ci, offset, chunk| {
            assert_eq!(offset, ci * 10);
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (offset + j) as u32;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32));
    }

    #[test]
    fn chunk_ranges_partition() {
        assert_eq!(chunk_ranges(0, 3), Vec::<Range<usize>>::new());
        assert_eq!(chunk_ranges(7, 3), vec![0..3, 3..6, 6..7]);
        assert_eq!(chunk_ranges(6, 3), vec![0..3, 3..6]);
        assert_eq!(chunk_ranges(2, 10), vec![0..2]);
    }

    #[test]
    fn with_workers_overrides_and_restores() {
        let outer = current_workers();
        let inner = with_workers(3, || {
            assert_eq!(current_workers(), 3);
            with_workers(5, current_workers)
        });
        assert_eq!(inner, 5);
        assert_eq!(current_workers(), outer);
    }

    #[test]
    fn with_workers_restores_on_panic() {
        let outer = current_workers();
        let result = catch_unwind(|| with_workers(6, || panic!("boom")));
        assert!(result.is_err());
        assert_eq!(current_workers(), outer);
    }

    #[test]
    fn telemetry_records_worker_span_forest_and_counters() {
        let tel = Arc::new(Telemetry::new());
        let pool = Pool::new(3).with_telemetry(Arc::clone(&tel));
        pool.run_tasks((0..24).collect::<Vec<usize>>(), |_, v| {
            std::hint::black_box(v);
        });
        let snap = tel.snapshot();
        assert_eq!(snap.counter("pool.tasks"), Some(24));
        assert_eq!(snap.gauge("pool.workers").unwrap().last, 3.0);
        assert!(snap.gauge("pool.queue_depth").is_some());
        let runs = snap.spans.iter().filter(|s| s.name == "pool.run").count();
        let workers = snap
            .spans
            .iter()
            .filter(|s| s.name == "pool.worker")
            .count();
        let tasks = snap.spans.iter().filter(|s| s.name == "pool.task").count();
        assert_eq!(runs, 1);
        assert_eq!(workers, 3);
        assert_eq!(tasks, 24);
        // Every pool.task span parents to a pool.worker span, which
        // parents to the pool.run span.
        let run_id = snap.spans.iter().find(|s| s.name == "pool.run").unwrap().id;
        for s in snap.spans.iter().filter(|s| s.name == "pool.worker") {
            assert_eq!(s.parent, Some(run_id));
        }
    }
}
