//! Ordered reduction of parallel partial results.
//!
//! Workers finish in scheduling order, which varies run to run; the
//! merge must not. [`DeterministicReduce`] collects `(index, value)`
//! pairs from any thread and releases them strictly by submission index,
//! so folding parallel partials is bit-identical to folding the
//! sequential ones.

use std::sync::{Mutex, MutexGuard, PoisonError};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Collects partial results from parallel tasks and yields them in
/// submission-index order, regardless of completion order.
///
/// Each task submits exactly one value under its submission index;
/// duplicate indices are a caller bug and panic at
/// [`into_ordered`](DeterministicReduce::into_ordered) /
/// [`fold`](DeterministicReduce::fold) time.
#[derive(Debug, Default)]
pub struct DeterministicReduce<T> {
    parts: Mutex<Vec<(usize, T)>>,
}

impl<T> DeterministicReduce<T> {
    /// An empty collector.
    pub fn new() -> Self {
        DeterministicReduce {
            parts: Mutex::new(Vec::new()),
        }
    }

    /// An empty collector pre-sized for `n` submissions.
    pub fn with_capacity(n: usize) -> Self {
        DeterministicReduce {
            parts: Mutex::new(Vec::with_capacity(n)),
        }
    }

    /// Records the partial result of task `index`. Callable from any
    /// thread; submission order across threads is irrelevant.
    pub fn submit(&self, index: usize, value: T) {
        lock(&self.parts).push((index, value));
    }

    /// Number of partials submitted so far.
    pub fn len(&self) -> usize {
        lock(&self.parts).len()
    }

    /// Whether no partials have been submitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Consumes the collector and returns the values sorted by
    /// submission index. Panics if two submissions shared an index.
    pub fn into_ordered(self) -> Vec<T> {
        let mut parts = self
            .parts
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        parts.sort_by_key(|(i, _)| *i);
        for pair in parts.windows(2) {
            assert!(
                pair[0].0 != pair[1].0,
                "DeterministicReduce: duplicate submission index {}",
                pair[0].0
            );
        }
        parts.into_iter().map(|(_, v)| v).collect()
    }

    /// Folds the values in submission-index order — the parallel
    /// equivalent of `partials.into_iter().fold(init, f)` over the
    /// sequential results.
    pub fn fold<A>(self, init: A, mut f: impl FnMut(A, T) -> A) -> A {
        self.into_ordered().into_iter().fold(init, &mut f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_index_not_submission_time() {
        let r = DeterministicReduce::new();
        r.submit(2, "c");
        r.submit(0, "a");
        r.submit(1, "b");
        assert_eq!(r.into_ordered(), vec!["a", "b", "c"]);
    }

    #[test]
    fn fold_matches_sequential_fold() {
        let r = DeterministicReduce::with_capacity(4);
        for i in (0..4).rev() {
            r.submit(i, (i + 1) as f64);
        }
        // Out-of-order submission, in-order fold: ((0.1+1)+2)+3)+4.
        let got = r.fold(0.1f64, |acc, v| acc + v);
        let want = [1.0f64, 2.0, 3.0, 4.0].iter().fold(0.1f64, |a, v| a + v);
        assert_eq!(got.to_bits(), want.to_bits());
    }

    #[test]
    fn len_and_is_empty_track_submissions() {
        let r = DeterministicReduce::new();
        assert!(r.is_empty());
        r.submit(0, 1u8);
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate submission index")]
    fn duplicate_index_panics() {
        let r = DeterministicReduce::new();
        r.submit(3, 1);
        r.submit(3, 2);
        r.into_ordered();
    }
}
