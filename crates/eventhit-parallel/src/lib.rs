//! # eventhit-parallel
//!
//! A std-only deterministic parallel execution layer for the EventHit
//! workspace: a scoped thread pool with a fixed worker count, chunked
//! work-stealing deques, and panic propagation — plus the
//! [`DeterministicReduce`] combinator that folds partial results in
//! submission order, so every parallel region produces **bit-identical
//! output for any worker count, including 1**.
//!
//! ## The determinism argument
//!
//! Parallelism in this workspace is only ever applied to computations of
//! the shape *independent tasks → ordered merge*:
//!
//! 1. Each task `i` is a pure function of inputs that no other task
//!    mutates (a row block of a matmul, a batch of inference windows, a
//!    grid cell with its own RNG substream, one stream lane).
//! 2. Within a task, the floating-point operation order is exactly the
//!    order the sequential code uses for the same indices.
//! 3. Partial results are folded by [`DeterministicReduce`] in task
//!    *submission* order, never completion order.
//!
//! (1) and (2) make each partial result bit-identical to its sequential
//! counterpart; (3) makes the merge independent of scheduling. The worker
//! count therefore only decides *where* a task runs, never *what* it
//! computes — which is what `tests/parallel_determinism.rs` at the
//! workspace root asserts end to end (loss curves, conformal quantiles,
//! marshalling decisions, and telemetry fingerprints across worker counts
//! {1, 2, 4, 8}).
//!
//! ## Worker-count resolution
//!
//! [`Pool::current`] resolves, in order: the calling thread's
//! [`with_workers`] override → the `EVENTHIT_WORKERS` environment
//! variable → `available_parallelism()` capped at 8. A pool with one
//! worker runs every task inline on the calling thread — the sequential
//! baseline is the exact same code path.
//!
//! ## Example
//!
//! A parallel map whose output is the same `Vec` at any worker count:
//!
//! ```
//! use eventhit_parallel::{DeterministicReduce, Pool};
//!
//! let inputs: Vec<u64> = (0..100).collect();
//! let square_sum = |pool: &Pool| {
//!     let chunks: Vec<&[u64]> = inputs.chunks(7).collect();
//!     let reduce = DeterministicReduce::with_capacity(chunks.len());
//!     pool.run_tasks(chunks, |i, chunk| {
//!         reduce.submit(i, chunk.iter().map(|&x| x * x).sum::<u64>());
//!     });
//!     reduce.into_ordered()
//! };
//! assert_eq!(square_sum(&Pool::new(1)), square_sum(&Pool::new(4)));
//! ```

#![deny(missing_docs)]

pub mod pool;
pub mod reduce;

pub use pool::{chunk_ranges, current_workers, with_workers, Pool};
pub use reduce::DeterministicReduce;
