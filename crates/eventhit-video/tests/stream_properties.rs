//! Property-based tests of the stream generator and record labelling.

use eventhit_rng::rngs::StdRng;
use eventhit_rng::{prop_assert, prop_assert_eq, prop_assume, property, SeedableRng};
use eventhit_video::distributions::lognormal_mean_std;
use eventhit_video::event::{EventClass, EventInstance, OccurrenceInterval};
use eventhit_video::records::horizon_label;
use eventhit_video::stream::{VideoStream, MIN_GAP};
use eventhit_video::synthetic;

fn test_stream(instances: Vec<(u64, u64)>, len: u64) -> VideoStream {
    VideoStream {
        len,
        classes: vec![EventClass {
            name: "c".into(),
            paper_id: "E1".into(),
            occurrences: 1,
            duration_mean: 10.0,
            duration_std: 1.0,
            lead_mean: 10.0,
            lead_std: 1.0,
            feature_noise: 0.0,
        }],
        instances: instances
            .into_iter()
            .map(|(s, e)| EventInstance {
                class: 0,
                interval: OccurrenceInterval::new(s, e),
            })
            .collect(),
    }
}

property! {
    /// Generated streams respect bounds, within-class ordering and gaps,
    /// for arbitrary seeds and scales.
    #[test]
    fn generated_streams_are_well_formed(seed in 0u64..500, scale in 0.02f64..0.3) {
        let profile = synthetic::thumos().scaled(scale);
        let s = VideoStream::generate(&profile, seed);
        for inst in &s.instances {
            prop_assert!(inst.interval.end < s.len);
            prop_assert!(inst.class < s.classes.len());
        }
        for w in s.instances.windows(2) {
            if w[0].class == w[1].class {
                prop_assert!(w[0].interval.end + MIN_GAP <= w[1].interval.start);
            }
        }
    }

    /// Labels always produce offsets in [1, H] with start <= end, and the
    /// censoring flag is set exactly when the instance runs past the
    /// horizon.
    #[test]
    fn horizon_labels_are_consistent(
        inst_start in 0u64..900,
        dur in 1u64..300,
        anchor in 0u64..900,
        h in 10usize..200,
    ) {
        let inst_end = inst_start + dur - 1;
        let stream = test_stream(vec![(inst_start, inst_end.min(9_999))], 10_000);
        prop_assume!(anchor + h as u64 <= stream.len);
        let label = horizon_label(&stream, 0, anchor, h);
        if label.present {
            prop_assert!(label.start >= 1 && label.start <= label.end);
            prop_assert!(label.end <= h as u32);
            let intersects = inst_start <= anchor + h as u64 && inst_end > anchor;
            prop_assert!(intersects);
            prop_assert_eq!(label.censored, inst_end > anchor + h as u64);
        } else {
            let intersects = inst_start <= anchor + h as u64 && inst_end > anchor;
            prop_assert!(!intersects);
        }
    }

    /// The log-normal moment-matching sampler produces positive values
    /// whose sample mean tracks the target.
    #[test]
    fn lognormal_matches_target_mean(mean in 10.0f64..500.0, cv in 0.1f64..1.5) {
        let std = mean * cv;
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| {
            let x = lognormal_mean_std(mean, std, &mut rng);
            assert!(x > 0.0);
            x
        }).sum();
        let sample_mean = sum / n as f64;
        prop_assert!(
            (sample_mean - mean).abs() < mean * 0.15,
            "sample mean {sample_mean} vs target {mean}"
        );
    }
}
