//! Sampling primitives for the synthetic stream generator.
//!
//! Implemented on top of `rand`'s uniform source so the workspace does not
//! need `rand_distr`: Box–Muller normals, truncated normals (rejection with
//! clamping fallback), exponential inter-arrival gaps, and Knuth Poisson.

use eventhit_rng::Rng;

/// One standard-normal sample (Box–Muller).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Normal sample with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(mean: f64, std: f64, rng: &mut R) -> f64 {
    assert!(std >= 0.0, "standard deviation must be non-negative");
    mean + std * standard_normal(rng)
}

/// Normal sample truncated to `[lo, hi]`.
///
/// Uses rejection sampling with a bounded number of attempts, then clamps;
/// for the generator's use (truncating a few std devs around the mean) the
/// clamp path is essentially never taken.
pub fn truncated_normal<R: Rng + ?Sized>(
    mean: f64,
    std: f64,
    lo: f64,
    hi: f64,
    rng: &mut R,
) -> f64 {
    assert!(lo <= hi, "invalid truncation bounds");
    for _ in 0..64 {
        let x = normal(mean, std, rng);
        if (lo..=hi).contains(&x) {
            return x;
        }
    }
    normal(mean, std, rng).clamp(lo, hi)
}

/// Exponential sample with the given rate (events per frame).
pub fn exponential<R: Rng + ?Sized>(rate: f64, rng: &mut R) -> f64 {
    assert!(rate > 0.0, "rate must be positive");
    let u: f64 = 1.0 - rng.random::<f64>();
    -u.ln() / rate
}

/// Log-normal sample parameterized by the *target* mean and standard
/// deviation of the resulting distribution (moment matching).
///
/// Durations of real-world activities are positive and right-skewed; a
/// log-normal matches Table I's (mean, std) pairs even when the coefficient
/// of variation exceeds 1 (e.g. E11: mean 97.2, std 107.5), where a
/// truncated normal would badly distort the mean.
pub fn lognormal_mean_std<R: Rng + ?Sized>(mean: f64, std: f64, rng: &mut R) -> f64 {
    assert!(mean > 0.0, "mean must be positive");
    assert!(std >= 0.0, "std must be non-negative");
    if std == 0.0 {
        return mean;
    }
    let cv2 = (std / mean).powi(2);
    let sigma2 = (1.0 + cv2).ln();
    let mu = mean.ln() - sigma2 / 2.0;
    (mu + sigma2.sqrt() * standard_normal(rng)).exp()
}

/// Poisson sample.
///
/// Knuth's multiplication method for small `lambda`; for large `lambda`
/// falls back to a rounded normal approximation (valid for the generator's
/// use of background object counts).
pub fn poisson<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> u64 {
    assert!(lambda >= 0.0, "lambda must be non-negative");
    if lambda == 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        let x = normal(lambda, lambda.sqrt(), rng);
        return x.round().max(0.0) as u64;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0f64;
    loop {
        p *= rng.random::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Geometric sample: number of failures before the first success with
/// success probability `p` (support `0, 1, 2, ...`).
pub fn geometric<R: Rng + ?Sized>(p: f64, rng: &mut R) -> u64 {
    assert!(p > 0.0 && p <= 1.0, "p must be in (0, 1]");
    if p == 1.0 {
        return 0;
    }
    let u: f64 = 1.0 - rng.random::<f64>();
    (u.ln() / (1.0 - p).ln()).floor() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventhit_rng::rngs::StdRng;
    use eventhit_rng::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng(0);
        let n = 40_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(5.0, 2.0, &mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean={mean}");
        assert!((var - 4.0).abs() < 0.15, "var={var}");
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let mut r = rng(1);
        for _ in 0..5_000 {
            let x = truncated_normal(10.0, 20.0, 0.0, 15.0, &mut r);
            assert!((0.0..=15.0).contains(&x), "x={x}");
        }
    }

    #[test]
    fn truncated_normal_keeps_mean_when_bounds_are_wide() {
        let mut r = rng(2);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| truncated_normal(3.0, 0.5, -100.0, 100.0, &mut r))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut r = rng(3);
        let n = 40_000;
        let mean: f64 = (0..n).map(|_| exponential(0.02, &mut r)).sum::<f64>() / n as f64;
        assert!((mean - 50.0).abs() < 2.0, "mean={mean}");
    }

    #[test]
    fn poisson_small_lambda_moments() {
        let mut r = rng(4);
        let n = 40_000;
        let xs: Vec<u64> = (0..n).map(|_| poisson(3.5, &mut r)).collect();
        let mean = xs.iter().sum::<u64>() as f64 / n as f64;
        let var = xs.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.5).abs() < 0.1, "mean={mean}");
        assert!((var - 3.5).abs() < 0.2, "var={var}");
    }

    #[test]
    fn poisson_large_lambda_uses_normal_approx() {
        let mut r = rng(5);
        let n = 20_000;
        let mean = (0..n).map(|_| poisson(100.0, &mut r)).sum::<u64>() as f64 / n as f64;
        assert!((mean - 100.0).abs() < 1.0, "mean={mean}");
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut r = rng(6);
        assert_eq!(poisson(0.0, &mut r), 0);
    }

    #[test]
    fn geometric_mean() {
        let mut r = rng(7);
        let n = 40_000;
        let p = 0.25;
        let mean = (0..n).map(|_| geometric(p, &mut r)).sum::<u64>() as f64 / n as f64;
        // E[failures before success] = (1-p)/p = 3.
        assert!((mean - 3.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn geometric_p_one_is_zero() {
        let mut r = rng(8);
        assert_eq!(geometric(1.0, &mut r), 0);
    }

    #[test]
    fn deterministic_with_seed() {
        let a: Vec<u64> = {
            let mut r = rng(9);
            (0..10).map(|_| poisson(4.0, &mut r)).collect()
        };
        let b: Vec<u64> = {
            let mut r = rng(9);
            (0..10).map(|_| poisson(4.0, &mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
