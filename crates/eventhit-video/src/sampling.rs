//! Frame sampling and difference detection (§VI.A: "Approaches such as
//! frame sampling (ref 37) or difference detector (ref 38) can speed up video
//! processing and can be readily applied in our approach").
//!
//! Both reduce how many frames the *feature extractor* must process:
//!
//! * [`StaggeredSampler`] — Greig-style staggered sampling: process every
//!   `k`-th frame, rotating the phase each cycle so that over `k` cycles
//!   every frame position is covered; skipped frames reuse the most recent
//!   processed frame's features (events span many frames, so a small
//!   staleness is harmless).
//! * [`DifferenceDetector`] — NoScope-style: process a frame only when it
//!   differs from the last *processed* frame by more than a threshold
//!   (mean absolute feature difference as a stand-in for pixel deltas);
//!   otherwise reuse the cached features.
//!
//! Both report how many extractor invocations they saved, which plugs into
//! the cost model's feature-extraction stage.

use eventhit_nn::matrix::Matrix;

/// Statistics of a sampling pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingStats {
    /// Frames seen.
    pub frames: usize,
    /// Frames actually processed by the extractor.
    pub processed: usize,
}

impl SamplingStats {
    /// Fraction of extractor work saved.
    pub fn savings(&self) -> f64 {
        if self.frames == 0 {
            return 0.0;
        }
        1.0 - self.processed as f64 / self.frames as f64
    }
}

/// Staggered frame sampler with period `k`.
#[derive(Debug, Clone)]
pub struct StaggeredSampler {
    period: usize,
    /// Current rotation phase in `[0, period)`.
    phase: usize,
    /// Frame counter within the current cycle.
    counter: usize,
}

impl StaggeredSampler {
    /// Creates a sampler that processes one in `period` frames.
    pub fn new(period: usize) -> Self {
        assert!(period >= 1, "period must be at least 1");
        StaggeredSampler {
            period,
            phase: 0,
            counter: 0,
        }
    }

    /// Returns true if the next frame should be processed, advancing the
    /// internal schedule.
    pub fn should_process(&mut self) -> bool {
        let hit = self.counter == self.phase;
        self.counter += 1;
        if self.counter == self.period {
            self.counter = 0;
            self.phase = (self.phase + 1) % self.period;
        }
        hit
    }

    /// Applies the schedule to a full feature matrix: skipped frames are
    /// filled with the latest processed frame's features (frames before the
    /// first processed one keep their original features). Returns the
    /// down-sampled matrix and stats.
    pub fn apply(&mut self, features: &Matrix) -> (Matrix, SamplingStats) {
        let mut out = features.clone();
        let mut processed = 0usize;
        let mut last: Option<usize> = None;
        for t in 0..features.rows() {
            if self.should_process() {
                processed += 1;
                last = Some(t);
            } else if let Some(src) = last {
                let row = features.row(src).to_vec();
                out.set_row(t, &row);
            }
        }
        (
            out,
            SamplingStats {
                frames: features.rows(),
                processed,
            },
        )
    }
}

/// NoScope-style difference detector with threshold `tau` on the mean
/// absolute per-channel difference.
#[derive(Debug, Clone)]
pub struct DifferenceDetector {
    tau: f32,
    last_processed: Option<Vec<f32>>,
}

impl DifferenceDetector {
    /// Creates a detector; `tau = 0` processes every frame.
    pub fn new(tau: f32) -> Self {
        assert!(tau >= 0.0, "threshold must be non-negative");
        DifferenceDetector {
            tau,
            last_processed: None,
        }
    }

    /// Decides whether `frame` must be processed; updates the reference
    /// frame when it is.
    pub fn should_process(&mut self, frame: &[f32]) -> bool {
        let process = match &self.last_processed {
            None => true,
            Some(prev) => {
                debug_assert_eq!(prev.len(), frame.len());
                let diff: f32 = prev
                    .iter()
                    .zip(frame)
                    .map(|(a, b)| (a - b).abs())
                    .sum::<f32>()
                    / frame.len().max(1) as f32;
                diff > self.tau
            }
        };
        if process {
            self.last_processed = Some(frame.to_vec());
        }
        process
    }

    /// Applies the detector to a full feature matrix: unprocessed frames
    /// reuse the reference frame's features. Returns the filtered matrix
    /// and stats.
    pub fn apply(&mut self, features: &Matrix) -> (Matrix, SamplingStats) {
        let mut out = features.clone();
        let mut processed = 0usize;
        for t in 0..features.rows() {
            let row = features.row(t).to_vec();
            if self.should_process(&row) {
                processed += 1;
            } else if let Some(prev) = &self.last_processed {
                out.set_row(t, prev);
            }
        }
        (
            out,
            SamplingStats {
                frames: features.rows(),
                processed,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_savings() {
        let s = SamplingStats {
            frames: 100,
            processed: 25,
        };
        assert!((s.savings() - 0.75).abs() < 1e-12);
        assert_eq!(
            SamplingStats {
                frames: 0,
                processed: 0
            }
            .savings(),
            0.0
        );
    }

    #[test]
    fn staggered_processes_one_in_k() {
        let mut s = StaggeredSampler::new(4);
        let hits: Vec<bool> = (0..16).map(|_| s.should_process()).collect();
        assert_eq!(hits.iter().filter(|&&h| h).count(), 4);
        // Phase rotates: cycle 0 hits index 0, cycle 1 hits index 1, etc.
        assert!(hits[0] && hits[5] && hits[10] && hits[15]);
    }

    #[test]
    fn staggered_covers_all_positions_over_k_cycles() {
        let k = 5;
        let mut s = StaggeredSampler::new(k);
        let mut covered = vec![false; k];
        for _cycle in 0..k {
            for c in covered.iter_mut() {
                if s.should_process() {
                    *c = true;
                }
            }
        }
        assert!(covered.iter().all(|&c| c), "{covered:?}");
    }

    #[test]
    fn period_one_processes_everything() {
        let mut s = StaggeredSampler::new(1);
        assert!((0..10).all(|_| s.should_process()));
    }

    #[test]
    fn staggered_apply_fills_with_last_processed() {
        let mut m = Matrix::zeros(6, 1);
        for t in 0..6 {
            m[(t, 0)] = t as f32;
        }
        let mut s = StaggeredSampler::new(3);
        let (out, stats) = s.apply(&m);
        assert_eq!(stats.processed, 2); // frames 0 and 4 (phase rotation)
        assert_eq!(out[(0, 0)], 0.0);
        assert_eq!(out[(1, 0)], 0.0); // held from frame 0
        assert_eq!(out[(2, 0)], 0.0);
        assert_eq!(out[(3, 0)], 0.0);
        assert_eq!(out[(4, 0)], 4.0); // processed
        assert_eq!(out[(5, 0)], 4.0); // held
    }

    #[test]
    fn difference_detector_skips_static_frames() {
        let mut d = DifferenceDetector::new(0.1);
        assert!(d.should_process(&[1.0, 1.0])); // first frame always
        assert!(!d.should_process(&[1.01, 1.02])); // nearly identical
        assert!(d.should_process(&[2.0, 2.0])); // big change
        assert!(!d.should_process(&[2.0, 2.05])); // compares to NEW reference
    }

    #[test]
    fn difference_detector_zero_threshold_processes_changes() {
        let mut d = DifferenceDetector::new(0.0);
        assert!(d.should_process(&[1.0]));
        assert!(!d.should_process(&[1.0])); // identical => diff 0, not > 0
        assert!(d.should_process(&[1.0001]));
    }

    #[test]
    fn difference_apply_on_blocky_signal() {
        // 20 frames: constant 0 then constant 1 — only two process events.
        let mut m = Matrix::zeros(20, 2);
        for t in 10..20 {
            m[(t, 0)] = 1.0;
            m[(t, 1)] = 1.0;
        }
        let mut d = DifferenceDetector::new(0.1);
        let (out, stats) = d.apply(&m);
        assert_eq!(stats.processed, 2);
        assert!(stats.savings() > 0.85);
        assert_eq!(out, m, "piecewise-constant input is reproduced exactly");
    }

    #[test]
    fn sampling_preserves_learnability_of_slow_signals() {
        // A slow ramp sampled at period 4 still tracks within a small error.
        let n = 200;
        let mut m = Matrix::zeros(n, 1);
        for t in 0..n {
            m[(t, 0)] = t as f32 / n as f32;
        }
        let mut s = StaggeredSampler::new(4);
        let (out, stats) = s.apply(&m);
        assert!((stats.savings() - 0.75).abs() < 0.01);
        let max_err = (0..n)
            .map(|t| (out[(t, 0)] - m[(t, 0)]).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err <= 4.0 / n as f32 + 1e-6, "max_err={max_err}");
    }
}
