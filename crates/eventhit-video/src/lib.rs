//! # eventhit-video
//!
//! The video-stream substrate of the EventHit reproduction: event classes
//! and occurrence intervals, a synthetic stream generator reproducing the
//! paper's Table I statistics (VIRAT / THUMOS / Breakfast), a simulated
//! noisy feature extractor standing in for YOLOv3-class detectors, triplet
//! record extraction with censoring (§II), and temporal dataset splits.
//!
//! ```
//! use eventhit_video::dataset::{Dataset, SplitSpec};
//! use eventhit_video::features::{extract, FeatureConfig};
//! use eventhit_video::stream::VideoStream;
//! use eventhit_video::synthetic;
//!
//! let profile = synthetic::thumos().scaled(0.02);
//! let stream = VideoStream::generate(&profile, 42);
//! let features = extract(&stream, &FeatureConfig::default(), 43);
//! let ds = Dataset::build(&stream, &features, profile.collection_window,
//!                         profile.horizon, &SplitSpec::default());
//! assert!(!ds.train.is_empty());
//! ```

pub mod annotations;
pub mod dataset;
pub mod detector;
pub mod distributions;
pub mod event;
pub mod featsel;
pub mod features;
pub mod normalize;
pub mod online;
pub mod records;
pub mod sampling;
pub mod stats;
pub mod stream;
pub mod synthetic;

pub use dataset::{Dataset, SplitSpec};
pub use event::{EventClass, EventGroup, EventInstance, OccurrenceInterval};
pub use records::{EventLabel, Record};
pub use stream::VideoStream;
pub use synthetic::DatasetProfile;
