//! Dataset profiles reproducing Table I of the paper.
//!
//! Each profile carries the paper's per-event occurrence counts and duration
//! statistics, plus generator-specific parameters (stream length, precursor
//! lead times, feature noise) chosen so that positive-anchor rates and
//! learnability match the paper's reported behaviour (see DESIGN.md §3).
//!
//! Note: Table I's average duration for E1 is illegible in our source text;
//! we use 65.0 frames, consistent with its Group-1 membership and with E2's
//! 62.0-frame average (the paper treats E1 and E2 symmetrically).

use crate::event::EventClass;

/// A synthetic dataset profile: the event classes to plant plus the paper's
/// per-dataset hyper-parameters (`M`, `H`) from §VI.D.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetProfile {
    /// Dataset name (`"VIRAT"`, `"THUMOS"`, `"Breakfast"`).
    pub name: String,
    /// Event classes with Table I statistics.
    pub classes: Vec<EventClass>,
    /// Total stream length in frames.
    pub stream_len: u64,
    /// Default collection-window size `M` for this dataset (§VI.D).
    pub collection_window: usize,
    /// Default time-horizon length `H` for this dataset (§VI.D).
    pub horizon: usize,
}

impl DatasetProfile {
    /// Returns a copy with stream length and occurrence counts scaled by
    /// `factor`, preserving event density and per-instance statistics.
    /// Useful for fast tests and quick experiment runs.
    pub fn scaled(&self, factor: f64) -> DatasetProfile {
        assert!(factor > 0.0, "scale factor must be positive");
        let mut p = self.clone();
        p.stream_len = ((self.stream_len as f64 * factor).round() as u64).max(1);
        for c in &mut p.classes {
            c.occurrences = ((c.occurrences as f64 * factor).round() as u32).max(1);
        }
        p
    }

    /// Restricts the profile to a subset of its classes (by index),
    /// preserving order. Used to build per-task streams.
    pub fn select_classes(&self, indices: &[usize]) -> DatasetProfile {
        let mut p = self.clone();
        p.classes = indices.iter().map(|&i| self.classes[i].clone()).collect();
        p
    }

    /// Finds a class index by its paper id (e.g. `"E5"`).
    pub fn class_index(&self, paper_id: &str) -> Option<usize> {
        self.classes.iter().position(|c| c.paper_id == paper_id)
    }
}

#[allow(clippy::too_many_arguments)]
fn class(
    paper_id: &str,
    name: &str,
    occurrences: u32,
    duration_mean: f64,
    duration_std: f64,
    lead_mean: f64,
    lead_std: f64,
    feature_noise: f64,
) -> EventClass {
    EventClass {
        name: name.to_string(),
        paper_id: paper_id.to_string(),
        occurrences,
        duration_mean,
        duration_std,
        lead_mean,
        lead_std,
        feature_noise,
    }
}

/// VIRAT profile (Table I, events E1–E6). Paper defaults: `M=25`, `H=500`.
pub fn virat() -> DatasetProfile {
    DatasetProfile {
        name: "VIRAT".to_string(),
        classes: vec![
            class(
                "E1",
                "Person Opening a Vehicle",
                54,
                65.0,
                15.4,
                540.0,
                80.0,
                0.06,
            ),
            class(
                "E2",
                "Person Closing a Vehicle",
                57,
                62.0,
                11.9,
                540.0,
                80.0,
                0.06,
            ),
            class(
                "E3",
                "Person Unloading an Object from a Vehicle",
                56,
                86.6,
                25.0,
                530.0,
                85.0,
                0.08,
            ),
            class(
                "E4",
                "Person getting into a Vehicle",
                93,
                145.1,
                35.1,
                525.0,
                90.0,
                0.09,
            ),
            class(
                "E5",
                "Person getting out of a Vehicle",
                162,
                193.7,
                158.8,
                490.0,
                120.0,
                0.16,
            ),
            class(
                "E6",
                "Person carrying an object",
                165,
                571.2,
                176.4,
                470.0,
                130.0,
                0.18,
            ),
        ],
        stream_len: 600_000,
        collection_window: 25,
        horizon: 500,
    }
}

/// THUMOS profile (Table I, events E7–E9). Paper defaults: `M=10`, `H=200`.
pub fn thumos() -> DatasetProfile {
    DatasetProfile {
        name: "THUMOS".to_string(),
        classes: vec![
            class(
                "E7",
                "Volleyball Spiking",
                80,
                99.3,
                40.1,
                215.0,
                30.0,
                0.08,
            ),
            class("E8", "Diving", 74, 91.2, 35.4, 215.0, 30.0, 0.08),
            class("E9", "Soccer Penalty", 48, 92.8, 25.9, 218.0, 28.0, 0.07),
        ],
        stream_len: 240_000,
        collection_window: 10,
        horizon: 200,
    }
}

/// Breakfast profile (Table I, events E10–E12). Paper defaults: `M=50`,
/// `H=500`.
pub fn breakfast() -> DatasetProfile {
    DatasetProfile {
        name: "Breakfast".to_string(),
        classes: vec![
            class("E10", "Cut Fruit", 132, 114.0, 48.8, 530.0, 80.0, 0.09),
            class(
                "E11",
                "Put fruit to Bowl",
                121,
                97.2,
                107.5,
                490.0,
                110.0,
                0.16,
            ),
            class(
                "E12",
                "Put Egg to Plate",
                95,
                240.2,
                153.8,
                480.0,
                120.0,
                0.17,
            ),
        ],
        stream_len: 480_000,
        collection_window: 50,
        horizon: 500,
    }
}

/// All three dataset profiles.
pub fn all_profiles() -> Vec<DatasetProfile> {
    vec![virat(), thumos(), breakfast()]
}

/// Looks up the profile containing a given paper event id.
pub fn profile_for_event(paper_id: &str) -> Option<DatasetProfile> {
    all_profiles()
        .into_iter()
        .find(|p| p.class_index(paper_id).is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventGroup;

    #[test]
    fn table1_statistics_are_exact() {
        let v = virat();
        let e5 = &v.classes[4];
        assert_eq!(e5.paper_id, "E5");
        assert_eq!(e5.occurrences, 162);
        assert_eq!(e5.duration_mean, 193.7);
        assert_eq!(e5.duration_std, 158.8);

        let t = thumos();
        assert_eq!(t.classes[2].occurrences, 48);
        assert_eq!(t.classes[2].duration_mean, 92.8);

        let b = breakfast();
        assert_eq!(b.classes[2].duration_mean, 240.2);
        assert_eq!(b.classes[2].duration_std, 153.8);
    }

    #[test]
    fn paper_hyperparameters() {
        assert_eq!(virat().collection_window, 25);
        assert_eq!(virat().horizon, 500);
        assert_eq!(thumos().collection_window, 10);
        assert_eq!(thumos().horizon, 200);
        assert_eq!(breakfast().collection_window, 50);
        assert_eq!(breakfast().horizon, 500);
    }

    #[test]
    fn groups_match_paper_section_6d() {
        let groups: Vec<(String, EventGroup)> = all_profiles()
            .iter()
            .flat_map(|p| p.classes.iter().map(|c| (c.paper_id.clone(), c.group())))
            .collect();
        for (id, g) in groups {
            let expected = match id.as_str() {
                "E5" | "E6" | "E11" | "E12" => EventGroup::Group2,
                _ => EventGroup::Group1,
            };
            assert_eq!(g, expected, "event {id}");
        }
    }

    #[test]
    fn scaled_preserves_density() {
        let p = virat();
        let s = p.scaled(0.5);
        let d0 = p.classes[0].occurrences as f64 / p.stream_len as f64;
        let d1 = s.classes[0].occurrences as f64 / s.stream_len as f64;
        assert!((d0 - d1).abs() / d0 < 0.1);
        // Per-instance stats unchanged.
        assert_eq!(s.classes[0].duration_mean, p.classes[0].duration_mean);
    }

    #[test]
    fn select_classes_preserves_order() {
        let p = virat();
        let s = p.select_classes(&[4, 0]);
        assert_eq!(s.classes[0].paper_id, "E5");
        assert_eq!(s.classes[1].paper_id, "E1");
    }

    #[test]
    fn class_index_lookup() {
        assert_eq!(virat().class_index("E3"), Some(2));
        assert_eq!(virat().class_index("E7"), None);
        assert!(profile_for_event("E8").is_some());
        assert_eq!(profile_for_event("E8").unwrap().name, "THUMOS");
        assert!(profile_for_event("E99").is_none());
    }
}
