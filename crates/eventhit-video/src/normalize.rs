//! Per-channel feature standardization (z-scoring).
//!
//! Fitted on the training split only — applying train statistics to
//! calibration/test data is the leak-free convention. Useful when user
//! detectors emit channels on wildly different scales (counts vs
//! distances); the synthetic generator's channels are already ~unit scale,
//! so the default pipeline does not need it.

use eventhit_nn::matrix::Matrix;

use crate::records::Record;

/// Fitted per-channel mean and standard deviation.
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl Standardizer {
    /// Fits channel statistics from all frames of the given records.
    ///
    /// # Panics
    /// Panics on an empty record set.
    pub fn fit(records: &[Record]) -> Self {
        assert!(!records.is_empty(), "no records to fit on");
        let d = records[0].covariates.cols();
        let mut sum = vec![0.0f64; d];
        let mut sum_sq = vec![0.0f64; d];
        let mut n = 0u64;
        for rec in records {
            for r in 0..rec.covariates.rows() {
                n += 1;
                for c in 0..d {
                    let v = rec.covariates[(r, c)] as f64;
                    sum[c] += v;
                    sum_sq[c] += v * v;
                }
            }
        }
        let n = n as f64;
        let mean: Vec<f32> = sum.iter().map(|&s| (s / n) as f32).collect();
        let std: Vec<f32> = sum_sq
            .iter()
            .zip(&mean)
            .map(|(&sq, &m)| {
                let var = (sq / n - (m as f64) * (m as f64)).max(0.0);
                // Constant channels get unit scale (identity transform).
                let s = var.sqrt() as f32;
                if s < 1e-6 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        Standardizer { mean, std }
    }

    /// Channel count.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Transforms one covariate matrix in place.
    pub fn transform_matrix(&self, covariates: &mut Matrix) {
        assert_eq!(covariates.cols(), self.dim(), "channel count mismatch");
        for r in 0..covariates.rows() {
            for c in 0..self.dim() {
                covariates[(r, c)] = (covariates[(r, c)] - self.mean[c]) / self.std[c];
            }
        }
    }

    /// Returns standardized copies of the records.
    pub fn transform(&self, records: &[Record]) -> Vec<Record> {
        records
            .iter()
            .map(|rec| {
                let mut cov = rec.covariates.clone();
                self.transform_matrix(&mut cov);
                Record {
                    anchor: rec.anchor,
                    covariates: cov,
                    labels: rec.labels.clone(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventhit_video::records::EventLabel;

    use crate as eventhit_video;

    fn record(values: Vec<f32>, d: usize) -> Record {
        let rows = values.len() / d;
        Record {
            anchor: 0,
            covariates: Matrix::from_vec(rows, d, values),
            labels: vec![EventLabel::absent()],
        }
    }

    #[test]
    fn standardizes_to_zero_mean_unit_std() {
        let records = vec![record(vec![1.0, 10.0, 3.0, 30.0, 5.0, 50.0], 2)];
        let s = Standardizer::fit(&records);
        let out = s.transform(&records);
        let cov = &out[0].covariates;
        for c in 0..2 {
            let vals: Vec<f32> = (0..3).map(|r| cov[(r, c)]).collect();
            let mean: f32 = vals.iter().sum::<f32>() / 3.0;
            let var: f32 = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 3.0;
            assert!(mean.abs() < 1e-5, "channel {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-4, "channel {c} var {var}");
        }
    }

    #[test]
    fn constant_channels_are_identity_shifted() {
        let records = vec![record(vec![5.0, 5.0, 5.0, 5.0], 1)];
        let s = Standardizer::fit(&records);
        let out = s.transform(&records);
        // Constant channel: subtract mean, divide by 1 → all zeros.
        assert!(out[0].covariates.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn train_statistics_apply_to_new_records() {
        let train = vec![record(vec![0.0, 2.0, 4.0, 6.0], 1)];
        let s = Standardizer::fit(&train);
        let test = vec![record(vec![3.0], 1)];
        let out = s.transform(&test);
        // Train mean 3, std sqrt(5): (3-3)/~2.236 = 0.
        assert!(out[0].covariates[(0, 0)].abs() < 1e-5);
        // Labels and anchors preserved.
        assert_eq!(out[0].labels, test[0].labels);
    }

    #[test]
    #[should_panic(expected = "no records")]
    fn rejects_empty_fit() {
        let _ = Standardizer::fit(&[]);
    }

    #[test]
    #[should_panic(expected = "channel count mismatch")]
    fn rejects_dim_mismatch() {
        let s = Standardizer::fit(&[record(vec![1.0, 2.0], 1)]);
        let mut wrong = Matrix::zeros(1, 3);
        s.transform_matrix(&mut wrong);
    }
}
