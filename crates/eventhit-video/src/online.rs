//! Online frame ingestion: a ring buffer that assembles collection-window
//! covariates incrementally, so deployments can feed frames one at a time
//! instead of materializing the full stream's feature matrix.

use std::collections::VecDeque;

use eventhit_nn::matrix::Matrix;

/// A source of per-frame feature vectors (the boundary where a real
/// detector — YOLO, Faster R-CNN, a user's own extractor — plugs in).
pub trait FrameSource {
    /// Feature dimensionality `D`.
    fn dim(&self) -> usize;

    /// Produces the next frame's features, or `None` at end of stream.
    fn next_frame(&mut self) -> Option<Vec<f32>>;
}

/// Adapter exposing a precomputed `N x D` feature matrix as a
/// [`FrameSource`] (used by the simulator and tests).
pub struct MatrixFrameSource<'a> {
    features: &'a Matrix,
    cursor: usize,
}

impl<'a> MatrixFrameSource<'a> {
    /// Wraps a feature matrix, starting at frame `from`.
    pub fn new(features: &'a Matrix, from: usize) -> Self {
        MatrixFrameSource {
            features,
            cursor: from,
        }
    }
}

impl FrameSource for MatrixFrameSource<'_> {
    fn dim(&self) -> usize {
        self.features.cols()
    }

    fn next_frame(&mut self) -> Option<Vec<f32>> {
        if self.cursor >= self.features.rows() {
            return None;
        }
        let row = self.features.row(self.cursor).to_vec();
        self.cursor += 1;
        Some(row)
    }
}

/// A fixed-capacity ring of the last `M` frames' features.
pub struct WindowBuffer {
    window: usize,
    dim: usize,
    frames: VecDeque<Vec<f32>>,
    /// Total frames ever pushed (the current stream position + 1).
    pushed: u64,
}

impl WindowBuffer {
    /// Creates a buffer for collection windows of `window` frames of
    /// dimensionality `dim`.
    pub fn new(window: usize, dim: usize) -> Self {
        assert!(window > 0 && dim > 0);
        WindowBuffer {
            window,
            dim,
            frames: VecDeque::with_capacity(window),
            pushed: 0,
        }
    }

    /// Pushes one frame's features, evicting the oldest when full.
    ///
    /// # Panics
    /// Panics if `features.len() != dim`.
    pub fn push(&mut self, features: Vec<f32>) {
        assert_eq!(features.len(), self.dim, "frame dimensionality mismatch");
        if self.frames.len() == self.window {
            self.frames.pop_front();
        }
        self.frames.push_back(features);
        self.pushed += 1;
    }

    /// True when a full collection window is buffered.
    pub fn is_full(&self) -> bool {
        self.frames.len() == self.window
    }

    /// The configured collection-window size `M`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The configured feature dimensionality `D`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Copies out the buffered rows, oldest first — between 0 and
    /// `window` rows of `dim` values each. Together with
    /// [`WindowBuffer::frames_seen`] this is the buffer's complete
    /// dynamic state, which [`WindowBuffer::restore`] reconstructs
    /// bit-identically (the durable-serving snapshot path).
    pub fn snapshot_rows(&self) -> Vec<Vec<f32>> {
        self.frames.iter().cloned().collect()
    }

    /// Rebuilds a buffer from a snapshot taken with
    /// [`WindowBuffer::snapshot_rows`] / [`WindowBuffer::frames_seen`].
    ///
    /// # Panics
    /// Panics if more than `window` rows are given, any row is not `dim`
    /// long, or `pushed` is smaller than the number of rows (callers that
    /// read snapshots from disk validate first and surface typed errors).
    pub fn restore(window: usize, dim: usize, rows: Vec<Vec<f32>>, pushed: u64) -> Self {
        assert!(window > 0 && dim > 0);
        assert!(rows.len() <= window, "snapshot holds more rows than fit");
        assert!(
            rows.iter().all(|r| r.len() == dim),
            "snapshot row dimensionality mismatch"
        );
        assert!(
            pushed >= rows.len() as u64,
            "fewer frames pushed than buffered"
        );
        WindowBuffer {
            window,
            dim,
            frames: rows.into(),
            pushed,
        }
    }

    /// Number of frames pushed so far.
    pub fn frames_seen(&self) -> u64 {
        self.pushed
    }

    /// The current covariate matrix (`M x D`, oldest frame first).
    ///
    /// # Panics
    /// Panics if the buffer is not yet full.
    pub fn covariates(&self) -> Matrix {
        assert!(self.is_full(), "collection window not yet full");
        let mut m = Matrix::zeros(self.window, self.dim);
        for (r, frame) in self.frames.iter().enumerate() {
            m.set_row(r, frame);
        }
        m
    }

    /// The covariate matrix of the *last* `m` buffered frames
    /// (`m x D`, oldest first) — the adaptive-window variant of
    /// [`WindowBuffer::covariates`]: a shrunken collection window
    /// consumes only the newest `m` rows. `covariates_last(window)` is
    /// identical to `covariates()`.
    ///
    /// # Panics
    /// Panics if the buffer is not yet full or `m` is not in
    /// `[1, window]`.
    pub fn covariates_last(&self, m: usize) -> Matrix {
        assert!(self.is_full(), "collection window not yet full");
        assert!(
            m >= 1 && m <= self.window,
            "window slice {m} outside [1, {}]",
            self.window
        );
        let mut out = Matrix::zeros(m, self.dim);
        let skip = self.frames.len() - m;
        for (r, frame) in self.frames.iter().skip(skip).enumerate() {
            out.set_row(r, frame);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_fills_then_slides() {
        let mut buf = WindowBuffer::new(3, 2);
        assert!(!buf.is_full());
        buf.push(vec![1.0, 1.0]);
        buf.push(vec![2.0, 2.0]);
        assert!(!buf.is_full());
        buf.push(vec![3.0, 3.0]);
        assert!(buf.is_full());
        let cov = buf.covariates();
        assert_eq!(cov.row(0), &[1.0, 1.0]);
        assert_eq!(cov.row(2), &[3.0, 3.0]);

        buf.push(vec![4.0, 4.0]);
        let cov = buf.covariates();
        assert_eq!(cov.row(0), &[2.0, 2.0]);
        assert_eq!(cov.row(2), &[4.0, 4.0]);
        assert_eq!(buf.frames_seen(), 4);
    }

    #[test]
    #[should_panic(expected = "not yet full")]
    fn covariates_requires_full_window() {
        let buf = WindowBuffer::new(3, 2);
        let _ = buf.covariates();
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn push_rejects_wrong_dim() {
        let mut buf = WindowBuffer::new(2, 3);
        buf.push(vec![1.0]);
    }

    #[test]
    fn snapshot_restore_round_trips_mid_stream() {
        let mut buf = WindowBuffer::new(3, 2);
        for i in 0..5 {
            buf.push(vec![i as f32, -(i as f32)]);
        }
        let restored = WindowBuffer::restore(
            buf.window(),
            buf.dim(),
            buf.snapshot_rows(),
            buf.frames_seen(),
        );
        assert_eq!(restored.frames_seen(), buf.frames_seen());
        assert_eq!(restored.covariates(), buf.covariates());

        // Both continue identically after the restore point.
        let mut a = buf;
        let mut b = restored;
        a.push(vec![9.0, 9.5]);
        b.push(vec![9.0, 9.5]);
        assert_eq!(a.covariates(), b.covariates());
        assert_eq!(a.frames_seen(), b.frames_seen());
    }

    #[test]
    #[should_panic(expected = "more rows than fit")]
    fn restore_rejects_oversized_snapshots() {
        let _ = WindowBuffer::restore(2, 1, vec![vec![1.0], vec![2.0], vec![3.0]], 3);
    }

    #[test]
    fn covariates_last_slices_the_newest_rows() {
        let mut buf = WindowBuffer::new(4, 2);
        for i in 0..6 {
            buf.push(vec![i as f32, 10.0 + i as f32]);
        }
        // Buffer holds frames 2..=5.
        assert_eq!(buf.covariates_last(4), buf.covariates());
        let last2 = buf.covariates_last(2);
        assert_eq!(last2.shape(), (2, 2));
        assert_eq!(last2.row(0), &[4.0, 14.0]);
        assert_eq!(last2.row(1), &[5.0, 15.0]);
        assert_eq!(buf.covariates_last(1).row(0), &[5.0, 15.0]);
    }

    #[test]
    #[should_panic(expected = "outside [1, 4]")]
    fn covariates_last_rejects_oversized_slice() {
        let mut buf = WindowBuffer::new(4, 1);
        for i in 0..4 {
            buf.push(vec![i as f32]);
        }
        let _ = buf.covariates_last(5);
    }

    #[test]
    fn matrix_source_yields_rows_then_ends() {
        let mut m = Matrix::zeros(3, 2);
        for r in 0..3 {
            m[(r, 0)] = r as f32;
        }
        let mut src = MatrixFrameSource::new(&m, 1);
        assert_eq!(src.dim(), 2);
        assert_eq!(src.next_frame(), Some(vec![1.0, 0.0]));
        assert_eq!(src.next_frame(), Some(vec![2.0, 0.0]));
        assert_eq!(src.next_frame(), None);
        assert_eq!(src.next_frame(), None);
    }

    #[test]
    fn buffered_covariates_match_matrix_slice() {
        let mut m = Matrix::zeros(10, 3);
        for r in 0..10 {
            for c in 0..3 {
                m[(r, c)] = (r * 3 + c) as f32;
            }
        }
        let mut src = MatrixFrameSource::new(&m, 0);
        let mut buf = WindowBuffer::new(4, 3);
        for _ in 0..7 {
            buf.push(src.next_frame().unwrap());
        }
        // Window should be rows 3..=6.
        let cov = buf.covariates();
        let expected = m.select_rows(&[3, 4, 5, 6]);
        assert_eq!(cov, expected);
    }
}
