//! Event types, instances, and occurrence intervals.

/// Difficulty group from the paper's §VI.D analysis.
///
/// Group 1: short average duration and small standard deviation — easier to
/// predict. Group 2: long average duration or large standard deviation —
/// harder interval estimation and higher spillage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventGroup {
    /// Short, regular events (E1–E4, E7–E10).
    Group1,
    /// Long or highly variable events (E5, E6, E11, E12).
    Group2,
}

/// An inclusive frame interval `[start, end]` in which an event instance
/// occurs (the paper's *occurrence interval*).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccurrenceInterval {
    /// First frame of the occurrence (0-based stream index).
    pub start: u64,
    /// Last frame of the occurrence (inclusive).
    pub end: u64,
}

impl OccurrenceInterval {
    /// Creates an interval, panicking if `start > end`.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(start <= end, "interval start {start} > end {end}");
        OccurrenceInterval { start, end }
    }

    /// Number of frames covered (inclusive).
    pub fn len(&self) -> u64 {
        self.end - self.start + 1
    }

    /// Intervals are never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True if `frame` lies within the interval.
    pub fn contains(&self, frame: u64) -> bool {
        (self.start..=self.end).contains(&frame)
    }

    /// True if this interval intersects `[lo, hi]`.
    pub fn intersects(&self, lo: u64, hi: u64) -> bool {
        self.start <= hi && self.end >= lo
    }

    /// Number of frames shared with `[lo, hi]`.
    pub fn overlap(&self, lo: u64, hi: u64) -> u64 {
        if !self.intersects(lo, hi) {
            return 0;
        }
        self.end.min(hi) - self.start.max(lo) + 1
    }
}

/// One concrete occurrence of an event class in the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventInstance {
    /// Index of the event class within the stream's class list.
    pub class: usize,
    /// Where in the stream the instance occurs.
    pub interval: OccurrenceInterval,
}

/// Static description of an event class (one of the paper's E1–E12, or a
/// user-defined class), including the statistics that drive the synthetic
/// generator.
#[derive(Debug, Clone, PartialEq)]
pub struct EventClass {
    /// Human-readable name, e.g. `"Person Opening a Vehicle"`.
    pub name: String,
    /// Paper identifier such as `"E1"` (informational).
    pub paper_id: String,
    /// Target number of occurrences in the reference stream (Table I).
    pub occurrences: u32,
    /// Mean occurrence duration in frames (Table I).
    pub duration_mean: f64,
    /// Standard deviation of the duration in frames (Table I).
    pub duration_std: f64,
    /// Mean lead time (frames) by which precursor features anticipate the
    /// event start — a generator parameter, not from the paper.
    pub lead_mean: f64,
    /// Standard deviation of the lead time.
    pub lead_std: f64,
    /// Base noise level of this class's feature channels, in [0, 1).
    pub feature_noise: f64,
}

impl EventClass {
    /// The paper's difficulty grouping (§VI.D): Group 2 iff the duration is
    /// long (mean > 150 frames) or highly variable (std > 100 frames).
    pub fn group(&self) -> EventGroup {
        if self.duration_mean > 150.0 || self.duration_std > 100.0 {
            EventGroup::Group2
        } else {
            EventGroup::Group1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class(mean: f64, std: f64) -> EventClass {
        EventClass {
            name: "test".into(),
            paper_id: "Ex".into(),
            occurrences: 10,
            duration_mean: mean,
            duration_std: std,
            lead_mean: 40.0,
            lead_std: 10.0,
            feature_noise: 0.05,
        }
    }

    #[test]
    fn interval_len_and_contains() {
        let oi = OccurrenceInterval::new(10, 19);
        assert_eq!(oi.len(), 10);
        assert!(oi.contains(10));
        assert!(oi.contains(19));
        assert!(!oi.contains(20));
        assert!(!oi.contains(9));
    }

    #[test]
    fn single_frame_interval() {
        let oi = OccurrenceInterval::new(5, 5);
        assert_eq!(oi.len(), 1);
        assert!(oi.contains(5));
    }

    #[test]
    #[should_panic(expected = "interval start")]
    fn rejects_inverted_interval() {
        let _ = OccurrenceInterval::new(3, 2);
    }

    #[test]
    fn intersects_and_overlap() {
        let oi = OccurrenceInterval::new(10, 20);
        assert!(oi.intersects(20, 30));
        assert!(oi.intersects(0, 10));
        assert!(!oi.intersects(21, 30));
        assert!(!oi.intersects(0, 9));
        assert_eq!(oi.overlap(15, 25), 6); // 15..=20
        assert_eq!(oi.overlap(0, 100), 11);
        assert_eq!(oi.overlap(21, 30), 0);
    }

    #[test]
    fn grouping_follows_paper_rules() {
        // E1-like: short and regular.
        assert_eq!(class(65.0, 15.4).group(), EventGroup::Group1);
        // E5-like: huge std.
        assert_eq!(class(193.7, 158.8).group(), EventGroup::Group2);
        // E6-like: long mean.
        assert_eq!(class(571.2, 176.4).group(), EventGroup::Group2);
        // E11-like: modest mean, large std.
        assert_eq!(class(97.2, 107.5).group(), EventGroup::Group2);
        // E10-like: borderline but Group 1.
        assert_eq!(class(114.0, 48.8).group(), EventGroup::Group1);
    }
}
