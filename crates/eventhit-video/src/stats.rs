//! Stream and split statistics: the quantities experiment reports lead
//! with (per-class occupancy, positive-anchor rates, horizon composition).

use crate::records::Record;
use crate::stream::VideoStream;

/// Per-class stream statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassStats {
    /// Paper id of the class (e.g. `"E5"`).
    pub paper_id: String,
    /// Planted instance count.
    pub instances: usize,
    /// Fraction of stream frames covered by instances.
    pub occupancy: f64,
    /// Empirical duration mean.
    pub duration_mean: f64,
    /// Empirical duration standard deviation.
    pub duration_std: f64,
    /// Empirical mean gap between consecutive instances (end → next
    /// start); `None` with fewer than two instances.
    pub mean_gap: Option<f64>,
}

/// Computes per-class statistics of a stream.
pub fn class_stats(stream: &VideoStream) -> Vec<ClassStats> {
    (0..stream.classes.len())
        .map(|k| {
            let (duration_mean, duration_std) = stream.duration_stats(k);
            let instances: Vec<_> = stream.instances_of(k).collect();
            let gaps: Vec<f64> = instances
                .windows(2)
                .map(|w| (w[1].interval.start - w[0].interval.end) as f64)
                .collect();
            let mean_gap = if gaps.is_empty() {
                None
            } else {
                Some(gaps.iter().sum::<f64>() / gaps.len() as f64)
            };
            ClassStats {
                paper_id: stream.classes[k].paper_id.clone(),
                instances: instances.len(),
                occupancy: stream.occupancy_of(k),
                duration_mean,
                duration_std,
                mean_gap,
            }
        })
        .collect()
}

/// Per-event composition of a record split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitStats {
    /// Records in the split.
    pub records: usize,
    /// Records whose horizon contains the event.
    pub positives: usize,
    /// Positive fraction.
    pub positive_rate: f64,
    /// Among positives, the fraction censored at the horizon end.
    pub censored_rate: f64,
    /// Mean true-interval length among positives (frames).
    pub mean_interval: f64,
}

/// Computes split statistics for one event index.
pub fn split_stats(records: &[Record], event: usize) -> SplitStats {
    let positives: Vec<_> = records.iter().filter(|r| r.labels[event].present).collect();
    let n_pos = positives.len();
    let censored = positives
        .iter()
        .filter(|r| r.labels[event].censored)
        .count();
    let total_len: u64 = positives
        .iter()
        .map(|r| r.labels[event].duration() as u64)
        .sum();
    SplitStats {
        records: records.len(),
        positives: n_pos,
        positive_rate: if records.is_empty() {
            0.0
        } else {
            n_pos as f64 / records.len() as f64
        },
        censored_rate: if n_pos == 0 {
            0.0
        } else {
            censored as f64 / n_pos as f64
        },
        mean_interval: if n_pos == 0 {
            0.0
        } else {
            total_len as f64 / n_pos as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventClass, EventInstance, OccurrenceInterval};
    use crate::records::EventLabel;
    use eventhit_nn::matrix::Matrix;

    fn stream() -> VideoStream {
        VideoStream {
            len: 1000,
            classes: vec![EventClass {
                name: "c".into(),
                paper_id: "E1".into(),
                occurrences: 3,
                duration_mean: 10.0,
                duration_std: 0.0,
                lead_mean: 10.0,
                lead_std: 1.0,
                feature_noise: 0.0,
            }],
            instances: vec![
                EventInstance {
                    class: 0,
                    interval: OccurrenceInterval::new(100, 109),
                },
                EventInstance {
                    class: 0,
                    interval: OccurrenceInterval::new(200, 219),
                },
                EventInstance {
                    class: 0,
                    interval: OccurrenceInterval::new(500, 509),
                },
            ],
        }
    }

    #[test]
    fn class_stats_hand_computed() {
        let s = class_stats(&stream());
        assert_eq!(s.len(), 1);
        let c = &s[0];
        assert_eq!(c.instances, 3);
        assert!((c.occupancy - 40.0 / 1000.0).abs() < 1e-12);
        assert!((c.duration_mean - 40.0 / 3.0).abs() < 1e-9);
        // Gaps: 200-109=91, 500-219=281 → mean 186.
        assert!((c.mean_gap.unwrap() - 186.0).abs() < 1e-9);
    }

    #[test]
    fn class_stats_single_instance_has_no_gap() {
        let mut s = stream();
        s.instances.truncate(1);
        let stats = class_stats(&s);
        assert_eq!(stats[0].mean_gap, None);
    }

    fn record(label: EventLabel) -> Record {
        Record {
            anchor: 0,
            covariates: Matrix::zeros(2, 2),
            labels: vec![label],
        }
    }

    #[test]
    fn split_stats_hand_computed() {
        let records = vec![
            record(EventLabel {
                present: true,
                start: 1,
                end: 10,
                censored: false,
            }),
            record(EventLabel {
                present: true,
                start: 90,
                end: 100,
                censored: true,
            }),
            record(EventLabel::absent()),
            record(EventLabel::absent()),
        ];
        let s = split_stats(&records, 0);
        assert_eq!(s.records, 4);
        assert_eq!(s.positives, 2);
        assert!((s.positive_rate - 0.5).abs() < 1e-12);
        assert!((s.censored_rate - 0.5).abs() < 1e-12);
        assert!((s.mean_interval - 10.5).abs() < 1e-12); // (10 + 11) / 2
    }

    #[test]
    fn split_stats_empty_split() {
        let s = split_stats(&[], 0);
        assert_eq!(s.records, 0);
        assert_eq!(s.positive_rate, 0.0);
        assert_eq!(s.mean_interval, 0.0);
    }
}
