//! Feature selection by correlation analysis (§III: "We select features
//! through standard correlation analysis methods", ref 25).
//!
//! Scores each feature channel by the absolute Pearson correlation between
//! a window summary of the channel (its mean over the collection window)
//! and the per-event existence label, maximized over events. Channels can
//! then be ranked and records projected onto the selected subset.

use eventhit_nn::matrix::Matrix;

use crate::records::Record;

/// Pearson correlation coefficient of two equal-length samples.
/// Returns 0 when either sample is constant.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "sample length mismatch");
    let n = xs.len() as f64;
    if xs.is_empty() {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Per-channel relevance scores: `score[c] = max_k |corr(mean window value
/// of channel c, 1[E_k present])|` over the provided records.
pub fn channel_relevance(records: &[Record]) -> Vec<f64> {
    assert!(!records.is_empty(), "no records");
    let d = records[0].covariates.cols();
    let k_events = records[0].labels.len();

    // Window-mean per channel per record.
    let mut summaries: Vec<Vec<f64>> = vec![Vec::with_capacity(records.len()); d];
    for rec in records {
        let m = rec.covariates.rows();
        for (c, summary) in summaries.iter_mut().enumerate() {
            let mean: f32 = (0..m).map(|r| rec.covariates[(r, c)]).sum::<f32>() / m as f32;
            summary.push(mean as f64);
        }
    }

    (0..d)
        .map(|c| {
            (0..k_events)
                .map(|k| {
                    let labels: Vec<f64> = records
                        .iter()
                        .map(|r| if r.labels[k].present { 1.0 } else { 0.0 })
                        .collect();
                    pearson(&summaries[c], &labels).abs()
                })
                .fold(0.0, f64::max)
        })
        .collect()
}

/// Indices of the `k` most relevant channels, most relevant first.
pub fn select_top_k(records: &[Record], k: usize) -> Vec<usize> {
    let scores = channel_relevance(records);
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    idx.truncate(k);
    idx
}

/// Projects records onto a channel subset (columns reordered to match
/// `channels`).
pub fn project(records: &[Record], channels: &[usize]) -> Vec<Record> {
    records
        .iter()
        .map(|rec| {
            let m = rec.covariates.rows();
            let mut cov = Matrix::zeros(m, channels.len());
            for r in 0..m {
                for (j, &c) in channels.iter().enumerate() {
                    cov[(r, j)] = rec.covariates[(r, c)];
                }
            }
            Record {
                anchor: rec.anchor,
                covariates: cov,
                labels: rec.labels.clone(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, SplitSpec};
    use crate::features::{self, extract, FeatureConfig};
    use crate::records::EventLabel;
    use crate::stream::VideoStream;
    use crate::synthetic;

    #[test]
    fn pearson_known_values() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[6.0, 4.0, 2.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0); // constant
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    fn pearson_uncorrelated_near_zero() {
        // Alternating x against linear y.
        let xs: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let ys: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert!(pearson(&xs, &ys).abs() < 0.1);
    }

    fn task_records() -> Vec<Record> {
        let profile = synthetic::thumos().scaled(0.1).select_classes(&[0]);
        let stream = VideoStream::generate(&profile, 3);
        let f = extract(&stream, &FeatureConfig::default(), 4);
        let ds = Dataset::build(&stream, &f, 10, 200, &SplitSpec::default());
        ds.train
    }

    #[test]
    fn approach_channel_outranks_nuisance_channels() {
        let records = task_records();
        let scores = channel_relevance(&records);
        let approach = features::approach_channel(0);
        // The precursor channel must beat the scene-phase sinusoid and the
        // background-count channel.
        assert!(
            scores[approach] > scores[2] && scores[approach] > scores[0],
            "scores: {scores:?}"
        );
    }

    #[test]
    fn top_k_selects_informative_first() {
        let records = task_records();
        let top = select_top_k(&records, 2);
        let approach = features::approach_channel(0);
        assert!(
            top.contains(&approach),
            "top-2 {top:?} should include approach channel"
        );
    }

    #[test]
    fn project_reduces_dimensions_and_keeps_labels() {
        let records = task_records();
        let channels = vec![3usize, 0];
        let projected = project(&records, &channels);
        assert_eq!(projected.len(), records.len());
        for (p, r) in projected.iter().zip(&records) {
            assert_eq!(p.covariates.shape(), (r.covariates.rows(), 2));
            assert_eq!(p.labels, r.labels);
            // Column order follows the channel list.
            assert_eq!(p.covariates[(0, 0)], r.covariates[(0, 3)]);
            assert_eq!(p.covariates[(0, 1)], r.covariates[(0, 0)]);
        }
    }

    #[test]
    #[should_panic(expected = "no records")]
    fn relevance_rejects_empty() {
        let _ = channel_relevance(&[]);
    }

    #[test]
    fn relevance_handles_all_negative_records() {
        let rec = Record {
            anchor: 0,
            covariates: Matrix::filled(3, 2, 0.5),
            labels: vec![EventLabel::absent()],
        };
        let scores = channel_relevance(&[rec.clone(), rec]);
        assert!(scores.iter().all(|&s| s == 0.0));
    }
}
