//! Dataset assembly: temporal train / calibration / test splits of triplet
//! records, as in §II (training data is sampled from the beginning of the
//! stream) and §IV/§V (calibration sets sampled the same way).

use eventhit_nn::matrix::Matrix;

use crate::records::{extract_record, Record};
use crate::stream::VideoStream;

/// Fractions of the stream (by frame range) assigned to each split, plus
/// the anchor sampling stride.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitSpec {
    /// Fraction of frames for the training range (from the stream start).
    pub train_frac: f64,
    /// Fraction for the calibration range (immediately after training).
    pub calib_frac: f64,
    /// Anchor stride in frames (one record every `stride` frames).
    pub stride: u64,
}

impl Default for SplitSpec {
    fn default() -> Self {
        SplitSpec {
            train_frac: 0.5,
            calib_frac: 0.25,
            stride: 50,
        }
    }
}

impl SplitSpec {
    /// Validates the fractions.
    pub fn validate(&self) {
        assert!(
            self.train_frac > 0.0 && self.calib_frac >= 0.0,
            "invalid split fractions"
        );
        assert!(
            self.train_frac + self.calib_frac < 1.0,
            "no frames left for the test split"
        );
        assert!(self.stride > 0, "stride must be positive");
    }
}

/// Records partitioned into train / calibration / test splits.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Training records (`D_train`).
    pub train: Vec<Record>,
    /// Calibration records (`D_c-calib` / `D_r-calib`).
    pub calib: Vec<Record>,
    /// Held-out test records (`P_test`).
    pub test: Vec<Record>,
    /// Collection-window size `M`.
    pub m: usize,
    /// Horizon length `H`.
    pub h: usize,
    /// Feature dimensionality `D`.
    pub d: usize,
}

impl Dataset {
    /// Builds a dataset from a stream and its precomputed feature matrix.
    ///
    /// Anchors run from `m - 1` to `len - h - 1` with the given stride and
    /// are assigned to splits by their frame position (temporal split, no
    /// leakage: a record's horizon never crosses into the next split's
    /// training-relevant region because splits are contiguous ranges).
    pub fn build(
        stream: &VideoStream,
        features: &Matrix,
        m: usize,
        h: usize,
        spec: &SplitSpec,
    ) -> Dataset {
        spec.validate();
        assert_eq!(
            features.rows() as u64,
            stream.len,
            "feature matrix length mismatch"
        );
        assert!(
            stream.len > (m + h) as u64,
            "stream too short for window {m} + horizon {h}"
        );

        let train_end = (stream.len as f64 * spec.train_frac) as u64;
        let calib_end = (stream.len as f64 * (spec.train_frac + spec.calib_frac)) as u64;

        let mut train = Vec::new();
        let mut calib = Vec::new();
        let mut test = Vec::new();

        let first = m as u64 - 1;
        let last = stream.len - h as u64 - 1;
        let mut anchor = first;
        while anchor <= last {
            let record = extract_record(stream, features, anchor, m, h);
            if anchor < train_end {
                train.push(record);
            } else if anchor < calib_end {
                calib.push(record);
            } else {
                test.push(record);
            }
            anchor += spec.stride;
        }

        Dataset {
            train,
            calib,
            test,
            m,
            h,
            d: features.cols(),
        }
    }

    /// Number of records across all splits.
    pub fn len(&self) -> usize {
        self.train.len() + self.calib.len() + self.test.len()
    }

    /// True when no records were extracted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fraction of records in `split` whose horizon contains event `k`.
    pub fn positive_rate(records: &[Record], k: usize) -> f64 {
        if records.is_empty() {
            return 0.0;
        }
        let pos = records.iter().filter(|r| r.labels[k].present).count();
        pos as f64 / records.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{extract, FeatureConfig};
    use crate::synthetic;

    fn tiny_setup() -> (VideoStream, Matrix) {
        let profile = synthetic::thumos().scaled(0.05);
        let stream = VideoStream::generate(&profile, 1);
        let features = extract(&stream, &FeatureConfig::default(), 2);
        (stream, features)
    }

    #[test]
    fn build_produces_all_splits() {
        let (stream, features) = tiny_setup();
        let ds = Dataset::build(&stream, &features, 10, 200, &SplitSpec::default());
        assert!(!ds.train.is_empty());
        assert!(!ds.calib.is_empty());
        assert!(!ds.test.is_empty());
        assert_eq!(ds.d, features.cols());
    }

    #[test]
    fn splits_are_temporally_ordered() {
        let (stream, features) = tiny_setup();
        let ds = Dataset::build(&stream, &features, 10, 200, &SplitSpec::default());
        let max_train = ds.train.iter().map(|r| r.anchor).max().unwrap();
        let min_calib = ds.calib.iter().map(|r| r.anchor).min().unwrap();
        let max_calib = ds.calib.iter().map(|r| r.anchor).max().unwrap();
        let min_test = ds.test.iter().map(|r| r.anchor).min().unwrap();
        assert!(max_train < min_calib);
        assert!(max_calib < min_test);
    }

    #[test]
    fn anchors_follow_stride() {
        let (stream, features) = tiny_setup();
        let spec = SplitSpec {
            stride: 100,
            ..Default::default()
        };
        let ds = Dataset::build(&stream, &features, 10, 200, &spec);
        let mut anchors: Vec<u64> = ds
            .train
            .iter()
            .chain(&ds.calib)
            .chain(&ds.test)
            .map(|r| r.anchor)
            .collect();
        anchors.sort_unstable();
        for w in anchors.windows(2) {
            assert_eq!(w[1] - w[0], 100);
        }
        assert_eq!(anchors[0], 9); // m - 1
    }

    #[test]
    fn covariate_shape_matches_m_and_d() {
        let (stream, features) = tiny_setup();
        let ds = Dataset::build(&stream, &features, 10, 200, &SplitSpec::default());
        for r in ds.train.iter().take(5) {
            assert_eq!(r.covariates.shape(), (10, features.cols()));
            assert_eq!(r.labels.len(), stream.classes.len());
        }
    }

    #[test]
    fn positive_rate_is_plausible() {
        // Use a larger scale so every class has instances in every split.
        let profile = synthetic::thumos().scaled(0.25);
        let stream = VideoStream::generate(&profile, 1);
        let features = extract(&stream, &FeatureConfig::default(), 2);
        let ds = Dataset::build(&stream, &features, 10, 200, &SplitSpec::default());
        for k in 0..stream.classes.len() {
            let all: Vec<Record> = ds
                .train
                .iter()
                .chain(&ds.calib)
                .chain(&ds.test)
                .cloned()
                .collect();
            let rate = Dataset::positive_rate(&all, k);
            assert!(
                (0.01..0.8).contains(&rate),
                "class {k} positive rate {rate} out of expected range"
            );
        }
    }

    #[test]
    #[should_panic(expected = "no frames left")]
    fn rejects_degenerate_split() {
        let (stream, features) = tiny_setup();
        let spec = SplitSpec {
            train_frac: 0.8,
            calib_frac: 0.2,
            stride: 50,
        };
        let _ = Dataset::build(&stream, &features, 10, 200, &spec);
    }

    #[test]
    fn positive_rate_empty_records() {
        assert_eq!(Dataset::positive_rate(&[], 0), 0.0);
    }
}
