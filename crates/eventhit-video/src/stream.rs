//! Video stream model and the synthetic event planter.
//!
//! A [`VideoStream`] is a frame count plus the ground-truth event instances
//! planted in it. Instances of each class arrive as a Poisson process
//! (exponential gaps) with truncated-normal durations, matching the paper's
//! motivating assumption (§I) and Table I statistics.

use eventhit_rng::rngs::StdRng;
use eventhit_rng::SeedableRng;

use crate::distributions::{exponential, lognormal_mean_std};
use crate::event::{EventClass, EventInstance, OccurrenceInterval};
use crate::synthetic::DatasetProfile;

/// Minimum duration of any planted instance, in frames.
pub const MIN_DURATION: f64 = 5.0;
/// Minimum gap between consecutive instances of the same class.
pub const MIN_GAP: u64 = 10;

/// A video stream with ground-truth event annotations.
#[derive(Debug, Clone)]
pub struct VideoStream {
    /// Number of frames in the stream.
    pub len: u64,
    /// The event classes present (index = class id used by instances).
    pub classes: Vec<EventClass>,
    /// All planted instances, sorted by `(class, start)`.
    pub instances: Vec<EventInstance>,
}

impl VideoStream {
    /// Generates a stream according to `profile`, deterministically for a
    /// given `seed`.
    pub fn generate(profile: &DatasetProfile, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let len = profile.stream_len;
        let mut instances = Vec::new();

        for (class_id, class) in profile.classes.iter().enumerate() {
            // Expected cycle length = duration + gap; choose the gap rate so
            // the expected count matches the profile's occurrence target.
            let occ = class.occurrences.max(1) as f64;
            let mean_gap = (len as f64 / occ - class.duration_mean).max(MIN_GAP as f64);
            let rate = 1.0 / mean_gap;

            let mut cursor = exponential(rate, &mut rng);
            loop {
                let dur = lognormal_mean_std(class.duration_mean, class.duration_std, &mut rng)
                    .clamp(MIN_DURATION, class.duration_mean + 6.0 * class.duration_std)
                    .round() as u64;
                let start = cursor.round() as u64;
                let end = start + dur.saturating_sub(1);
                if end >= len {
                    break;
                }
                instances.push(EventInstance {
                    class: class_id,
                    interval: OccurrenceInterval::new(start, end),
                });
                cursor = (end + MIN_GAP) as f64 + exponential(rate, &mut rng);
            }
        }

        instances.sort_by_key(|i| (i.class, i.interval.start));
        VideoStream {
            len,
            classes: profile.classes.clone(),
            instances,
        }
    }

    /// Iterates over instances of one class, in start order.
    pub fn instances_of(&self, class: usize) -> impl Iterator<Item = &EventInstance> {
        self.instances.iter().filter(move |i| i.class == class)
    }

    /// Number of instances of one class.
    pub fn count_of(&self, class: usize) -> usize {
        self.instances_of(class).count()
    }

    /// First instance of `class` whose interval intersects `[lo, hi]`
    /// (earliest start), if any.
    pub fn first_intersecting(&self, class: usize, lo: u64, hi: u64) -> Option<&EventInstance> {
        self.instances_of(class)
            .find(|i| i.interval.intersects(lo, hi))
    }

    /// All instances of `class` intersecting `[lo, hi]`.
    pub fn all_intersecting(&self, class: usize, lo: u64, hi: u64) -> Vec<&EventInstance> {
        self.instances_of(class)
            .filter(|i| i.interval.intersects(lo, hi))
            .collect()
    }

    /// Fraction of frames covered by at least one instance of `class`.
    pub fn occupancy_of(&self, class: usize) -> f64 {
        let covered: u64 = self.instances_of(class).map(|i| i.interval.len()).sum();
        covered as f64 / self.len as f64
    }

    /// Empirical duration mean/std of a class's planted instances.
    pub fn duration_stats(&self, class: usize) -> (f64, f64) {
        let durs: Vec<f64> = self
            .instances_of(class)
            .map(|i| i.interval.len() as f64)
            .collect();
        if durs.is_empty() {
            return (0.0, 0.0);
        }
        let mean = durs.iter().sum::<f64>() / durs.len() as f64;
        let var = durs.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / durs.len() as f64;
        (mean, var.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic;

    #[test]
    fn generation_is_deterministic() {
        let profile = synthetic::virat().scaled(0.05);
        let a = VideoStream::generate(&profile, 7);
        let b = VideoStream::generate(&profile, 7);
        assert_eq!(a.instances, b.instances);
    }

    #[test]
    fn different_seeds_differ() {
        let profile = synthetic::virat().scaled(0.05);
        let a = VideoStream::generate(&profile, 1);
        let b = VideoStream::generate(&profile, 2);
        assert_ne!(a.instances, b.instances);
    }

    #[test]
    fn instances_respect_bounds_and_ordering() {
        let profile = synthetic::virat().scaled(0.1);
        let s = VideoStream::generate(&profile, 3);
        for i in &s.instances {
            assert!(i.interval.end < s.len);
            assert!(i.class < s.classes.len());
        }
        // Sorted by (class, start) and non-overlapping within class.
        for w in s.instances.windows(2) {
            if w[0].class == w[1].class {
                assert!(w[0].interval.end + MIN_GAP <= w[1].interval.start);
            }
        }
    }

    #[test]
    fn occurrence_counts_near_target() {
        let profile = synthetic::virat();
        let s = VideoStream::generate(&profile, 11);
        for (k, class) in profile.classes.iter().enumerate() {
            let n = s.count_of(k) as f64;
            let target = class.occurrences as f64;
            assert!(
                (n - target).abs() < target * 0.5 + 10.0,
                "{}: planted {n}, target {target}",
                class.paper_id
            );
        }
    }

    #[test]
    fn duration_stats_near_profile() {
        let profile = synthetic::breakfast();
        let s = VideoStream::generate(&profile, 13);
        for (k, class) in profile.classes.iter().enumerate() {
            let (mean, _std) = s.duration_stats(k);
            assert!(
                (mean - class.duration_mean).abs() < class.duration_mean * 0.35,
                "{}: mean {mean}, target {}",
                class.paper_id,
                class.duration_mean
            );
        }
    }

    #[test]
    fn first_intersecting_finds_earliest() {
        let profile = synthetic::thumos().scaled(0.2);
        let s = VideoStream::generate(&profile, 5);
        let any = s.instances_of(0).nth(1).copied();
        if let Some(inst) = any {
            let found = s
                .first_intersecting(0, inst.interval.start, inst.interval.end)
                .expect("instance intersects itself");
            assert!(found.interval.start <= inst.interval.start);
        }
    }

    #[test]
    fn occupancy_is_sane() {
        let profile = synthetic::virat().scaled(0.2);
        let s = VideoStream::generate(&profile, 17);
        for k in 0..s.classes.len() {
            let occ = s.occupancy_of(k);
            assert!((0.0..0.9).contains(&occ), "class {k} occupancy {occ}");
        }
    }
}
