//! Triplet records `(X_n, L_n, T_n)` — the training/calibration/test unit
//! of the paper (§II).
//!
//! At an anchor frame `T_n`, the covariates are the feature vectors of the
//! collection window (`M` consecutive frames ending at `T_n`) and the labels
//! describe, for each event class, whether an instance occurs in the time
//! horizon `(T_n, T_n + H]` and at which (1-based) frame offsets. Events
//! still running at the end of the horizon are *censored*: their end offset
//! is clamped to `H` and flagged.

use eventhit_nn::matrix::Matrix;

use crate::stream::VideoStream;

/// Per-event ground-truth label of one record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventLabel {
    /// True iff an instance of the event intersects the horizon
    /// (`E_k ∈ L_n` in the paper).
    pub present: bool,
    /// Start offset in `[1, H]`; meaningful only when `present`.
    /// Instances already running at the anchor are clamped to 1.
    pub start: u32,
    /// End offset in `[1, H]`; meaningful only when `present`.
    pub end: u32,
    /// True iff the instance runs past the horizon end (`δ_k = 1`).
    pub censored: bool,
}

impl EventLabel {
    /// An absent-event label.
    pub fn absent() -> Self {
        EventLabel {
            present: false,
            start: 0,
            end: 0,
            censored: false,
        }
    }

    /// Number of horizon frames the event occupies (0 when absent).
    pub fn duration(&self) -> u32 {
        if self.present {
            self.end - self.start + 1
        } else {
            0
        }
    }
}

/// One record: covariates plus one label per event class.
#[derive(Debug, Clone)]
pub struct Record {
    /// Anchor frame `T_n` (0-based stream index).
    pub anchor: u64,
    /// Covariates `X_n`, an `M x D` matrix (rows are frames, oldest first).
    pub covariates: Matrix,
    /// One label per event class, in stream class order.
    pub labels: Vec<EventLabel>,
}

/// Computes the ground-truth label of `class` for the horizon
/// `(anchor, anchor + h]`.
///
/// When several instances intersect the horizon, the earliest-starting one
/// is used, per the paper's single-instance simplification (§II).
pub fn horizon_label(stream: &VideoStream, class: usize, anchor: u64, h: usize) -> EventLabel {
    let lo = anchor + 1;
    let hi = anchor + h as u64;
    match stream.first_intersecting(class, lo, hi) {
        None => EventLabel::absent(),
        Some(inst) => {
            let start = inst.interval.start.max(lo) - anchor;
            let censored = inst.interval.end > hi;
            let end = inst.interval.end.min(hi) - anchor;
            EventLabel {
                present: true,
                start: start as u32,
                end: end as u32,
                censored,
            }
        }
    }
}

/// Extracts the record anchored at `anchor` from a precomputed feature
/// matrix (`features: N x D`).
///
/// # Panics
/// Panics if the collection window `[anchor - m + 1, anchor]` or the
/// horizon `(anchor, anchor + h]` falls outside the stream.
pub fn extract_record(
    stream: &VideoStream,
    features: &Matrix,
    anchor: u64,
    m: usize,
    h: usize,
) -> Record {
    assert!(
        anchor + 1 >= m as u64,
        "collection window underflows stream start"
    );
    assert!(
        anchor + h as u64 <= stream.len,
        "horizon overflows stream end (anchor {anchor}, h {h}, len {})",
        stream.len
    );
    let first = (anchor + 1 - m as u64) as usize;
    let rows: Vec<usize> = (first..=anchor as usize).collect();
    let covariates = features.select_rows(&rows);
    let labels = (0..stream.classes.len())
        .map(|k| horizon_label(stream, k, anchor, h))
        .collect();
    Record {
        anchor,
        covariates,
        labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventClass, EventInstance, OccurrenceInterval};

    fn stream_with(instances: Vec<EventInstance>, len: u64, num_classes: usize) -> VideoStream {
        let classes = (0..num_classes)
            .map(|i| EventClass {
                name: format!("c{i}"),
                paper_id: format!("E{i}"),
                occurrences: 1,
                duration_mean: 10.0,
                duration_std: 1.0,
                lead_mean: 20.0,
                lead_std: 5.0,
                feature_noise: 0.0,
            })
            .collect();
        VideoStream {
            len,
            classes,
            instances,
        }
    }

    #[test]
    fn label_absent_when_no_instance() {
        let s = stream_with(vec![], 1000, 1);
        let l = horizon_label(&s, 0, 100, 50);
        assert!(!l.present);
        assert_eq!(l.duration(), 0);
    }

    #[test]
    fn label_offsets_are_one_based() {
        // Event at frames [110, 119]; anchor 100, horizon 50.
        let s = stream_with(
            vec![EventInstance {
                class: 0,
                interval: OccurrenceInterval::new(110, 119),
            }],
            1000,
            1,
        );
        let l = horizon_label(&s, 0, 100, 50);
        assert!(l.present);
        assert_eq!(l.start, 10); // frame 110 = anchor + 10
        assert_eq!(l.end, 19);
        assert!(!l.censored);
        assert_eq!(l.duration(), 10);
    }

    #[test]
    fn label_censored_when_running_past_horizon() {
        let s = stream_with(
            vec![EventInstance {
                class: 0,
                interval: OccurrenceInterval::new(130, 200),
            }],
            1000,
            1,
        );
        let l = horizon_label(&s, 0, 100, 50);
        assert!(l.present);
        assert_eq!(l.start, 30);
        assert_eq!(l.end, 50); // clamped to H
        assert!(l.censored);
    }

    #[test]
    fn label_clamps_ongoing_event_to_start_one() {
        // Event started before the anchor and is still running.
        let s = stream_with(
            vec![EventInstance {
                class: 0,
                interval: OccurrenceInterval::new(90, 120),
            }],
            1000,
            1,
        );
        let l = horizon_label(&s, 0, 100, 50);
        assert!(l.present);
        assert_eq!(l.start, 1);
        assert_eq!(l.end, 20);
        assert!(!l.censored);
    }

    #[test]
    fn label_event_outside_horizon_is_absent() {
        let s = stream_with(
            vec![EventInstance {
                class: 0,
                interval: OccurrenceInterval::new(200, 220),
            }],
            1000,
            1,
        );
        let l = horizon_label(&s, 0, 100, 50);
        assert!(!l.present);
        // Event exactly at horizon end is included.
        let l2 = horizon_label(&s, 0, 150, 50);
        assert!(l2.present);
        assert_eq!(l2.start, 50);
    }

    #[test]
    fn earliest_instance_wins() {
        let s = stream_with(
            vec![
                EventInstance {
                    class: 0,
                    interval: OccurrenceInterval::new(105, 110),
                },
                EventInstance {
                    class: 0,
                    interval: OccurrenceInterval::new(130, 140),
                },
            ],
            1000,
            1,
        );
        let l = horizon_label(&s, 0, 100, 100);
        assert_eq!(l.start, 5);
        assert_eq!(l.end, 10);
    }

    #[test]
    fn extract_record_slices_window_and_labels() {
        let s = stream_with(
            vec![EventInstance {
                class: 1,
                interval: OccurrenceInterval::new(12, 15),
            }],
            100,
            2,
        );
        // Feature matrix: value = frame index in channel 0.
        let mut f = Matrix::zeros(100, 3);
        for t in 0..100 {
            f[(t, 0)] = t as f32;
        }
        let r = extract_record(&s, &f, 9, 5, 20);
        assert_eq!(r.anchor, 9);
        assert_eq!(r.covariates.shape(), (5, 3));
        // Window frames 5..=9, oldest first.
        assert_eq!(r.covariates[(0, 0)], 5.0);
        assert_eq!(r.covariates[(4, 0)], 9.0);
        assert_eq!(r.labels.len(), 2);
        assert!(!r.labels[0].present);
        assert!(r.labels[1].present);
        assert_eq!(r.labels[1].start, 3);
        assert_eq!(r.labels[1].end, 6);
    }

    #[test]
    #[should_panic(expected = "horizon overflows")]
    fn extract_record_rejects_horizon_overflow() {
        let s = stream_with(vec![], 100, 1);
        let f = Matrix::zeros(100, 3);
        let _ = extract_record(&s, &f, 90, 5, 20);
    }
}
