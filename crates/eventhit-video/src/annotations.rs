//! Ground-truth annotation import/export.
//!
//! Lets users bring their own videos: run any detector to produce per-frame
//! features, and provide event annotations in a simple line-oriented text
//! format (in the spirit of VIRAT's annotation files):
//!
//! ```text
//! # eventhit-annotations v1
//! # stream_len <N>
//! # class <id> <name>
//! <class_id> <start_frame> <end_frame>
//! ```
//!
//! Lines starting with `#` are directives or comments; data lines are
//! whitespace-separated `class start end` triples with inclusive frame
//! ranges.

use std::fmt::Write as _;

use crate::event::{EventClass, EventInstance, OccurrenceInterval};
use crate::stream::VideoStream;

/// Errors from parsing an annotation document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnnotationError {
    /// The version header is missing or unsupported.
    BadHeader,
    /// A malformed line, with its 1-based line number.
    Malformed(usize),
    /// An instance references an undeclared class id.
    UnknownClass(usize),
    /// An instance lies outside the declared stream length.
    OutOfBounds(usize),
    /// `stream_len` directive missing.
    MissingStreamLen,
}

impl std::fmt::Display for AnnotationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnnotationError::BadHeader => write!(f, "missing or unsupported header"),
            AnnotationError::Malformed(l) => write!(f, "malformed annotation at line {l}"),
            AnnotationError::UnknownClass(l) => write!(f, "unknown class id at line {l}"),
            AnnotationError::OutOfBounds(l) => write!(f, "instance out of bounds at line {l}"),
            AnnotationError::MissingStreamLen => write!(f, "missing stream_len directive"),
        }
    }
}

impl std::error::Error for AnnotationError {}

/// Serializes a stream's ground truth to the annotation format.
pub fn to_annotation_text(stream: &VideoStream) -> String {
    let mut out = String::new();
    out.push_str("# eventhit-annotations v1\n");
    let _ = writeln!(out, "# stream_len {}", stream.len);
    for (id, class) in stream.classes.iter().enumerate() {
        let _ = writeln!(out, "# class {id} {}", class.name.replace('\n', " "));
    }
    for inst in &stream.instances {
        let _ = writeln!(
            out,
            "{} {} {}",
            inst.class, inst.interval.start, inst.interval.end
        );
    }
    out
}

/// Parses an annotation document into a [`VideoStream`].
///
/// Classes declared in the header get placeholder generator statistics
/// (irrelevant when the stream's features come from a real detector, not
/// the synthetic generator).
pub fn from_annotation_text(text: &str) -> Result<VideoStream, AnnotationError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, l)) if l.trim() == "# eventhit-annotations v1" => {}
        _ => return Err(AnnotationError::BadHeader),
    }

    let mut stream_len: Option<u64> = None;
    let mut classes: Vec<EventClass> = Vec::new();
    let mut instances: Vec<EventInstance> = Vec::new();

    for (idx, raw) in lines {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim();
            if let Some(v) = rest.strip_prefix("stream_len ") {
                stream_len = Some(
                    v.trim()
                        .parse()
                        .map_err(|_| AnnotationError::Malformed(line_no))?,
                );
            } else if let Some(v) = rest.strip_prefix("class ") {
                let mut parts = v.splitn(2, ' ');
                let id: usize = parts
                    .next()
                    .and_then(|p| p.parse().ok())
                    .ok_or(AnnotationError::Malformed(line_no))?;
                let name = parts.next().unwrap_or("").trim().to_string();
                if id != classes.len() {
                    return Err(AnnotationError::Malformed(line_no));
                }
                classes.push(EventClass {
                    name,
                    paper_id: format!("C{id}"),
                    occurrences: 0,
                    duration_mean: 1.0,
                    duration_std: 0.0,
                    lead_mean: 1.0,
                    lead_std: 0.0,
                    feature_noise: 0.0,
                });
            }
            // Other comments ignored.
            continue;
        }

        let mut parts = line.split_whitespace();
        let class: usize = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or(AnnotationError::Malformed(line_no))?;
        let start: u64 = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or(AnnotationError::Malformed(line_no))?;
        let end: u64 = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or(AnnotationError::Malformed(line_no))?;
        if parts.next().is_some() || start > end {
            return Err(AnnotationError::Malformed(line_no));
        }
        if class >= classes.len() {
            return Err(AnnotationError::UnknownClass(line_no));
        }
        let len = stream_len.ok_or(AnnotationError::MissingStreamLen)?;
        if end >= len {
            return Err(AnnotationError::OutOfBounds(line_no));
        }
        instances.push(EventInstance {
            class,
            interval: OccurrenceInterval::new(start, end),
        });
    }

    let len = stream_len.ok_or(AnnotationError::MissingStreamLen)?;
    instances.sort_by_key(|i| (i.class, i.interval.start));
    // Fill in observed occurrence counts.
    for (id, class) in classes.iter_mut().enumerate() {
        class.occurrences = instances.iter().filter(|i| i.class == id).count() as u32;
    }
    Ok(VideoStream {
        len,
        classes,
        instances,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic;

    #[test]
    fn round_trip_preserves_ground_truth() {
        let stream = VideoStream::generate(&synthetic::thumos().scaled(0.05), 3);
        let text = to_annotation_text(&stream);
        let parsed = from_annotation_text(&text).unwrap();
        assert_eq!(parsed.len, stream.len);
        assert_eq!(parsed.instances, stream.instances);
        assert_eq!(parsed.classes.len(), stream.classes.len());
        for (a, b) in parsed.classes.iter().zip(&stream.classes) {
            assert_eq!(a.name, b.name);
        }
    }

    #[test]
    fn parses_hand_written_document() {
        let text = "\
# eventhit-annotations v1
# stream_len 1000
# class 0 Truck arrival
# class 1 Gate opening

0 100 150
1 140 160
0 700 720
";
        let s = from_annotation_text(text).unwrap();
        assert_eq!(s.len, 1000);
        assert_eq!(s.classes[1].name, "Gate opening");
        assert_eq!(s.count_of(0), 2);
        assert_eq!(s.count_of(1), 1);
        assert_eq!(s.classes[0].occurrences, 2);
        // Sorted by (class, start).
        assert!(s.instances[0].interval.start < s.instances[1].interval.start);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            from_annotation_text("hello"),
            Err(AnnotationError::BadHeader)
        ));
        assert!(matches!(
            from_annotation_text(""),
            Err(AnnotationError::BadHeader)
        ));
    }

    #[test]
    fn rejects_malformed_lines() {
        let text = "# eventhit-annotations v1\n# stream_len 100\n# class 0 x\n0 nonsense 5\n";
        assert!(matches!(
            from_annotation_text(text),
            Err(AnnotationError::Malformed(4))
        ));
        let text = "# eventhit-annotations v1\n# stream_len 100\n# class 0 x\n0 9 5\n";
        assert!(matches!(
            from_annotation_text(text),
            Err(AnnotationError::Malformed(4))
        ));
    }

    #[test]
    fn rejects_unknown_class_and_out_of_bounds() {
        let text = "# eventhit-annotations v1\n# stream_len 100\n# class 0 x\n3 1 5\n";
        assert!(matches!(
            from_annotation_text(text),
            Err(AnnotationError::UnknownClass(4))
        ));
        let text = "# eventhit-annotations v1\n# stream_len 100\n# class 0 x\n0 50 150\n";
        assert!(matches!(
            from_annotation_text(text),
            Err(AnnotationError::OutOfBounds(4))
        ));
    }

    #[test]
    fn rejects_missing_stream_len() {
        let text = "# eventhit-annotations v1\n# class 0 x\n0 1 5\n";
        assert!(matches!(
            from_annotation_text(text),
            Err(AnnotationError::MissingStreamLen)
        ));
    }

    #[test]
    fn rejects_out_of_order_class_ids() {
        let text = "# eventhit-annotations v1\n# stream_len 100\n# class 1 x\n";
        assert!(matches!(
            from_annotation_text(text),
            Err(AnnotationError::Malformed(3))
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = AnnotationError::Malformed(7);
        assert!(e.to_string().contains("line 7"));
    }
}
