//! Throughput models of the vision-model stages.
//!
//! The paper accounts wall-clock time in three stages (Fig. 10): feature
//! extraction (a lightweight detector such as YOLOv3, ~25 fps per §VI.D
//! footnote 8), the EventHit network itself (negligible), and the CI's heavy
//! event-detection model (I3D-class, the dominant cost). We cannot run the
//! actual models, so each stage carries a frames-per-second rating used to
//! convert frame counts into simulated seconds; EventHit inference time is
//! measured for real.

/// Throughput rating of one processing stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageModel {
    /// Human-readable stage name.
    pub name: String,
    /// Frames processed per second.
    pub fps: f64,
}

impl StageModel {
    /// Creates a stage model.
    pub fn new(name: &str, fps: f64) -> Self {
        assert!(fps > 0.0, "fps must be positive");
        StageModel {
            name: name.to_string(),
            fps,
        }
    }

    /// YOLOv3-class lightweight detector used for feature extraction
    /// (≈25 fps; paper §VI.D footnote 8 and §VI.H).
    pub fn yolo_v3() -> Self {
        StageModel::new("YOLOv3 feature extraction", 25.0)
    }

    /// I3D-class event-detection model served by the cloud infrastructure.
    /// Rated ≈8 fps so that CI time dominates as in Fig. 10 (95.9% of total
    /// at REC=0.9 on TA10).
    pub fn i3d_ci() -> Self {
        StageModel::new("CI event detection (I3D)", 8.0)
    }

    /// Seconds needed to process `frames` frames.
    pub fn seconds_for(&self, frames: u64) -> f64 {
        frames as f64 / self.fps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_scale_linearly() {
        let m = StageModel::new("x", 25.0);
        assert!((m.seconds_for(25) - 1.0).abs() < 1e-12);
        assert!((m.seconds_for(250) - 10.0).abs() < 1e-12);
        assert_eq!(m.seconds_for(0), 0.0);
    }

    #[test]
    fn presets_have_expected_order() {
        // The CI model must be slower than the feature extractor for the
        // paper's Fig. 10 proportions to hold.
        assert!(StageModel::i3d_ci().fps < StageModel::yolo_v3().fps);
    }

    #[test]
    #[should_panic(expected = "fps must be positive")]
    fn rejects_zero_fps() {
        let _ = StageModel::new("bad", 0.0);
    }
}
