//! Simulated per-frame feature extraction.
//!
//! The paper extracts covariates from lightweight detectors (YOLOv3 /
//! Faster R-CNN) over real video. We substitute a generative model of those
//! detector outputs (DESIGN.md §3.2) that preserves the structure the
//! predictor must exploit:
//!
//! * **approach channel** per event class — a continuous precursor that ramps
//!   up during a stochastic lead window before each occurrence (e.g. a truck
//!   nearing a gate), saturates during the event, and decays afterwards.
//!   Corrupted by Gaussian noise and by *false precursors* that ramp up
//!   without a following event, so existence prediction has irreducible
//!   error — the reason conformal calibration is needed.
//! * **active channel** per event class — a binary "the event's target
//!   objects are detected in this frame" output with per-frame miss /
//!   false-alarm noise. Crucially, objects are present far more often than
//!   the event occurs (a parked car is not a "person opening a vehicle"):
//!   decoy *presence periods* fire the channel without any event. This is
//!   the channel the VQS (BlazeIt-style) baseline thresholds, and the decoys
//!   are why object-count predicates cannot match a true event predictor
//!   (§VII: "video querying frameworks lack the ability to make
//!   predictions").
//! * three shared nuisance channels — background object count, global motion
//!   energy, and a slow scene-phase sinusoid.

use eventhit_rng::rngs::StdRng;
use eventhit_rng::{Rng, SeedableRng};

use eventhit_nn::matrix::Matrix;

use crate::distributions::{lognormal_mean_std, poisson, standard_normal, truncated_normal};
use crate::stream::VideoStream;

/// Number of shared (class-independent) channels.
pub const SHARED_CHANNELS: usize = 3;

/// Total feature dimensionality for a stream with `num_classes` classes.
pub fn feature_dim(num_classes: usize) -> usize {
    SHARED_CHANNELS + 2 * num_classes
}

/// Column of class `k`'s continuous precursor channel.
pub fn approach_channel(k: usize) -> usize {
    SHARED_CHANNELS + 2 * k
}

/// Column of class `k`'s binary activity channel.
pub fn active_channel(k: usize) -> usize {
    SHARED_CHANNELS + 2 * k + 1
}

/// Knobs of the simulated detector / feature generator.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureConfig {
    /// Expected number of false precursors per true occurrence.
    pub false_precursor_rate: f64,
    /// Frames over which the approach channel decays after an event ends.
    pub decay_frames: f64,
    /// Per-frame probability the detector misses an active event frame.
    pub miss_rate: f64,
    /// Per-frame probability of a false alarm on an inactive frame.
    pub false_alarm_rate: f64,
    /// Expected number of decoy object-presence periods per true
    /// occurrence (objects in the scene without the event happening).
    pub presence_decoy_rate: f64,
    /// Decoy period durations relative to the class's event durations.
    pub decoy_duration_scale: f64,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig {
            false_precursor_rate: 0.5,
            decay_frames: 30.0,
            miss_rate: 0.15,
            false_alarm_rate: 0.01,
            presence_decoy_rate: 2.0,
            decoy_duration_scale: 1.5,
        }
    }
}

/// Generates the `N x D` frame-feature matrix for a stream.
///
/// Deterministic for a given `(stream, cfg, seed)` triple.
pub fn extract(stream: &VideoStream, cfg: &FeatureConfig, seed: u64) -> Matrix {
    let n = stream.len as usize;
    let k = stream.classes.len();
    let d = feature_dim(k);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut features = Matrix::zeros(n, d);

    fill_background(&mut features, n, &mut rng);
    fill_scene_phase(&mut features, n);

    // Per-class channels; motion energy accumulates the clean activity.
    let mut motion = vec![0.0f32; n];
    for (class_id, class) in stream.classes.iter().enumerate() {
        let mut approach = vec![0.0f32; n];
        let mut active = vec![0.0f32; n];

        // Decoy presence periods: target objects visible with no event.
        let n_decoys =
            (cfg.presence_decoy_rate * stream.count_of(class_id) as f64).round() as usize;
        for _ in 0..n_decoys {
            let dur = lognormal_mean_std(
                class.duration_mean * cfg.decoy_duration_scale,
                class.duration_std * cfg.decoy_duration_scale,
                &mut rng,
            )
            .clamp(5.0, class.duration_mean * 6.0)
            .round() as u64;
            let pos = rng.random_range(0..n as u64);
            let end = (pos + dur).min(n as u64);
            for t in pos..end {
                active[t as usize] = 1.0;
            }
        }

        for inst in stream.instances_of(class_id) {
            let lead = truncated_normal(
                class.lead_mean,
                class.lead_std,
                20.0,
                class.lead_mean + 3.0 * class.lead_std,
                &mut rng,
            );
            paint_ramp(
                &mut approach,
                inst.interval.start,
                inst.interval.end,
                lead,
                1.0,
                cfg.decay_frames,
            );
            for t in inst.interval.start..=inst.interval.end {
                active[t as usize] = 1.0;
                motion[t as usize] += 1.0;
            }
        }

        // False precursors: ramps that never become an event.
        let n_false =
            (cfg.false_precursor_rate * stream.count_of(class_id) as f64).round() as usize;
        for _ in 0..n_false {
            let pos = rng.random_range(0..n as u64);
            let lead = truncated_normal(
                class.lead_mean,
                class.lead_std,
                20.0,
                class.lead_mean + 3.0 * class.lead_std,
                &mut rng,
            );
            let peak = rng.random_range(0.3..0.8) as f32;
            paint_ramp(&mut approach, pos, pos, lead, peak, lead / 2.0);
        }

        // Detector noise.
        let noise = class.feature_noise as f32;
        let a_col = approach_channel(class_id);
        let act_col = active_channel(class_id);
        for t in 0..n {
            let noisy = (approach[t] + noise * standard_normal(&mut rng) as f32).clamp(0.0, 1.2);
            features[(t, a_col)] = noisy;

            let is_active = active[t] >= 0.5;
            let observed = if is_active {
                if rng.random::<f64>() < cfg.miss_rate {
                    0.0
                } else {
                    1.0
                }
            } else if rng.random::<f64>() < cfg.false_alarm_rate {
                1.0
            } else {
                0.0
            };
            features[(t, act_col)] = observed;
        }
    }

    // Motion energy channel: background + mean class activity + noise.
    let k_f = k.max(1) as f32;
    for t in 0..n {
        let bg = features[(t, 0)];
        let v = 0.2 * bg + motion[t] / k_f + 0.05 * standard_normal(&mut rng) as f32;
        features[(t, 1)] = v.clamp(0.0, 2.0);
    }

    features
}

/// Paints a precursor ramp peaking at `peak`: linear rise over `lead`
/// frames before `start`, flat at `peak` during `[start, end]`, then a
/// linear decay over `decay` frames. Uses `max` composition so overlapping
/// ramps don't cancel.
fn paint_ramp(channel: &mut [f32], start: u64, end: u64, lead: f64, peak: f32, decay: f64) {
    let n = channel.len() as u64;
    let lead = lead.max(1.0);
    let ramp_start = start.saturating_sub(lead as u64);
    for t in ramp_start..start.min(n) {
        let frac = (t - ramp_start + 1) as f32 / lead as f32;
        let v = peak * frac;
        if channel[t as usize] < v {
            channel[t as usize] = v;
        }
    }
    for t in start..=end.min(n.saturating_sub(1)) {
        if channel[t as usize] < peak {
            channel[t as usize] = peak;
        }
    }
    let decay = decay.max(1.0);
    let decay_end = (end + 1 + decay as u64).min(n);
    for t in (end + 1).min(n)..decay_end {
        let frac = (t - end) as f32 / decay as f32;
        let v = peak * (1.0 - frac);
        if channel[t as usize] < v {
            channel[t as usize] = v;
        }
    }
}

fn fill_background(features: &mut Matrix, n: usize, rng: &mut StdRng) {
    // Slowly varying Poisson background object count, resampled every
    // 25 frames and linearly interpolated, normalized to roughly [0, 1].
    let step = 25usize;
    let mut prev = poisson(5.0, rng) as f32 / 10.0;
    let mut t = 0usize;
    while t < n {
        let next = poisson(5.0, rng) as f32 / 10.0;
        let span = step.min(n - t);
        for i in 0..span {
            let frac = i as f32 / step as f32;
            let v = prev + (next - prev) * frac + 0.03 * standard_normal(rng) as f32;
            features[(t + i, 0)] = v.max(0.0);
        }
        prev = next;
        t += span;
    }
}

fn fill_scene_phase(features: &mut Matrix, n: usize) {
    for t in 0..n {
        features[(t, 2)] = 0.5 + 0.5 * (2.0 * std::f32::consts::PI * t as f32 / 10_000.0).sin();
    }
}

/// Counts frames in `[lo, hi]` (inclusive, clamped to the stream) whose
/// activity channel for `class` fired — the quantity the VQS baseline
/// thresholds.
pub fn active_count(features: &Matrix, class: usize, lo: u64, hi: u64) -> u32 {
    let col = active_channel(class);
    let lo = lo as usize;
    let hi = (hi as usize).min(features.rows().saturating_sub(1));
    if lo > hi {
        return 0;
    }
    (lo..=hi).filter(|&t| features[(t, col)] >= 0.5).count() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic;

    fn small_stream(seed: u64) -> VideoStream {
        VideoStream::generate(&synthetic::thumos().scaled(0.05), seed)
    }

    #[test]
    fn dimensions_match_class_count() {
        assert_eq!(feature_dim(0), 3);
        assert_eq!(feature_dim(3), 9);
        assert_eq!(approach_channel(0), 3);
        assert_eq!(active_channel(0), 4);
        assert_eq!(approach_channel(2), 7);
    }

    #[test]
    fn extract_shape_and_determinism() {
        let s = small_stream(1);
        let cfg = FeatureConfig::default();
        let a = extract(&s, &cfg, 42);
        let b = extract(&s, &cfg, 42);
        assert_eq!(a.shape(), (s.len as usize, feature_dim(s.classes.len())));
        assert_eq!(a, b);
        let c = extract(&s, &cfg, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn approach_rises_before_events() {
        let s = small_stream(2);
        let cfg = FeatureConfig {
            false_precursor_rate: 0.0,
            ..Default::default()
        };
        let f = extract(&s, &cfg, 7);
        let col = approach_channel(0);
        // Average approach value just before event starts should clearly
        // exceed the global average (precursor signal present).
        let mut pre_vals = Vec::new();
        for inst in s.instances_of(0) {
            let st = inst.interval.start;
            if st > 30 {
                for t in st - 20..st {
                    pre_vals.push(f[(t as usize, col)]);
                }
            }
        }
        let pre_mean = pre_vals.iter().sum::<f32>() / pre_vals.len().max(1) as f32;
        let global_mean = (0..f.rows()).map(|t| f[(t, col)]).sum::<f32>() / f.rows() as f32;
        assert!(
            pre_mean > global_mean + 0.2,
            "pre={pre_mean} global={global_mean}"
        );
    }

    #[test]
    fn active_channel_tracks_events_with_noise() {
        let s = small_stream(3);
        let cfg = FeatureConfig::default();
        // Decoys fire the channel outside events too; in-event hit rate is
        // what this test checks.
        let f = extract(&s, &cfg, 9);
        let col = active_channel(0);
        let mut hits = 0u32;
        let mut total = 0u32;
        for inst in s.instances_of(0) {
            for t in inst.interval.start..=inst.interval.end {
                total += 1;
                if f[(t as usize, col)] >= 0.5 {
                    hits += 1;
                }
            }
        }
        let hit_rate = hits as f64 / total.max(1) as f64;
        // Should be ~1 - miss_rate = 0.85.
        assert!((hit_rate - 0.85).abs() < 0.06, "hit_rate={hit_rate}");
    }

    #[test]
    fn false_alarm_rate_outside_events() {
        let s = small_stream(4);
        // Disable decoys so "outside events" means the channel's base rate.
        let cfg = FeatureConfig {
            presence_decoy_rate: 0.0,
            ..Default::default()
        };
        let f = extract(&s, &cfg, 11);
        let col = active_channel(1);
        let mut alarms = 0u32;
        let mut total = 0u32;
        let covered: Vec<(u64, u64)> = s
            .instances_of(1)
            .map(|i| (i.interval.start, i.interval.end))
            .collect();
        for t in 0..s.len {
            if covered.iter().any(|&(a, b)| (a..=b).contains(&t)) {
                continue;
            }
            total += 1;
            if f[(t as usize, col)] >= 0.5 {
                alarms += 1;
            }
        }
        let rate = alarms as f64 / total.max(1) as f64;
        assert!((rate - 0.01).abs() < 0.01, "false alarm rate={rate}");
    }

    #[test]
    fn active_count_counts_window() {
        let s = small_stream(5);
        let cfg = FeatureConfig {
            miss_rate: 0.0,
            false_alarm_rate: 0.0,
            presence_decoy_rate: 0.0,
            ..Default::default()
        };
        let f = extract(&s, &cfg, 13);
        let inst = s.instances_of(0).next().expect("at least one instance");
        let cnt = active_count(&f, 0, inst.interval.start, inst.interval.end);
        assert_eq!(cnt as u64, inst.interval.len());
        // Out-of-range query clamps instead of panicking.
        let _ = active_count(&f, 0, s.len + 10, s.len + 20);
    }

    #[test]
    fn decoys_fire_channel_outside_events() {
        let s = small_stream(6);
        let with = extract(&s, &FeatureConfig::default(), 15);
        let without = extract(
            &s,
            &FeatureConfig {
                presence_decoy_rate: 0.0,
                ..Default::default()
            },
            15,
        );
        let col = active_channel(0);
        let count = |f: &Matrix| (0..f.rows()).filter(|&t| f[(t, col)] >= 0.5).count();
        assert!(
            count(&with) > count(&without) * 2,
            "decoys should multiply channel firings: {} vs {}",
            count(&with),
            count(&without)
        );
    }

    #[test]
    fn paint_ramp_shapes() {
        let mut ch = vec![0.0f32; 100];
        paint_ramp(&mut ch, 40, 49, 20.0, 1.0, 10.0);
        assert_eq!(ch[45], 1.0); // inside event
        assert!(ch[39] > 0.9); // end of lead ramp
        assert!(ch[25] < 0.35 && ch[25] > 0.0); // early ramp
        assert!(ch[54] > 0.0 && ch[54] < 1.0); // decay
        assert_eq!(ch[70], 0.0); // after decay
        assert_eq!(ch[10], 0.0); // before ramp
    }

    #[test]
    fn paint_ramp_max_composition() {
        let mut ch = vec![0.0f32; 50];
        paint_ramp(&mut ch, 20, 25, 10.0, 0.5, 5.0);
        paint_ramp(&mut ch, 22, 28, 10.0, 1.0, 5.0);
        assert_eq!(ch[23], 1.0);
        assert!(ch[20] >= 0.5);
    }

    #[test]
    fn paint_ramp_clamps_to_stream_end() {
        let mut ch = vec![0.0f32; 30];
        // Event interval extends past the buffer; must not panic.
        paint_ramp(&mut ch, 25, 40, 10.0, 1.0, 10.0);
        assert_eq!(ch[29], 1.0);
    }
}
