//! Empirical validation of the marginal coverage guarantees (Theorems 4.1
//! and 5.1) over many calibration/test resamples.
//!
//! Split conformal prediction promises *marginal* coverage: averaged over
//! the random calibration/test split, C-CLASSIFY misses a truly occurring
//! event with probability at most `1 − c`, and the C-REGRESS band covers
//! the true value with probability at least `α`. A single split can be
//! lucky or unlucky, so these tests aggregate over ≥ 200 independent
//! resamples drawn from the in-repo RNG (one sub-stream per resample, so
//! the whole test is deterministic for its fixed master seed).

use eventhit_conformal::{
    ConformalClassifier, ConformalRegressor, IntervalCalibration, Nonconformity,
};
use eventhit_rng::normal::standard_normal;
use eventhit_rng::rngs::StdRng;
use eventhit_rng::Rng;

const RESAMPLES: usize = 250;
const CALIB: usize = 150;
const TEST: usize = 40;

/// Draws a plausible detector score for a truly-occurring event: skewed
/// towards 1 but with mass everywhere in (0, 1), i.i.d. across draws —
/// the exchangeability assumption of Theorem 4.1.
fn positive_score(rng: &mut StdRng) -> f64 {
    let u: f64 = rng.random();
    u.sqrt() // density 2u on (0,1): most mass near 1, none negative
}

#[test]
fn classify_miss_rate_is_bounded_by_one_minus_c() {
    for c in [0.8, 0.9] {
        let mut misses = 0usize;
        let mut total = 0usize;
        for rep in 0..RESAMPLES {
            let mut rng = StdRng::stream(0xC1A5, rep as u64);
            let calib: Vec<f64> = (0..CALIB).map(|_| positive_score(&mut rng)).collect();
            let clf = ConformalClassifier::fit(&calib, Nonconformity::OneMinusScore);
            for _ in 0..TEST {
                let b = positive_score(&mut rng);
                if !clf.predict(b, c) {
                    misses += 1;
                }
                total += 1;
            }
        }
        let miss_rate = misses as f64 / total as f64;
        // Theorem 4.1: P(miss) ≤ 1 − c. Allow Monte-Carlo slack of ~4
        // standard errors at 10 000 aggregated test points.
        let se = ((1.0 - c) * c / total as f64).sqrt();
        assert!(
            miss_rate <= (1.0 - c) + 4.0 * se,
            "c={c}: miss rate {miss_rate} exceeds {}",
            1.0 - c
        );
        // The guarantee should also not be vacuous: at these calibration
        // sizes the classifier must actually reject some scores.
        assert!(miss_rate > 0.0, "c={c}: suspiciously perfect predictor");
    }
}

#[test]
fn regressor_band_coverage_is_at_least_alpha() {
    for alpha in [0.8, 0.9] {
        let mut covered = 0usize;
        let mut total = 0usize;
        for rep in 0..RESAMPLES {
            let mut rng = StdRng::stream(0x9E65, rep as u64);
            // Heteroscedastic-ish noise model: y = mu + eps, eps ~ N(0, 2).
            let noise = |rng: &mut StdRng| 2.0 * standard_normal(rng);
            let calib: Vec<f64> = (0..CALIB).map(|_| noise(&mut rng).abs()).collect();
            let reg = ConformalRegressor::fit(calib);
            for _ in 0..TEST {
                let mu: f64 = rng.random_range(0.0..100.0);
                let y = mu + noise(&mut rng);
                let (lo, hi) = reg.band(mu, alpha);
                if (lo..=hi).contains(&y) {
                    covered += 1;
                }
                total += 1;
            }
        }
        let coverage = covered as f64 / total as f64;
        let se = (alpha * (1.0 - alpha) / total as f64).sqrt();
        assert!(
            coverage >= alpha - 4.0 * se,
            "alpha={alpha}: coverage {coverage} below target"
        );
    }
}

#[test]
fn interval_adjustment_covers_start_and_end() {
    // The asymmetric interval adjustment of Algorithm 2: after widening by
    // the calibrated quantiles, the true start should rarely precede the
    // adjusted start and the true end rarely exceed the adjusted end.
    let alpha = 0.9;
    let h = 250u32;
    let mut start_ok = 0usize;
    let mut end_ok = 0usize;
    let mut total = 0usize;
    for rep in 0..RESAMPLES {
        let mut rng = StdRng::stream(0x1A7E, rep as u64);
        // Prediction errors in frames: N(0, 5) for both endpoints.
        let err = |rng: &mut StdRng| 5.0 * standard_normal(rng);
        let s_res: Vec<f64> = (0..CALIB).map(|_| err(&mut rng).abs()).collect();
        let e_res: Vec<f64> = (0..CALIB).map(|_| err(&mut rng).abs()).collect();
        let cal = IntervalCalibration::fit(s_res, e_res);
        for _ in 0..TEST {
            let true_start = rng.random_range(30u32..120);
            let true_end = true_start + rng.random_range(10u32..80);
            let pred_start = (true_start as f64 + err(&mut rng))
                .round()
                .clamp(1.0, h as f64) as u32;
            let pred_end = (true_end as f64 + err(&mut rng))
                .round()
                .clamp(pred_start as f64, h as f64) as u32;
            let (adj_s, adj_e) = cal.adjust(pred_start.max(1), pred_end, h, alpha);
            if adj_s <= true_start {
                start_ok += 1;
            }
            if adj_e >= true_end {
                end_ok += 1;
            }
            total += 1;
        }
    }
    let se = (alpha * (1.0 - alpha) / total as f64).sqrt();
    let floor = alpha - 4.0 * se;
    let s_cov = start_ok as f64 / total as f64;
    let e_cov = end_ok as f64 / total as f64;
    assert!(s_cov >= floor, "start coverage {s_cov} below {floor}");
    assert!(e_cov >= floor, "end coverage {e_cov} below {floor}");
}
