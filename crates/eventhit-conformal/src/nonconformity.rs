//! Non-conformity measures for binary classification scores.
//!
//! A non-conformity measure maps a classifier's positive-class score
//! `b ∈ [0, 1]` to a real value that is *larger* when the example looks
//! *less* like a positive. Theorem 4.1 guarantees marginal validity for
//! any measure; measures that are monotone transforms of each other yield
//! identical p-values (the p-value only depends on the score ordering),
//! which the tests verify explicitly — this is the paper's footnote 5.

/// A non-conformity measure on positive-class scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Nonconformity {
    /// `a = 1 - b` — the paper's choice (§IV.B).
    OneMinusScore,
    /// `a = -ln(b)` — a monotone transform of `OneMinusScore`; produces
    /// identical p-values (used by the ablation bench to demonstrate
    /// measure-independence).
    NegLogScore,
    /// `a = 0.5 - b` (signed margin to the decision boundary); again a
    /// monotone transform.
    Margin,
}

impl Nonconformity {
    /// Applies the measure to a positive-class score.
    pub fn score(self, b: f64) -> f64 {
        match self {
            Nonconformity::OneMinusScore => 1.0 - b,
            Nonconformity::NegLogScore => -(b.max(1e-12).ln()),
            Nonconformity::Margin => 0.5 - b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventhit_rng::testkit::vec as vec_of;
    use eventhit_rng::{prop_assert, prop_assert_eq, prop_assume, property};

    #[test]
    fn one_minus_score_values() {
        assert_eq!(Nonconformity::OneMinusScore.score(0.0), 1.0);
        assert_eq!(Nonconformity::OneMinusScore.score(1.0), 0.0);
        assert_eq!(Nonconformity::OneMinusScore.score(0.25), 0.75);
    }

    #[test]
    fn neg_log_is_stable_at_zero() {
        assert!(Nonconformity::NegLogScore.score(0.0).is_finite());
    }

    property! {
        /// All measures are strictly decreasing in the score: a higher
        /// positive-class score always means lower non-conformity.
        #[test]
        fn measures_are_monotone_decreasing(b1 in 0.0..1.0f64, b2 in 0.0..1.0f64) {
            prop_assume!(b1 < b2);
            for m in [Nonconformity::OneMinusScore, Nonconformity::NegLogScore, Nonconformity::Margin] {
                prop_assert!(m.score(b1) > m.score(b2), "{m:?}");
            }
        }

        /// Monotone measures preserve orderings, hence identical p-values.
        #[test]
        fn measures_agree_on_ordering(scores in vec_of(0.001..0.999f64, 2..50)) {
            let order = |m: Nonconformity| {
                let mut idx: Vec<usize> = (0..scores.len()).collect();
                idx.sort_by(|&i, &j| m.score(scores[i]).partial_cmp(&m.score(scores[j])).unwrap());
                idx
            };
            let a = order(Nonconformity::OneMinusScore);
            prop_assert_eq!(&a, &order(Nonconformity::NegLogScore));
            prop_assert_eq!(&a, &order(Nonconformity::Margin));
        }
    }
}
