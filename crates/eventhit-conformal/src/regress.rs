//! Split conformal regression — the machinery behind C-REGRESS
//! (Algorithm 2).
//!
//! [`ConformalRegressor`] implements the generic split-conformal band: fit
//! on absolute residuals of a calibration set, then widen any point
//! prediction by the ⌈α·n⌉-th residual. [`IntervalCalibration`] packages the
//! paper's use of two regressors per event — one for the occurrence-interval
//! start, one for the end — and applies the asymmetric adjustment of
//! Algorithm 2 lines 17–18 (start moved earlier, end moved later, clamped
//! to `[1, H]`).

use crate::quantile::{ceil_quantile, sort_residuals};

/// A fitted split-conformal regressor over absolute residuals.
#[derive(Debug, Clone)]
pub struct ConformalRegressor {
    residuals: Vec<f64>,
}

impl ConformalRegressor {
    /// Fits from absolute residuals `|y_i - mu(x_i)|` of the calibration
    /// split. Negative inputs are rejected.
    pub fn fit(residuals: Vec<f64>) -> Self {
        assert!(
            residuals.iter().all(|&r| r >= 0.0),
            "residuals must be absolute values"
        );
        ConformalRegressor {
            residuals: sort_residuals(residuals),
        }
    }

    /// Number of calibration residuals.
    pub fn calibration_size(&self) -> usize {
        self.residuals.len()
    }

    /// The stored calibration residuals, ascending — the regressor's
    /// complete state. Feeding them back through
    /// [`ConformalRegressor::fit`] reconstructs it bit-identically.
    pub fn residuals(&self) -> &[f64] {
        &self.residuals
    }

    /// The half-width `q̂` of the prediction band at coverage `alpha`.
    ///
    /// Algorithm 2 (lines 15–16) uses the `⌈α·n⌉`-th smallest residual; we
    /// use the inclusive rank `⌈α·(n+1)⌉` (clamped to `n`), the standard
    /// split-conformal convention for which Theorem 5.1 holds exactly —
    /// without the `+1` the marginal coverage can fall short of `α` by
    /// `1/(n+1)`. Returns 0 when no residuals were provided.
    pub fn quantile(&self, alpha: f64) -> f64 {
        let n = self.residuals.len();
        if n == 0 {
            return 0.0;
        }
        let adjusted = (alpha * (n as f64 + 1.0) / n as f64).min(1.0);
        ceil_quantile(&self.residuals, adjusted)
    }

    /// The symmetric prediction band `[mu - q̂, mu + q̂]` around a point
    /// prediction (Theorem 5.1).
    pub fn band(&self, prediction: f64, alpha: f64) -> (f64, f64) {
        let q = self.quantile(alpha);
        (prediction - q, prediction + q)
    }
}

/// Per-event start/end calibration for occurrence-interval predictions —
/// the quantiles `q̂_k^s`, `q̂_k^e` of Algorithm 2.
#[derive(Debug, Clone)]
pub struct IntervalCalibration {
    start: ConformalRegressor,
    end: ConformalRegressor,
}

impl IntervalCalibration {
    /// Fits from the absolute start/end residuals of calibration records
    /// where the event truly occurs (Algorithm 2 lines 6–12).
    pub fn fit(start_residuals: Vec<f64>, end_residuals: Vec<f64>) -> Self {
        IntervalCalibration {
            start: ConformalRegressor::fit(start_residuals),
            end: ConformalRegressor::fit(end_residuals),
        }
    }

    /// Calibrated start/end quantiles at coverage `alpha`.
    pub fn quantiles(&self, alpha: f64) -> (f64, f64) {
        (self.start.quantile(alpha), self.end.quantile(alpha))
    }

    /// Number of calibration residual pairs.
    pub fn calibration_size(&self) -> usize {
        self.start.calibration_size()
    }

    /// The fitted start-offset regressor.
    pub fn start(&self) -> &ConformalRegressor {
        &self.start
    }

    /// The fitted end-offset regressor.
    pub fn end(&self) -> &ConformalRegressor {
        &self.end
    }

    /// Applies the C-REGRESS adjustment (Eq. 11): the predicted interval
    /// `[s, e]` (1-based offsets within a horizon of `h` frames) is widened
    /// to `[max(1, s - q̂^s), min(h, e + q̂^e)]`.
    pub fn adjust(&self, start: u32, end: u32, h: u32, alpha: f64) -> (u32, u32) {
        assert!(
            start >= 1 && start <= end && end <= h,
            "invalid interval [{start}, {end}] for h={h}"
        );
        let (qs, qe) = self.quantiles(alpha);
        let new_start = ((start as f64 - qs).floor().max(1.0)) as u32;
        let new_end = ((end as f64 + qe).ceil().min(h as f64)) as u32;
        (new_start, new_end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventhit_rng::rngs::StdRng;
    use eventhit_rng::testkit::vec as vec_of;
    use eventhit_rng::{prop_assert, property};
    use eventhit_rng::{Rng, SeedableRng};

    #[test]
    fn band_widens_with_alpha() {
        let reg = ConformalRegressor::fit(vec![1.0, 2.0, 5.0, 10.0]);
        let (l1, h1) = reg.band(0.0, 0.5);
        let (l2, h2) = reg.band(0.0, 0.95);
        assert!(l2 <= l1 && h2 >= h1);
        assert_eq!(h1, 5.0); // inclusive rank ceil(0.5 * 5) = 3rd smallest
        assert_eq!(h2, 10.0); // ceil(0.95 * 5) = 5 clamped to 4th
    }

    #[test]
    fn empty_regressor_gives_zero_band() {
        let reg = ConformalRegressor::fit(vec![]);
        assert_eq!(reg.quantile(0.9), 0.0);
        assert_eq!(reg.band(5.0, 0.9), (5.0, 5.0));
    }

    #[test]
    #[should_panic(expected = "absolute values")]
    fn rejects_negative_residuals() {
        let _ = ConformalRegressor::fit(vec![1.0, -0.5]);
    }

    #[test]
    fn coverage_guarantee_holds_empirically() {
        // Theorem 5.1: P(y in band) >= alpha for exchangeable residuals.
        // The guarantee is marginal over calibration *and* test draws, so
        // we average over many calibration sets.
        let mut rng = StdRng::seed_from_u64(5);
        let noise = |rng: &mut StdRng| -> f64 { (rng.random::<f64>() - 0.5) * 20.0 };
        for &alpha in &[0.5, 0.8, 0.9, 0.95] {
            let mut covered = 0u32;
            let mut trials = 0u32;
            for _ in 0..250 {
                let calib: Vec<f64> = (0..200).map(|_| noise(&mut rng).abs()).collect();
                let reg = ConformalRegressor::fit(calib);
                let (lo, hi) = reg.band(0.0, alpha);
                for _ in 0..40 {
                    let y = noise(&mut rng);
                    trials += 1;
                    if (lo..=hi).contains(&y) {
                        covered += 1;
                    }
                }
            }
            let cov = covered as f64 / trials as f64;
            assert!(cov >= alpha - 0.01, "alpha={alpha} coverage={cov}");
        }
    }

    #[test]
    fn adjust_widens_and_clamps() {
        let cal = IntervalCalibration::fit(vec![3.0, 5.0, 8.0], vec![2.0, 4.0, 6.0]);
        // alpha = 1.0 -> quantiles (8, 6).
        let (s, e) = cal.adjust(10, 20, 100, 1.0);
        assert_eq!((s, e), (2, 26));
        // Clamping at horizon edges.
        let (s, e) = cal.adjust(3, 98, 100, 1.0);
        assert_eq!((s, e), (1, 100));
    }

    #[test]
    fn adjust_with_zero_quantiles_is_identity() {
        let cal = IntervalCalibration::fit(vec![0.0, 0.0], vec![0.0, 0.0]);
        assert_eq!(cal.adjust(5, 9, 50, 0.9), (5, 9));
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn adjust_rejects_inverted_interval() {
        let cal = IntervalCalibration::fit(vec![1.0], vec![1.0]);
        let _ = cal.adjust(9, 5, 50, 0.9);
    }

    property! {
        /// Theorem 5.1 monotonicity: bands are nested in alpha.
        #[test]
        fn bands_nested_in_alpha(
            residuals in vec_of(0.0..100.0f64, 1..100),
            mu in -50.0..50.0f64,
            a1 in 0.01..1.0f64,
            a2 in 0.01..1.0f64,
        ) {
            let (lo_a, hi_a) = if a1 <= a2 { (a1, a2) } else { (a2, a1) };
            let reg = ConformalRegressor::fit(residuals);
            let (l1, h1) = reg.band(mu, lo_a);
            let (l2, h2) = reg.band(mu, hi_a);
            prop_assert!(l2 <= l1 && h2 >= h1);
        }

        /// The adjusted interval always contains the original and stays in
        /// [1, h].
        #[test]
        fn adjusted_interval_contains_original(
            rs in vec_of(0.0..50.0f64, 1..50),
            re in vec_of(0.0..50.0f64, 1..50),
            s in 1u32..100,
            len in 0u32..50,
            alpha in 0.01..1.0f64,
        ) {
            let h = 200u32;
            let e = (s + len).min(h);
            let cal = IntervalCalibration::fit(rs, re);
            let (ns, ne) = cal.adjust(s, e, h, alpha);
            prop_assert!(ns <= s && ne >= e);
            prop_assert!(ns >= 1 && ne <= h);
        }
    }
}
