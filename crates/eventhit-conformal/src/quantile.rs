//! Order-statistic quantiles with the paper's ⌈α·n⌉ convention.

/// Returns the `⌈α·n⌉`-th smallest value (1-indexed) of `sorted`,
/// the quantile convention of split conformal regression (§V.A) and of
/// Algorithm 2 lines 15–16.
///
/// `alpha` is clamped to `(0, 1]`; the index is clamped to `[1, n]`.
///
/// # Panics
/// Panics if `sorted` is empty or not ascending.
pub fn ceil_quantile(sorted: &[f64], alpha: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted ascending"
    );
    let n = sorted.len();
    let alpha = alpha.clamp(f64::MIN_POSITIVE, 1.0);
    let rank = ((alpha * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

/// Sorts a residual sample ascending (IEEE total order, so NaNs sort to the
/// end instead of poisoning the comparison; the conformal pipeline never
/// produces NaN residuals, but a stray NaN must not corrupt the sort).
pub fn sort_residuals(mut residuals: Vec<f64>) -> Vec<f64> {
    residuals.sort_by(f64::total_cmp);
    residuals
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventhit_rng::testkit::vec as vec_of;
    use eventhit_rng::{prop_assert, property};

    #[test]
    fn quantile_known_values() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(ceil_quantile(&v, 0.2), 1.0); // ceil(1.0) = 1
        assert_eq!(ceil_quantile(&v, 0.21), 2.0); // ceil(1.05) = 2
        assert_eq!(ceil_quantile(&v, 0.5), 3.0);
        assert_eq!(ceil_quantile(&v, 0.9), 5.0);
        assert_eq!(ceil_quantile(&v, 1.0), 5.0);
    }

    #[test]
    fn quantile_single_element() {
        assert_eq!(ceil_quantile(&[7.5], 0.01), 7.5);
        assert_eq!(ceil_quantile(&[7.5], 1.0), 7.5);
    }

    #[test]
    fn quantile_clamps_alpha() {
        let v = vec![1.0, 2.0];
        assert_eq!(ceil_quantile(&v, 0.0), 1.0);
        assert_eq!(ceil_quantile(&v, 2.0), 2.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_rejects_empty() {
        let _ = ceil_quantile(&[], 0.5);
    }

    #[test]
    fn sort_residuals_handles_nan() {
        let sorted = sort_residuals(vec![3.0, f64::NAN, 1.0]);
        assert_eq!(sorted[0], 1.0);
    }

    property! {
        /// The quantile is always an element of the sample and is monotone
        /// in alpha.
        #[test]
        fn quantile_monotone_in_alpha(
            mut xs in vec_of(-1e6..1e6f64, 1..200),
            a1 in 0.01..1.0f64,
            a2 in 0.01..1.0f64,
        ) {
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let (lo, hi) = if a1 <= a2 { (a1, a2) } else { (a2, a1) };
            let q_lo = ceil_quantile(&xs, lo);
            let q_hi = ceil_quantile(&xs, hi);
            prop_assert!(q_lo <= q_hi);
            prop_assert!(xs.contains(&q_lo));
        }

        /// At least ⌈α·n⌉ sample points are ≤ the α-quantile.
        #[test]
        fn quantile_covers_alpha_fraction(
            mut xs in vec_of(-1e3..1e3f64, 1..100),
            alpha in 0.01..1.0f64,
        ) {
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let q = ceil_quantile(&xs, alpha);
            let below = xs.iter().filter(|&&x| x <= q).count();
            let needed = ((alpha * xs.len() as f64).ceil() as usize).clamp(1, xs.len());
            prop_assert!(below >= needed);
        }
    }
}
