//! Mondrian (category-conditional) conformal classification.
//!
//! Theorem 4.2's guarantee is *marginal*: averaged over all horizons, the
//! miss rate is at most `1 − c`, but specific sub-populations (say, events
//! that start late in the horizon, where the precursor is barely visible)
//! can be missed far more often. The Mondrian construction (Vovk et al.,
//! 2005, ch. 4) restores the guarantee *per category*: calibration scores
//! are bucketed by a category function known at calibration time, and each
//! bucket carries its own conformal p-value. Categories with no
//! calibration examples fall back to the pooled (marginal) calibrator —
//! conservative for recall.

use crate::classify::ConformalClassifier;
use crate::nonconformity::Nonconformity;

/// A Mondrian conformal classifier over `C` categories.
#[derive(Debug, Clone)]
pub struct MondrianClassifier {
    per_category: Vec<ConformalClassifier>,
    pooled: ConformalClassifier,
}

impl MondrianClassifier {
    /// Fits from `(score, category)` pairs of the positive calibration
    /// examples; `categories` is the number of buckets.
    ///
    /// # Panics
    /// Panics if a pair references a category `>= categories`.
    pub fn fit(positives: &[(f64, usize)], categories: usize, measure: Nonconformity) -> Self {
        assert!(categories > 0, "at least one category required");
        let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); categories];
        let mut all = Vec::with_capacity(positives.len());
        for &(b, cat) in positives {
            assert!(cat < categories, "category {cat} out of range");
            buckets[cat].push(b);
            all.push(b);
        }
        MondrianClassifier {
            per_category: buckets
                .into_iter()
                .map(|scores| ConformalClassifier::fit(&scores, measure))
                .collect(),
            pooled: ConformalClassifier::fit(&all, measure),
        }
    }

    /// Number of categories.
    pub fn categories(&self) -> usize {
        self.per_category.len()
    }

    /// Positive calibration count in one category.
    pub fn category_size(&self, cat: usize) -> usize {
        self.per_category[cat].calibration_size()
    }

    /// The category-conditional p-value. Categories with an empty
    /// calibration bucket fall back to the pooled p-value.
    pub fn p_value(&self, b: f64, cat: usize) -> f64 {
        let cc = &self.per_category[cat];
        if cc.calibration_size() == 0 {
            self.pooled.p_value(b)
        } else {
            cc.p_value(b)
        }
    }

    /// Category-conditional positive prediction at confidence `c`.
    pub fn predict(&self, b: f64, cat: usize, c: f64) -> bool {
        self.p_value(b, cat) >= 1.0 - c
    }
}

/// A convenient category function for EventHit: buckets the horizon by the
/// (predicted) start offset into `buckets` equal slices — late-starting
/// events are the hard sub-population.
pub fn start_offset_category(start: u32, horizon: u32, buckets: usize) -> usize {
    assert!(buckets > 0 && horizon > 0);
    let start = start.clamp(1, horizon);
    (((start - 1) as usize * buckets) / horizon as usize).min(buckets - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventhit_rng::rngs::StdRng;
    use eventhit_rng::{Rng, SeedableRng};

    #[test]
    fn category_function_buckets_evenly() {
        assert_eq!(start_offset_category(1, 100, 4), 0);
        assert_eq!(start_offset_category(25, 100, 4), 0);
        assert_eq!(start_offset_category(26, 100, 4), 1);
        assert_eq!(start_offset_category(100, 100, 4), 3);
        // Clamping.
        assert_eq!(start_offset_category(0, 100, 4), 0);
        assert_eq!(start_offset_category(500, 100, 4), 3);
    }

    #[test]
    fn empty_category_falls_back_to_pooled() {
        let m = MondrianClassifier::fit(&[(0.9, 0), (0.8, 0)], 2, Nonconformity::OneMinusScore);
        assert_eq!(m.category_size(1), 0);
        // Pooled fallback equals the plain classifier on all positives.
        let pooled = ConformalClassifier::fit(&[0.9, 0.8], Nonconformity::OneMinusScore);
        for b in [0.1, 0.5, 0.85, 0.95] {
            assert_eq!(m.p_value(b, 1), pooled.p_value(b));
        }
    }

    #[test]
    fn per_category_calibration_differs_from_marginal() {
        // Category 0: strong scores (~0.9); category 1: weak scores (~0.3).
        let mut positives = Vec::new();
        for i in 0..50 {
            positives.push((0.85 + 0.001 * i as f64 / 10.0, 0usize));
            positives.push((0.25 + 0.001 * i as f64 / 10.0, 1usize));
        }
        let m = MondrianClassifier::fit(&positives, 2, Nonconformity::OneMinusScore);
        // A 0.4-scoring example is very nonconforming for category 0 but
        // conforming for category 1.
        assert!(m.p_value(0.4, 0) < 0.1);
        assert!(m.p_value(0.4, 1) > 0.5);
    }

    #[test]
    fn conditional_coverage_holds_per_category() {
        // Two sub-populations with very different score distributions: the
        // marginal classifier over-misses the weak category; the Mondrian
        // one bounds the miss rate in BOTH.
        let mut rng = StdRng::seed_from_u64(11);
        let draw = |cat: usize, rng: &mut StdRng| -> f64 {
            match cat {
                0 => 0.7 + 0.3 * rng.random::<f64>(), // strong
                _ => 0.1 + 0.3 * rng.random::<f64>(), // weak
            }
        };
        let c = 0.9;
        let mut marginal_miss = [0usize; 2];
        let mut mondrian_miss = [0usize; 2];
        let mut totals = [0usize; 2];
        for _ in 0..200 {
            let calib: Vec<(f64, usize)> = (0..200)
                .map(|i| {
                    let cat = i % 2;
                    (draw(cat, &mut rng), cat)
                })
                .collect();
            let flat: Vec<f64> = calib.iter().map(|&(b, _)| b).collect();
            let plain = ConformalClassifier::fit(&flat, Nonconformity::OneMinusScore);
            let mondrian = MondrianClassifier::fit(&calib, 2, Nonconformity::OneMinusScore);
            for _ in 0..20 {
                let cat = rng.random_range(0..2usize);
                let b = draw(cat, &mut rng);
                totals[cat] += 1;
                if !plain.predict(b, c) {
                    marginal_miss[cat] += 1;
                }
                if !mondrian.predict(b, cat, c) {
                    mondrian_miss[cat] += 1;
                }
            }
        }
        let rate = |m: usize, t: usize| m as f64 / t as f64;
        // The marginal classifier concentrates its misses on the weak
        // category, blowing the conditional bound...
        assert!(
            rate(marginal_miss[1], totals[1]) > 0.15,
            "weak-category marginal miss {}",
            rate(marginal_miss[1], totals[1])
        );
        // ...while the Mondrian classifier bounds both categories.
        for cat in 0..2 {
            let r = rate(mondrian_miss[cat], totals[cat]);
            assert!(r <= 0.12, "cat {cat} mondrian miss {r} exceeds 1-c");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_category() {
        let _ = MondrianClassifier::fit(&[(0.5, 3)], 2, Nonconformity::OneMinusScore);
    }
}
