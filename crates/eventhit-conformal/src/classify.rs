//! Conformal binary classification — the machinery behind C-CLASSIFY
//! (Algorithm 1).
//!
//! The calibrator stores the non-conformity scores of the *positive*
//! calibration examples. For a new example with score `b_o`, the p-value is
//! the fraction of positive calibration examples at least as non-conforming
//! as the new one:
//!
//! ```text
//! p_o = (|{n : y_n = 1 and a_o <= a_n}| + 1) / (|positives| + 1)
//! ```
//!
//! and the example is predicted positive iff `p_o >= 1 - c` for confidence
//! level `c`. Theorem 4.2 then bounds the probability of missing a true
//! positive by `1 - c` (marginally, under exchangeability — the probability
//! is over the draw of the calibration set *and* the test point).
//!
//! Note: Algorithm 1 in the paper typesets the numerator without the `+1`
//! that counts the test point itself; the standard conformal p-value
//! (Vovk et al., 2005) includes it, and without it the miss probability can
//! exceed `1 - c` by `1 / (n + 1)`. We implement the inclusive version so
//! Theorem 4.1 holds exactly.

use crate::nonconformity::Nonconformity;

/// A fitted conformal binary classifier for one event type.
#[derive(Debug, Clone)]
pub struct ConformalClassifier {
    measure: Nonconformity,
    /// Non-conformity scores of positive calibration examples, ascending.
    calib: Vec<f64>,
}

impl ConformalClassifier {
    /// Fits the calibrator from the positive-class scores `b_n` of the
    /// calibration examples whose true label is positive.
    ///
    /// An empty calibration set is allowed: every p-value is then
    /// `1 / 1 = 1` divided by… strictly, `0 + something / (0 + 1)`; we
    /// define it as 1.0 (always predict positive), the conservative choice
    /// that preserves the recall guarantee vacuously.
    pub fn fit(positive_scores: &[f64], measure: Nonconformity) -> Self {
        let mut calib: Vec<f64> = positive_scores.iter().map(|&b| measure.score(b)).collect();
        calib.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        ConformalClassifier { measure, calib }
    }

    /// Number of positive calibration examples.
    pub fn calibration_size(&self) -> usize {
        self.calib.len()
    }

    /// The non-conformity measure this calibrator was fitted with.
    pub fn measure(&self) -> Nonconformity {
        self.measure
    }

    /// The stored non-conformity scores (already transformed by the
    /// measure), ascending — the calibrator's complete state, which
    /// [`ConformalClassifier::from_parts`] reconstructs bit-identically.
    pub fn calibration_scores(&self) -> &[f64] {
        &self.calib
    }

    /// Rebuilds a calibrator from a measure and its stored
    /// *non-conformity* scores (as returned by
    /// [`ConformalClassifier::calibration_scores`] — not raw `b` scores;
    /// those go through [`ConformalClassifier::fit`]). Re-sorts
    /// defensively so a hand-built score list cannot break the
    /// `partition_point` invariant.
    pub fn from_parts(measure: Nonconformity, mut calib: Vec<f64>) -> Self {
        calib.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        ConformalClassifier { measure, calib }
    }

    /// The p-value of a new example with positive-class score `b_o`.
    pub fn p_value(&self, b_o: f64) -> f64 {
        if self.calib.is_empty() {
            return 1.0;
        }
        let a_o = self.measure.score(b_o);
        // Count of calibration scores >= a_o  ==  n - #{a_n < a_o},
        // plus one for the test point itself.
        let below = self.calib.partition_point(|&a| a < a_o);
        let ge = self.calib.len() - below;
        (ge + 1) as f64 / (self.calib.len() + 1) as f64
    }

    /// Predicts the positive label at confidence level `c`
    /// (`p_value >= 1 - c`, Eq. 9).
    pub fn predict(&self, b_o: f64, c: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&c),
            "confidence level must be in [0, 1]"
        );
        self.p_value(b_o) >= 1.0 - c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventhit_rng::rngs::StdRng;
    use eventhit_rng::testkit::vec as vec_of;
    use eventhit_rng::{prop_assert, property};
    use eventhit_rng::{Rng, SeedableRng};

    #[test]
    fn p_value_hand_computed() {
        // Positive calibration scores b: [0.9, 0.8, 0.6, 0.3]
        // => non-conformity a: [0.1, 0.2, 0.4, 0.7] sorted.
        let cc = ConformalClassifier::fit(&[0.9, 0.8, 0.6, 0.3], Nonconformity::OneMinusScore);
        // b_o = 0.5 => a_o = 0.5; calib scores >= 0.5: {0.7} => (1+1)/5.
        assert!((cc.p_value(0.5) - 0.4).abs() < 1e-12);
        // b_o = 0.95 => a_o = 0.05; all 4 >= => (4+1)/5 = 1.
        assert!((cc.p_value(0.95) - 1.0).abs() < 1e-12);
        // b_o = 0.1 => a_o = 0.9; none >= => 1/5.
        assert!((cc.p_value(0.1) - 0.2).abs() < 1e-12);
        // Tie: b_o = 0.8 => a_o = 0.2; {0.2, 0.4, 0.7} (<= counts ties) => 4/5.
        assert!((cc.p_value(0.8) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_calibration_predicts_positive() {
        let cc = ConformalClassifier::fit(&[], Nonconformity::OneMinusScore);
        assert_eq!(cc.p_value(0.01), 1.0);
        assert!(cc.predict(0.01, 0.5));
    }

    #[test]
    fn higher_confidence_is_more_permissive() {
        // Eq. 10: c1 > c2 implies the prediction set at c1 contains the one
        // at c2 — if an example is predicted positive at c2, it must also be
        // at c1.
        let cc = ConformalClassifier::fit(&[0.9, 0.7, 0.5, 0.3, 0.1], Nonconformity::OneMinusScore);
        for b in [0.05, 0.2, 0.4, 0.6, 0.8, 0.95] {
            if cc.predict(b, 0.6) {
                assert!(cc.predict(b, 0.9), "b={b}");
            }
        }
    }

    #[test]
    fn p_value_monotone_in_score() {
        let cc = ConformalClassifier::fit(&[0.9, 0.7, 0.5, 0.3], Nonconformity::OneMinusScore);
        let mut prev = -1.0;
        for b in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
            let p = cc.p_value(b);
            assert!(p >= prev, "p-value must be non-decreasing in b");
            prev = p;
        }
    }

    #[test]
    fn marginal_coverage_guarantee_holds_empirically() {
        // Theorem 4.2: for exchangeable data, P(miss) <= 1 - c, where the
        // probability is MARGINAL — over the draw of the calibration set
        // *and* the test point. A single calibration draw can over- or
        // under-cover by several percent, so we average over many draws.
        let mut rng = StdRng::seed_from_u64(99);
        let draw_pos_score = |rng: &mut StdRng| -> f64 {
            0.4 + 0.6 * rng.random::<f64>() // uniform in [0.4, 1.0)
        };

        for &c in &[0.5, 0.7, 0.9, 0.95] {
            let mut missed = 0u32;
            let mut trials = 0u32;
            for _ in 0..300 {
                let calib: Vec<f64> = (0..200).map(|_| draw_pos_score(&mut rng)).collect();
                let cc = ConformalClassifier::fit(&calib, Nonconformity::OneMinusScore);
                for _ in 0..40 {
                    let b = draw_pos_score(&mut rng);
                    trials += 1;
                    if !cc.predict(b, c) {
                        missed += 1;
                    }
                }
            }
            let miss_rate = missed as f64 / trials as f64;
            assert!(
                miss_rate <= (1.0 - c) + 0.015,
                "c={c}: miss rate {miss_rate} exceeds guarantee {}",
                1.0 - c
            );
        }
    }

    #[test]
    fn identical_p_values_across_monotone_measures() {
        let scores = [0.9, 0.75, 0.6, 0.42, 0.3, 0.11];
        let a = ConformalClassifier::fit(&scores, Nonconformity::OneMinusScore);
        let b = ConformalClassifier::fit(&scores, Nonconformity::NegLogScore);
        let m = ConformalClassifier::fit(&scores, Nonconformity::Margin);
        for q in [0.05, 0.33, 0.5, 0.77, 0.95] {
            assert_eq!(a.p_value(q), b.p_value(q));
            assert_eq!(a.p_value(q), m.p_value(q));
        }
    }

    property! {
        /// p-values always lie in [1/(n+1), 1].
        #[test]
        fn p_value_range(
            calib in vec_of(0.0..1.0f64, 0..100),
            b in 0.0..1.0f64,
        ) {
            let cc = ConformalClassifier::fit(&calib, Nonconformity::OneMinusScore);
            let p = cc.p_value(b);
            prop_assert!((0.0..=1.0).contains(&p));
            let n = calib.len() as f64;
            prop_assert!(p >= 1.0 / (n + 1.0) - 1e-12);
        }

        /// Monotonicity of prediction sets in c (Eq. 10), property-based.
        #[test]
        fn prediction_monotone_in_confidence(
            calib in vec_of(0.0..1.0f64, 1..50),
            b in 0.0..1.0f64,
            c1 in 0.0..1.0f64,
            c2 in 0.0..1.0f64,
        ) {
            let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
            let cc = ConformalClassifier::fit(&calib, Nonconformity::OneMinusScore);
            if cc.predict(b, lo) {
                prop_assert!(cc.predict(b, hi));
            }
        }
    }
}
