//! # eventhit-conformal
//!
//! Conformal prediction machinery for EventHit (§IV and §V of the paper):
//!
//! * [`classify::ConformalClassifier`] — conformal binary classification
//!   with p-values over a positive calibration set (Algorithm 1,
//!   C-CLASSIFY). Confidence level `c` bounds the probability of missing a
//!   true positive by `1 - c` (Theorem 4.2).
//! * [`regress::ConformalRegressor`] / [`regress::IntervalCalibration`] —
//!   split conformal regression over absolute residuals (Algorithm 2,
//!   C-REGRESS). Coverage level `α` guarantees the true start/end frames
//!   fall within the widened band with probability ≥ α (Theorem 5.2).
//!
//! Both guarantees are *marginal* (averaged over exchangeable draws), not
//! conditional; the property tests in this crate check them empirically.

pub mod classify;
pub mod mondrian;
pub mod nonconformity;
pub mod quantile;
pub mod regress;

pub use classify::ConformalClassifier;
pub use mondrian::MondrianClassifier;
pub use nonconformity::Nonconformity;
pub use regress::{ConformalRegressor, IntervalCalibration};
