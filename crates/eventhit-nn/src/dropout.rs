//! Inverted dropout.
//!
//! During training each entry is zeroed with probability `p` and survivors
//! are scaled by `1 / (1 - p)`, so the expected activation is unchanged and
//! no rescaling is needed at inference time.

use eventhit_rng::Rng;

use crate::matrix::Matrix;

/// Inverted dropout layer.
#[derive(Clone)]
pub struct Dropout {
    p: f32,
    training: bool,
    mask: Option<Matrix>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p in [0, 1)`.
    pub fn new(p: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability must be in [0, 1)"
        );
        Dropout {
            p,
            training: true,
            mask: None,
        }
    }

    /// Drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }

    /// Switches between training (stochastic) and inference (identity) mode.
    pub fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    /// True when in training mode.
    pub fn is_training(&self) -> bool {
        self.training
    }

    /// Forward pass. In training mode, samples and caches a mask for the
    /// following [`Dropout::backward`] call; in inference mode this is the
    /// identity.
    pub fn forward<R: Rng + ?Sized>(&mut self, x: &Matrix, rng: &mut R) -> Matrix {
        if !self.training || self.p == 0.0 {
            self.mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask_data: Vec<f32> = (0..x.len())
            .map(|_| {
                if rng.random::<f32>() < keep {
                    scale
                } else {
                    0.0
                }
            })
            .collect();
        let mask = Matrix::from_vec(x.rows(), x.cols(), mask_data);
        let out = x.hadamard(&mask);
        self.mask = Some(mask);
        out
    }

    /// Backward pass: applies the cached mask to the incoming gradient.
    pub fn backward(&self, grad_out: &Matrix) -> Matrix {
        match &self.mask {
            Some(mask) => grad_out.hadamard(mask),
            None => grad_out.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventhit_rng::rngs::StdRng;
    use eventhit_rng::SeedableRng;

    #[test]
    fn inference_mode_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut d = Dropout::new(0.5);
        d.set_training(false);
        let x = Matrix::uniform(3, 4, -1.0, 1.0, &mut rng);
        let y = d.forward(&x, &mut rng);
        assert_eq!(x, y);
        let g = Matrix::filled(3, 4, 1.0);
        assert_eq!(d.backward(&g), g);
    }

    #[test]
    fn zero_probability_is_identity_even_in_training() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut d = Dropout::new(0.0);
        let x = Matrix::uniform(2, 2, -1.0, 1.0, &mut rng);
        assert_eq!(d.forward(&x, &mut rng), x);
    }

    #[test]
    fn training_mode_preserves_expectation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut d = Dropout::new(0.3);
        let x = Matrix::filled(100, 100, 1.0);
        let y = d.forward(&x, &mut rng);
        let mean = y.as_slice().iter().sum::<f32>() / y.len() as f32;
        assert!((mean - 1.0).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn surviving_entries_are_scaled() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut d = Dropout::new(0.5);
        let x = Matrix::filled(10, 10, 1.0);
        let y = d.forward(&x, &mut rng);
        for &v in y.as_slice() {
            assert!(v == 0.0 || (v - 2.0).abs() < 1e-6, "unexpected value {v}");
        }
    }

    #[test]
    fn backward_uses_same_mask_as_forward() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut d = Dropout::new(0.4);
        let x = Matrix::filled(5, 5, 1.0);
        let y = d.forward(&x, &mut rng);
        let g = Matrix::filled(5, 5, 1.0);
        let gy = d.backward(&g);
        // Gradient is zero exactly where the output was zero.
        for (o, gr) in y.as_slice().iter().zip(gy.as_slice()) {
            assert_eq!(*o == 0.0, *gr == 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "dropout probability")]
    fn rejects_p_of_one() {
        let _ = Dropout::new(1.0);
    }
}
