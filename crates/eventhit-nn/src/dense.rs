//! Fully connected (dense) layer with manual backprop.

use eventhit_rng::Rng;

use crate::activation::Activation;
use crate::init::Init;
use crate::matrix::Matrix;
use crate::optimizer::ParamMut;
use crate::quant::{affine_t_quant, QuantizedMatrix};

/// A fully connected layer `y = act(x W^T + b)`.
///
/// Weights are stored `out x in` (row `j` holds the weights of output
/// unit `j`), so the forward pass is `x.matmul_t(&w)` on a batch matrix
/// `x: batch x in`.
#[derive(Clone)]
pub struct Dense {
    w: Matrix,
    b: Matrix,
    dw: Matrix,
    db: Matrix,
    act: Activation,
    /// Forward cache: input batch.
    cache_x: Option<Matrix>,
    /// Forward cache: pre-activation.
    cache_pre: Option<Matrix>,
    /// Forward cache: post-activation output.
    cache_out: Option<Matrix>,
}

impl Dense {
    /// Creates a dense layer with `input` inputs and `output` outputs.
    pub fn new<R: Rng + ?Sized>(
        input: usize,
        output: usize,
        act: Activation,
        init: Init,
        rng: &mut R,
    ) -> Self {
        Dense {
            w: init.matrix(output, input, rng),
            b: Matrix::zeros(1, output),
            dw: Matrix::zeros(output, input),
            db: Matrix::zeros(1, output),
            act,
            cache_x: None,
            cache_pre: None,
            cache_out: None,
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.w.cols()
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.w.rows()
    }

    /// Immutable access to the weight matrix (`out x in`).
    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    /// Mutable access to the weight matrix, for tests and serialization.
    pub fn weights_mut(&mut self) -> &mut Matrix {
        &mut self.w
    }

    /// Immutable access to the bias row vector (`1 x out`).
    pub fn bias(&self) -> &Matrix {
        &self.b
    }

    /// Mutable access to the bias row vector.
    pub fn bias_mut(&mut self) -> &mut Matrix {
        &mut self.b
    }

    /// Number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Pre-activation `x W^T + b` (single fused [`Matrix::affine_t`]
    /// pass, bit-identical to `matmul_t` + bias broadcast).
    fn affine(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.input_dim(), "dense input dim mismatch");
        x.affine_t(&self.w, self.b.as_slice())
    }

    /// Forward pass over a batch (`x: batch x in`), caching intermediates
    /// for a subsequent [`Dense::backward`] call.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let pre = self.affine(x);
        let out = self.act.apply(&pre);
        self.cache_x = Some(x.clone());
        self.cache_pre = Some(pre);
        self.cache_out = Some(out.clone());
        out
    }

    /// Forward pass without caching (no backprop possible). Pure `&self`,
    /// so a trained layer can be shared across threads for parallel
    /// inference; the arithmetic is identical to [`Dense::forward`].
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        self.act.apply(&self.affine(x))
    }

    /// Snapshots the layer onto the int8 fast lane (see
    /// [`crate::quant::InferenceLane`]). Weights are quantized once;
    /// the returned layer is immutable and cheap to clone.
    pub fn quantized(&self) -> QuantizedDense {
        QuantizedDense {
            qw: QuantizedMatrix::quantize(&self.w),
            b: self.b.clone(),
            act: self.act,
        }
    }

    /// Backward pass. `grad_out` is dL/d(output), shape `batch x out`.
    /// Accumulates dW/db into the layer's gradient buffers and returns
    /// dL/d(input) with shape `batch x in`.
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let x = self
            .cache_x
            .as_ref()
            .expect("Dense::backward before forward");
        let pre = self
            .cache_pre
            .as_ref()
            .expect("missing pre-activation cache");
        let out = self.cache_out.as_ref().expect("missing output cache");
        assert_eq!(grad_out.shape(), out.shape(), "grad_out shape mismatch");

        // dL/d(pre) = dL/d(out) ⊙ act'(pre)
        let dpre = grad_out.hadamard(&self.act.deriv(pre, out));

        // dW = dpre^T x  (out x in); db = column sums of dpre.
        self.dw.add_assign(&dpre.t_matmul(x));
        let db = dpre.sum_rows();
        for (g, &v) in self.db.as_mut_slice().iter_mut().zip(&db) {
            *g += v;
        }

        // dX = dpre W  (batch x in).
        dpre.matmul(&self.w)
    }

    /// Zeros the accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.dw.fill_zero();
        self.db.fill_zero();
    }

    /// Yields `(parameter, gradient)` pairs for the optimizer, in a stable
    /// order.
    pub fn params_mut(&mut self) -> Vec<ParamMut<'_>> {
        vec![
            ParamMut {
                value: &mut self.w,
                grad: &self.dw,
            },
            ParamMut {
                value: &mut self.b,
                grad: &self.db,
            },
        ]
    }
}

/// An int8-weight snapshot of a [`Dense`] layer: the quantized inference
/// fast lane (`y = act(x Wq^T + b)` with f32 accumulation).
#[derive(Clone)]
pub struct QuantizedDense {
    qw: QuantizedMatrix,
    b: Matrix,
    act: Activation,
}

impl QuantizedDense {
    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.qw.cols()
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.qw.rows()
    }

    /// Quantized forward pass (`x: batch x in`). Pure `&self` and
    /// sequential, so results are bit-identical across worker counts.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.input_dim(), "dense input dim mismatch");
        self.act
            .apply(&affine_t_quant(x, &self.qw, self.b.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradients;
    use eventhit_rng::rngs::StdRng;
    use eventhit_rng::SeedableRng;

    #[test]
    fn forward_known_values() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = Dense::new(2, 2, Activation::Linear, Init::Zeros, &mut rng);
        // W = [[1, 2], [3, 4]], b = [0.5, -0.5]
        *layer.weights_mut() = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        *layer.bias_mut() = Matrix::from_vec(1, 2, vec![0.5, -0.5]);
        let x = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let y = layer.forward(&x);
        assert_eq!(y.as_slice(), &[3.5, 6.5]);
    }

    #[test]
    fn output_shape_follows_batch() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = Dense::new(5, 3, Activation::Tanh, Init::XavierUniform, &mut rng);
        let x = Matrix::uniform(7, 5, -1.0, 1.0, &mut rng);
        let y = layer.forward(&x);
        assert_eq!(y.shape(), (7, 3));
    }

    #[test]
    fn gradients_match_finite_differences() {
        for act in [
            Activation::Linear,
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::Relu,
        ] {
            let mut rng = StdRng::seed_from_u64(2);
            let mut layer = Dense::new(4, 3, act, Init::XavierUniform, &mut rng);
            let x = Matrix::uniform(5, 4, -1.0, 1.0, &mut rng);
            // Loss: 0.5 * sum(y^2), so dL/dy = y.
            let loss_fn = |layer: &mut Dense| {
                let y = layer.forward(&x);
                0.5 * y.as_slice().iter().map(|&v| v * v).sum::<f32>()
            };
            let grad_fn = |layer: &mut Dense| {
                layer.zero_grad();
                let y = layer.forward(&x);
                layer.backward(&y);
            };
            let max_err = check_gradients(&mut layer, loss_fn, grad_fn, |l| l.params_mut(), 1e-2);
            assert!(max_err < 2e-2, "act={act:?} max rel err {max_err}");
        }
    }

    #[test]
    fn backward_returns_input_gradient() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = Dense::new(3, 2, Activation::Linear, Init::XavierUniform, &mut rng);
        let x = Matrix::uniform(4, 3, -1.0, 1.0, &mut rng);
        let y = layer.forward(&x);
        let gx = layer.backward(&y);
        assert_eq!(gx.shape(), (4, 3));
        // dX = y W for the linear activation.
        let expected = y.matmul(layer.weights());
        for (a, b) in gx.as_slice().iter().zip(expected.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn quantized_forward_tracks_exact_forward() {
        let mut rng = StdRng::seed_from_u64(6);
        let layer = Dense::new(9, 5, Activation::Tanh, Init::XavierUniform, &mut rng);
        let x = Matrix::uniform(4, 9, -1.0, 1.0, &mut rng);
        let exact = layer.forward_inference(&x);
        let quant = layer.quantized().forward(&x);
        assert_eq!(quant.shape(), exact.shape());
        for (a, b) in exact.as_slice().iter().zip(quant.as_slice()) {
            // tanh is 1-Lipschitz; pre-activation error is bounded by
            // sum|x| * step/2 per unit, far below 0.05 at these dims.
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn zero_grad_resets_accumulators() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut layer = Dense::new(3, 2, Activation::Sigmoid, Init::XavierUniform, &mut rng);
        let x = Matrix::uniform(2, 3, -1.0, 1.0, &mut rng);
        let y = layer.forward(&x);
        layer.backward(&y);
        layer.zero_grad();
        for p in layer.params_mut() {
            assert!(p.grad.as_slice().iter().all(|&g| g == 0.0));
        }
    }

    #[test]
    fn gradients_accumulate_across_calls() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut layer = Dense::new(2, 2, Activation::Linear, Init::XavierUniform, &mut rng);
        let x = Matrix::uniform(1, 2, -1.0, 1.0, &mut rng);
        let g = Matrix::filled(1, 2, 1.0);
        layer.forward(&x);
        layer.backward(&g);
        let first = layer.dw.clone();
        layer.forward(&x);
        layer.backward(&g);
        let mut doubled = first.clone();
        doubled.scale(2.0);
        for (a, b) in layer.dw.as_slice().iter().zip(doubled.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}
