//! Loss functions.
//!
//! All losses return `(scalar_loss, gradient_wrt_prediction)` so callers can
//! feed the gradient straight into the network's backward pass. Predictions
//! are probabilities (post-sigmoid), matching the paper's architecture where
//! every head ends in a sigmoid; probabilities are clamped away from 0/1 for
//! numerical stability.

use crate::matrix::Matrix;

/// Probability clamp used by the cross-entropy losses.
pub const PROB_EPS: f32 = 1e-6;

#[inline]
fn clamp_prob(p: f32) -> f32 {
    p.clamp(PROB_EPS, 1.0 - PROB_EPS)
}

/// Binary cross-entropy of a single probability/label pair.
#[inline]
pub fn bce_scalar(p: f32, y: f32) -> f32 {
    let p = clamp_prob(p);
    -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
}

/// Gradient of [`bce_scalar`] w.r.t. `p`.
#[inline]
pub fn bce_scalar_grad(p: f32, y: f32) -> f32 {
    let p = clamp_prob(p);
    (p - y) / (p * (1.0 - p))
}

/// Mean binary cross-entropy over a batch of probabilities.
///
/// `preds` and `targets` must have identical shapes; `targets` entries are
/// 0/1 (soft labels also work). Returns the mean loss and the gradient
/// matrix `dL/dpred` (already divided by the element count).
pub fn bce(preds: &Matrix, targets: &Matrix) -> (f32, Matrix) {
    assert_eq!(preds.shape(), targets.shape(), "bce shape mismatch");
    let n = preds.len() as f32;
    let mut loss = 0.0;
    let mut grad = Matrix::zeros(preds.rows(), preds.cols());
    for ((g, &p), &y) in grad
        .as_mut_slice()
        .iter_mut()
        .zip(preds.as_slice())
        .zip(targets.as_slice())
    {
        loss += bce_scalar(p, y);
        *g = bce_scalar_grad(p, y) / n;
    }
    (loss / n, grad)
}

/// Weighted binary cross-entropy: each element carries its own weight
/// (weight 0 masks the element out entirely).
///
/// The loss is `sum_i w_i * bce(p_i, y_i) / sum_i w_i` and the gradient is
/// scaled accordingly. Returns `(0, zeros)` when all weights are zero.
pub fn weighted_bce(preds: &Matrix, targets: &Matrix, weights: &Matrix) -> (f32, Matrix) {
    assert_eq!(
        preds.shape(),
        targets.shape(),
        "weighted_bce shape mismatch"
    );
    assert_eq!(
        preds.shape(),
        weights.shape(),
        "weighted_bce weights mismatch"
    );
    let wsum: f32 = weights.as_slice().iter().sum();
    let mut grad = Matrix::zeros(preds.rows(), preds.cols());
    if wsum <= 0.0 {
        return (0.0, grad);
    }
    let mut loss = 0.0;
    for (((g, &p), &y), &w) in grad
        .as_mut_slice()
        .iter_mut()
        .zip(preds.as_slice())
        .zip(targets.as_slice())
        .zip(weights.as_slice())
    {
        if w == 0.0 {
            continue;
        }
        loss += w * bce_scalar(p, y);
        *g = w * bce_scalar_grad(p, y) / wsum;
    }
    (loss / wsum, grad)
}

/// Mean squared error and its gradient.
pub fn mse(preds: &Matrix, targets: &Matrix) -> (f32, Matrix) {
    assert_eq!(preds.shape(), targets.shape(), "mse shape mismatch");
    let n = preds.len() as f32;
    let mut loss = 0.0;
    let mut grad = Matrix::zeros(preds.rows(), preds.cols());
    for ((g, &p), &y) in grad
        .as_mut_slice()
        .iter_mut()
        .zip(preds.as_slice())
        .zip(targets.as_slice())
    {
        let d = p - y;
        loss += d * d;
        *g = 2.0 * d / n;
    }
    (loss / n, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bce_known_value() {
        // BCE(0.5, 1) = -ln(0.5) = ln 2.
        let p = Matrix::from_vec(1, 1, vec![0.5]);
        let y = Matrix::from_vec(1, 1, vec![1.0]);
        let (loss, _) = bce(&p, &y);
        assert!((loss - std::f32::consts::LN_2).abs() < 1e-5);
    }

    #[test]
    fn bce_perfect_prediction_near_zero() {
        let p = Matrix::from_vec(1, 2, vec![1.0 - 1e-6, 1e-6]);
        let y = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
        let (loss, _) = bce(&p, &y);
        assert!(loss < 1e-4);
    }

    #[test]
    fn bce_is_stable_at_extremes() {
        let p = Matrix::from_vec(1, 2, vec![0.0, 1.0]);
        let y = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
        let (loss, grad) = bce(&p, &y);
        assert!(loss.is_finite());
        assert!(grad.all_finite());
    }

    #[test]
    fn bce_gradient_matches_finite_difference() {
        let y = Matrix::from_vec(1, 3, vec![1.0, 0.0, 1.0]);
        let p0 = vec![0.3f32, 0.7, 0.9];
        let p = Matrix::from_vec(1, 3, p0.clone());
        let (_, grad) = bce(&p, &y);
        let eps = 1e-3;
        for e in 0..3 {
            let mut pp = p0.clone();
            pp[e] += eps;
            let (lp, _) = bce(&Matrix::from_vec(1, 3, pp.clone()), &y);
            pp[e] -= 2.0 * eps;
            let (lm, _) = bce(&Matrix::from_vec(1, 3, pp), &y);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - grad.as_slice()[e]).abs() < 1e-2, "e={e}");
        }
    }

    #[test]
    fn weighted_bce_masks_zero_weight() {
        let p = Matrix::from_vec(1, 2, vec![0.9, 0.1]);
        let y = Matrix::from_vec(1, 2, vec![0.0, 0.0]);
        // Only the first element counts.
        let w = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
        let (loss, grad) = weighted_bce(&p, &y, &w);
        assert!((loss - bce_scalar(0.9, 0.0)).abs() < 1e-5);
        assert_eq!(grad.as_slice()[1], 0.0);
        assert!(grad.as_slice()[0] > 0.0);
    }

    #[test]
    fn weighted_bce_all_zero_weights() {
        let p = Matrix::from_vec(1, 2, vec![0.9, 0.1]);
        let y = Matrix::from_vec(1, 2, vec![0.0, 1.0]);
        let w = Matrix::zeros(1, 2);
        let (loss, grad) = weighted_bce(&p, &y, &w);
        assert_eq!(loss, 0.0);
        assert!(grad.as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn weighted_bce_uniform_weights_equals_bce() {
        let p = Matrix::from_vec(1, 3, vec![0.2, 0.5, 0.8]);
        let y = Matrix::from_vec(1, 3, vec![0.0, 1.0, 1.0]);
        let w = Matrix::filled(1, 3, 1.0);
        let (lw, gw) = weighted_bce(&p, &y, &w);
        let (lb, gb) = bce(&p, &y);
        assert!((lw - lb).abs() < 1e-6);
        for (a, b) in gw.as_slice().iter().zip(gb.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn mse_known_value_and_gradient() {
        let p = Matrix::from_vec(1, 2, vec![1.0, 3.0]);
        let y = Matrix::from_vec(1, 2, vec![0.0, 1.0]);
        let (loss, grad) = mse(&p, &y);
        assert!((loss - 2.5).abs() < 1e-6); // (1 + 4) / 2
        assert_eq!(grad.as_slice(), &[1.0, 2.0]); // 2d/n
    }
}
