//! Dynamic int8 quantization: the `Quantized` inference fast lane.
//!
//! Weights are quantized symmetrically per output row at snapshot time
//! (`scale = max|w| / 127`, `q = round(w / scale)` saturated to
//! `[-127, 127]`) and stored as `i8` — a quarter of the `f32` footprint.
//! At inference time each *activation* row is quantized the same way on
//! the fly, the dot products run entirely in `i8 × i8 → i32` integer
//! arithmetic, and the two scales are applied once per output element.
//! Integer multiply-accumulate needs no per-element int→float
//! conversion and vectorizes tightly, which is where the lane's
//! single-core speedup comes from.
//!
//! The lane is *approximate*: per output element the error is bounded by
//! `sx/2 · Σ|w_row| + sw/2 · Σ|x| + k · sx·sw/4`, where `sx`/`sw` are
//! the activation-row and weight-row steps and `k` the reduction depth —
//! each term a half-step round-off against the other operand's L1 mass.
//! The repo's conformal layer absorbs exactly this kind of predictor
//! error — recalibrating the conformal state on quantized-lane scores
//! restores the coverage guarantee (see `DESIGN.md`). The kernels are
//! sequential, and the integer accumulation is associativity-exact, so
//! quantized results are bit-identical across worker counts by
//! construction. Reduction depths must stay below `2^17` so `i32`
//! accumulators cannot overflow (`127² · 2^17 < 2^31`); model layers are
//! orders of magnitude narrower.

use std::fmt;
use std::str::FromStr;

use crate::matrix::Matrix;

/// Which arithmetic a model's `forward_inference` runs on.
///
/// `Exact` is the trained `f32` path, bit-identical to training forward.
/// `Quantized` runs dynamic int8 kernels (int8 weights and activations,
/// exact `i32` accumulation) — faster and approximate; pair it with
/// conformal recalibration on quantized scores so marshalling decisions
/// keep their coverage guarantee.
///
/// ```
/// use eventhit_nn::quant::InferenceLane;
/// assert_eq!(InferenceLane::default(), InferenceLane::Exact);
/// assert_eq!("quantized".parse(), Ok(InferenceLane::Quantized));
/// assert_eq!(InferenceLane::Quantized.to_string(), "quantized");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum InferenceLane {
    /// Full-precision `f32` inference, bit-identical to training forward.
    #[default]
    Exact,
    /// Int8-weight, f32-accumulate fast lane (approximate).
    Quantized,
}

impl fmt::Display for InferenceLane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferenceLane::Exact => f.write_str("exact"),
            InferenceLane::Quantized => f.write_str("quantized"),
        }
    }
}

impl FromStr for InferenceLane {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "exact" => Ok(InferenceLane::Exact),
            "quantized" => Ok(InferenceLane::Quantized),
            other => Err(format!(
                "unknown inference lane {other:?} (expected \"exact\" or \"quantized\")"
            )),
        }
    }
}

/// An `i8` matrix with one symmetric scale per row: row `r` of the source
/// is approximately `scales[r] * data[r]`.
///
/// ```
/// use eventhit_nn::matrix::Matrix;
/// use eventhit_nn::quant::QuantizedMatrix;
/// let w = Matrix::from_vec(1, 2, vec![1.0, -0.5]);
/// let q = QuantizedMatrix::quantize(&w);
/// let back = q.dequantize();
/// assert!((back[(0, 0)] - 1.0).abs() < 1.0 / 127.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
    scales: Vec<f32>,
}

impl QuantizedMatrix {
    /// Quantizes `m` row by row with symmetric per-row scales.
    ///
    /// Each row's scale is `max|row| / 127`; entries round to the nearest
    /// step and saturate to `[-127, 127]` (the `-128` code is unused so
    /// the grid stays symmetric). An all-zero row gets scale `0` and
    /// dequantizes to exact zeros. Assumes finite weights.
    pub fn quantize(m: &Matrix) -> Self {
        let (rows, cols) = m.shape();
        let mut data = Vec::with_capacity(rows * cols);
        let mut scales = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = m.row(r);
            let amax = row.iter().fold(0.0f32, |acc, &v| acc.max(v.abs()));
            if amax == 0.0 {
                scales.push(0.0);
                data.extend(std::iter::repeat_n(0i8, cols));
                continue;
            }
            let scale = amax / 127.0;
            scales.push(scale);
            let inv = 127.0 / amax;
            for &v in row {
                let q = (v * inv).round().clamp(-127.0, 127.0);
                data.push(q as i8);
            }
        }
        QuantizedMatrix {
            rows,
            cols,
            data,
            scales,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrows quantized row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[i8] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The symmetric scale of row `r`.
    #[inline]
    pub fn scale(&self, r: usize) -> f32 {
        self.scales[r]
    }

    /// Reconstructs the `f32` matrix this quantization represents.
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let scale = self.scales[r];
            for (o, &q) in out.row_mut(r).iter_mut().zip(self.row(r)) {
                *o = scale * f32::from(q);
            }
        }
        out
    }
}

/// Quantizes one activation row symmetrically into `buf`, returning its
/// scale. Same grid as [`QuantizedMatrix::quantize`]: `scale =
/// max|v| / 127`, saturating round-to-nearest, zero rows get scale `0`.
#[inline]
fn quantize_row(row: &[f32], buf: &mut Vec<i8>) -> f32 {
    buf.clear();
    let amax = row.iter().fold(0.0f32, |acc, &v| acc.max(v.abs()));
    if amax == 0.0 {
        buf.extend(std::iter::repeat_n(0i8, row.len()));
        return 0.0;
    }
    let inv = 127.0 / amax;
    buf.extend(
        row.iter()
            .map(|&v| (v * inv).round().clamp(-127.0, 127.0) as i8),
    );
    amax / 127.0
}

/// Exact integer dot of two `i8` rows, accumulated in `i32`. The tight
/// widen-multiply-add loop is what the optimizer vectorizes; correctness
/// needs `a.len() < 2^17` so `127² · len` stays below `i32::MAX` (callers
/// quantize model layers, which are far narrower).
#[inline]
fn doti(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert!(a.len() < 1 << 17, "i32 accumulator overflow bound");
    let mut acc = 0i32;
    for (&x, &y) in a.iter().zip(b) {
        acc += i32::from(x) * i32::from(y);
    }
    acc
}

/// Quantized affine map `x * w^T + bias`: each activation row is
/// quantized on the fly, every output element is one exact `i8 × i8 →
/// i32` integer dot, and the activation and weight scales are applied
/// once at the end. Sequential (and therefore worker-count invariant by
/// construction).
///
/// ```
/// use eventhit_nn::matrix::Matrix;
/// use eventhit_nn::quant::{affine_t_quant, QuantizedMatrix};
/// let x = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
/// let w = QuantizedMatrix::quantize(&Matrix::from_vec(1, 2, vec![3.0, 4.0]));
/// let y = affine_t_quant(&x, &w, &[0.5]);
/// assert!((y[(0, 0)] - 11.5).abs() < 0.1);
/// ```
///
/// # Panics
/// Panics if `x.cols != w.cols` or `bias.len() != w.rows`.
pub fn affine_t_quant(x: &Matrix, w: &QuantizedMatrix, bias: &[f32]) -> Matrix {
    assert_eq!(
        x.cols(),
        w.cols(),
        "affine_t_quant shape mismatch: {}x{} * ({}x{})^T",
        x.rows(),
        x.cols(),
        w.rows(),
        w.cols()
    );
    assert_eq!(bias.len(), w.rows(), "affine_t_quant bias length mismatch");
    let out_cols = w.rows();
    let mut out = Matrix::zeros(x.rows(), out_cols);
    let mut xq = Vec::with_capacity(x.cols());
    for r in 0..x.rows() {
        let sx = quantize_row(x.row(r), &mut xq);
        let out_row = out.row_mut(r);
        for (j, o) in out_row.iter_mut().enumerate() {
            *o = doti(&xq, w.row(j)) as f32 * (sx * w.scale(j)) + bias[j];
        }
    }
    out
}

/// Quantized fused gate pre-activation
/// `x * wx^T + h * wh^T + bias` — the quantized-lane LSTM step kernel.
/// Each batch row quantizes its `x` and `h` activations once, then runs
/// both gate products in integer arithmetic.
///
/// # Panics
/// Panics on shape mismatches (same contract as
/// [`Matrix::fused_gate_affine`]).
pub fn fused_gate_affine_quant(
    x: &Matrix,
    wx: &QuantizedMatrix,
    h: &Matrix,
    wh: &QuantizedMatrix,
    bias: &[f32],
) -> Matrix {
    assert_eq!(x.cols(), wx.cols(), "fused_gate_affine_quant x/wx mismatch");
    assert_eq!(h.cols(), wh.cols(), "fused_gate_affine_quant h/wh mismatch");
    assert_eq!(x.rows(), h.rows(), "fused_gate_affine_quant batch mismatch");
    assert_eq!(
        wx.rows(),
        wh.rows(),
        "fused_gate_affine_quant gate-count mismatch"
    );
    assert_eq!(
        bias.len(),
        wx.rows(),
        "fused_gate_affine_quant bias mismatch"
    );
    let out_cols = wx.rows();
    let mut out = Matrix::zeros(x.rows(), out_cols);
    let mut xq = Vec::with_capacity(x.cols());
    let mut hq = Vec::with_capacity(h.cols());
    for r in 0..x.rows() {
        let sx = quantize_row(x.row(r), &mut xq);
        let sh = quantize_row(h.row(r), &mut hq);
        let out_row = out.row_mut(r);
        for (j, o) in out_row.iter_mut().enumerate() {
            let px = doti(&xq, wx.row(j)) as f32 * (sx * wx.scale(j));
            let ph = doti(&hq, wh.row(j)) as f32 * (sh * wh.scale(j));
            *o = (px + ph) + bias[j];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventhit_rng::rngs::StdRng;
    use eventhit_rng::SeedableRng;

    fn sample(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::uniform(rows, cols, -1.0, 1.0, &mut rng)
    }

    #[test]
    fn lane_parses_and_displays() {
        assert_eq!("exact".parse(), Ok(InferenceLane::Exact));
        assert_eq!("quantized".parse(), Ok(InferenceLane::Quantized));
        assert!("int8".parse::<InferenceLane>().is_err());
        assert_eq!(InferenceLane::Exact.to_string(), "exact");
    }

    #[test]
    fn round_trip_error_is_bounded_by_half_a_step() {
        let m = sample(7, 23, 1);
        let q = QuantizedMatrix::quantize(&m);
        let back = q.dequantize();
        for r in 0..m.rows() {
            let step = q.scale(r);
            assert!(step > 0.0);
            for (a, b) in m.row(r).iter().zip(back.row(r)) {
                assert!(
                    (a - b).abs() <= step / 2.0 + 1e-7,
                    "row {r}: {a} -> {b}, step {step}"
                );
            }
        }
    }

    #[test]
    fn extremes_saturate_to_symmetric_codes() {
        // max |v| maps to exactly +-127; nothing can reach -128.
        let m = Matrix::from_vec(1, 4, vec![2.0, -2.0, 1.0, -0.003]);
        let q = QuantizedMatrix::quantize(&m);
        assert_eq!(q.row(0)[0], 127);
        assert_eq!(q.row(0)[1], -127);
        assert!(q.row(0).iter().all(|&v| v > -128));
        assert_eq!(q.scale(0), 2.0 / 127.0);
    }

    #[test]
    fn zero_rows_get_zero_scale_and_exact_zeros() {
        let mut m = sample(3, 5, 2);
        m.row_mut(1).fill(0.0);
        let q = QuantizedMatrix::quantize(&m);
        assert_eq!(q.scale(1), 0.0);
        assert!(q.row(1).iter().all(|&v| v == 0));
        assert!(q.dequantize().row(1).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn empty_matrix_quantizes() {
        let q = QuantizedMatrix::quantize(&Matrix::zeros(0, 4));
        assert_eq!(q.rows(), 0);
        assert_eq!(q.dequantize().shape(), (0, 4));
    }

    #[test]
    fn affine_t_quant_matches_dequantized_exact_affine() {
        // The integer kernel must agree (to f32 round-off) with the exact
        // kernel run on the dequantized weights AND dequantized
        // activations — activation rows quantize on the same grid as
        // QuantizedMatrix rows, so the reference is fully explicit.
        let x = sample(5, 13, 3);
        let w = sample(11, 13, 4);
        let bias: Vec<f32> = (0..11).map(|i| i as f32 * 0.01).collect();
        let q = QuantizedMatrix::quantize(&w);
        let got = affine_t_quant(&x, &q, &bias);
        let x_deq = QuantizedMatrix::quantize(&x).dequantize();
        let want = x_deq.affine_t(&q.dequantize(), &bias);
        for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn fused_gate_quant_matches_composed_affines() {
        let x = sample(3, 6, 5);
        let h = sample(3, 4, 6);
        let wx = QuantizedMatrix::quantize(&sample(16, 6, 7));
        let wh = QuantizedMatrix::quantize(&sample(16, 4, 8));
        let bias: Vec<f32> = (0..16).map(|i| (i as f32).cos() * 0.1).collect();
        let got = fused_gate_affine_quant(&x, &wx, &h, &wh, &bias);
        let mut want = affine_t_quant(&x, &wx, &[0.0; 16]);
        want.add_assign(&affine_t_quant(&h, &wh, &[0.0; 16]));
        want.add_row_broadcast(&bias);
        for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn quantized_error_stays_within_analytic_bound() {
        // Per output element the dynamic-quantization error is bounded by
        // `sx/2·Σ|w_row| + sw/2·Σ|x| + k·sx·sw/4` (each operand's
        // half-step round-off against the other's L1 mass, plus the
        // second-order cross term) — the error model documented in
        // DESIGN.md.
        let x = sample(4, 32, 9);
        let w = sample(8, 32, 10);
        let q = QuantizedMatrix::quantize(&w);
        let bias = vec![0.0f32; 8];
        let exact = x.affine_t(&w, &bias);
        let quant = affine_t_quant(&x, &q, &bias);
        let k = x.cols() as f32;
        for r in 0..x.rows() {
            let l1x: f32 = x.row(r).iter().map(|v| v.abs()).sum();
            let amax = x.row(r).iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let sx = amax / 127.0;
            for j in 0..8 {
                let sw = q.scale(j);
                let l1w: f32 = w.row(j).iter().map(|v| v.abs()).sum();
                let bound = (sx / 2.0) * l1w + (sw / 2.0) * l1x + k * sx * sw / 4.0 + 1e-4;
                let err = (exact[(r, j)] - quant[(r, j)]).abs();
                assert!(err <= bound, "err {err} > bound {bound}");
            }
        }
    }
}
