//! LSTM layer with full backpropagation through time (BPTT).
//!
//! The four gates (input `i`, forget `f`, cell candidate `g`, output `o`)
//! share fused weight matrices `wx: 4H x D` and `wh: 4H x H`, laid out in
//! gate order `[i | f | g | o]` along the rows. The forget-gate bias is
//! initialized to 1.0, the standard trick that lets gradients flow through
//! long sequences early in training.

use eventhit_rng::Rng;

use crate::activation::{sigmoid, tanh};
use crate::init::Init;
use crate::matrix::Matrix;
use crate::optimizer::ParamMut;
use crate::quant::{fused_gate_affine_quant, QuantizedMatrix};

/// Per-timestep forward cache needed by BPTT.
#[derive(Clone)]
struct StepCache {
    x: Matrix,
    h_prev: Matrix,
    c_prev: Matrix,
    i: Matrix,
    f: Matrix,
    g: Matrix,
    o: Matrix,
    tanh_c: Matrix,
}

/// An LSTM layer processing sequences of feature vectors.
#[derive(Clone)]
pub struct Lstm {
    input_dim: usize,
    hidden_dim: usize,
    wx: Matrix,
    wh: Matrix,
    b: Matrix,
    dwx: Matrix,
    dwh: Matrix,
    db: Matrix,
    cache: Vec<StepCache>,
}

/// Copies a horizontal gate block `[.., start..start+len]` out of `m`.
fn col_block(m: &Matrix, start: usize, len: usize) -> Matrix {
    let mut out = Matrix::zeros(m.rows(), len);
    for r in 0..m.rows() {
        out.row_mut(r)
            .copy_from_slice(&m.row(r)[start..start + len]);
    }
    out
}

/// Writes `block` into the horizontal range `[start..start+len]` of `m`.
fn set_col_block(m: &mut Matrix, start: usize, block: &Matrix) {
    assert_eq!(m.rows(), block.rows());
    for r in 0..m.rows() {
        m.row_mut(r)[start..start + block.cols()].copy_from_slice(block.row(r));
    }
}

impl Lstm {
    /// Creates an LSTM with `input_dim` features per step and `hidden_dim`
    /// hidden units.
    pub fn new<R: Rng + ?Sized>(input_dim: usize, hidden_dim: usize, rng: &mut R) -> Self {
        let wx = Init::XavierUniform.matrix(4 * hidden_dim, input_dim, rng);
        let wh = Init::XavierUniform.matrix(4 * hidden_dim, hidden_dim, rng);
        let mut b = Matrix::zeros(1, 4 * hidden_dim);
        // Forget gate bias = 1.
        for j in hidden_dim..2 * hidden_dim {
            b[(0, j)] = 1.0;
        }
        Lstm {
            input_dim,
            hidden_dim,
            wx,
            wh,
            b,
            dwx: Matrix::zeros(4 * hidden_dim, input_dim),
            dwh: Matrix::zeros(4 * hidden_dim, hidden_dim),
            db: Matrix::zeros(1, 4 * hidden_dim),
            cache: Vec::new(),
        }
    }

    /// Input dimensionality per timestep.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden-state dimensionality.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.wx.len() + self.wh.len() + self.b.len()
    }

    /// Runs the LSTM over a sequence (`xs[t]: batch x input_dim`), caching
    /// intermediates for BPTT, and returns the final hidden state
    /// (`batch x hidden_dim`).
    pub fn forward(&mut self, xs: &[Matrix]) -> Matrix {
        assert!(!xs.is_empty(), "LSTM requires at least one timestep");
        let batch = xs[0].rows();
        let hd = self.hidden_dim;
        self.cache.clear();

        let mut h = Matrix::zeros(batch, hd);
        let mut c = Matrix::zeros(batch, hd);

        for x in xs {
            let (i, f, g, o, c_new) = self.step(x, &h, &c, batch);
            let tanh_c = c_new.map(tanh);
            let h_new = o.hadamard(&tanh_c);
            self.cache.push(StepCache {
                x: x.clone(),
                h_prev: h,
                c_prev: c,
                i,
                f,
                g,
                o,
                tanh_c,
            });
            h = h_new;
            c = c_new;
        }
        h
    }

    /// Runs the LSTM without caching. Pure `&self`, so a trained layer
    /// can be shared across threads for parallel inference; the step
    /// arithmetic is shared with [`Lstm::forward`], so the two are
    /// bit-identical.
    pub fn forward_inference(&self, xs: &[Matrix]) -> Matrix {
        assert!(!xs.is_empty(), "LSTM requires at least one timestep");
        let batch = xs[0].rows();
        let hd = self.hidden_dim;

        let mut h = Matrix::zeros(batch, hd);
        let mut c = Matrix::zeros(batch, hd);

        for x in xs {
            let (_, _, _, o, c_new) = self.step(x, &h, &c, batch);
            let tanh_c = c_new.map(tanh);
            h = o.hadamard(&tanh_c);
            c = c_new;
        }
        h
    }

    /// One timestep of gate arithmetic: returns `(i, f, g, o, c_new)`.
    #[allow(clippy::type_complexity)]
    fn step(
        &self,
        x: &Matrix,
        h: &Matrix,
        c: &Matrix,
        batch: usize,
    ) -> (Matrix, Matrix, Matrix, Matrix, Matrix) {
        let hd = self.hidden_dim;
        assert_eq!(x.cols(), self.input_dim, "LSTM input dim mismatch");
        assert_eq!(x.rows(), batch, "LSTM batch size changed mid-sequence");
        // Single fused pass over the concatenated [i|f|g|o] gate weights,
        // bit-identical to matmul_t + add_assign + add_row_broadcast.
        let pre = x.fused_gate_affine(&self.wx, h, &self.wh, self.b.as_slice());

        let i = col_block(&pre, 0, hd).map(sigmoid);
        let f = col_block(&pre, hd, hd).map(sigmoid);
        let g = col_block(&pre, 2 * hd, hd).map(tanh);
        let o = col_block(&pre, 3 * hd, hd).map(sigmoid);

        let mut c_new = f.hadamard(c);
        c_new.add_assign(&i.hadamard(&g));
        (i, f, g, o, c_new)
    }

    /// BPTT given the gradient of the loss w.r.t. the *final* hidden state.
    ///
    /// Accumulates weight gradients and returns per-step input gradients
    /// (`dxs[t]: batch x input_dim`).
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn backward_last(&mut self, dh_last: &Matrix) -> Vec<Matrix> {
        assert!(!self.cache.is_empty(), "Lstm::backward_last before forward");
        let t_len = self.cache.len();
        let mut dhs = vec![None; t_len];
        dhs[t_len - 1] = Some(dh_last.clone());
        self.backward(&dhs)
    }

    /// General BPTT with an optional output gradient per timestep.
    pub fn backward(&mut self, dhs: &[Option<Matrix>]) -> Vec<Matrix> {
        assert_eq!(
            dhs.len(),
            self.cache.len(),
            "dhs length must match sequence length"
        );
        let hd = self.hidden_dim;
        let batch = self.cache[0].x.rows();

        let mut dh_next = Matrix::zeros(batch, hd);
        let mut dc_next = Matrix::zeros(batch, hd);
        let mut dxs = vec![Matrix::zeros(0, 0); self.cache.len()];

        for t in (0..self.cache.len()).rev() {
            let step = &self.cache[t];
            let mut dh = dh_next;
            if let Some(extra) = &dhs[t] {
                dh.add_assign(extra);
            }

            // h = o ⊙ tanh(c), so dc = dh ⊙ o ⊙ (1 - tanh(c)^2) + dc_next.
            let do_gate = dh.hadamard(&step.tanh_c);
            let one_minus_t2 = step.tanh_c.map(|t| 1.0 - t * t);
            let mut dc = dh.hadamard(&step.o).hadamard(&one_minus_t2);
            dc.add_assign(&dc_next);

            // c = f ⊙ c_prev + i ⊙ g
            let di = dc.hadamard(&step.g);
            let df = dc.hadamard(&step.c_prev);
            let dg = dc.hadamard(&step.i);
            let dc_prev = dc.hadamard(&step.f);

            // Pre-activation gradients.
            let dpre_i = di.hadamard(&step.i.map(|s| s * (1.0 - s)));
            let dpre_f = df.hadamard(&step.f.map(|s| s * (1.0 - s)));
            let dpre_g = dg.hadamard(&step.g.map(|t| 1.0 - t * t));
            let dpre_o = do_gate.hadamard(&step.o.map(|s| s * (1.0 - s)));

            let mut dpre = Matrix::zeros(batch, 4 * hd);
            set_col_block(&mut dpre, 0, &dpre_i);
            set_col_block(&mut dpre, hd, &dpre_f);
            set_col_block(&mut dpre, 2 * hd, &dpre_g);
            set_col_block(&mut dpre, 3 * hd, &dpre_o);

            // Accumulate weight gradients.
            self.dwx.add_assign(&dpre.t_matmul(&step.x));
            self.dwh.add_assign(&dpre.t_matmul(&step.h_prev));
            let db = dpre.sum_rows();
            for (g, &v) in self.db.as_mut_slice().iter_mut().zip(&db) {
                *g += v;
            }

            dxs[t] = dpre.matmul(&self.wx);
            dh_next = dpre.matmul(&self.wh);
            dc_next = dc_prev;
        }
        dxs
    }

    /// Snapshots the layer onto the int8 fast lane (see
    /// [`crate::quant::InferenceLane`]). Gate weights are quantized once;
    /// the returned layer is immutable and cheap to clone.
    pub fn quantized(&self) -> QuantizedLstm {
        QuantizedLstm {
            input_dim: self.input_dim,
            hidden_dim: self.hidden_dim,
            qwx: QuantizedMatrix::quantize(&self.wx),
            qwh: QuantizedMatrix::quantize(&self.wh),
            b: self.b.clone(),
        }
    }

    /// Zeros the accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.dwx.fill_zero();
        self.dwh.fill_zero();
        self.db.fill_zero();
    }

    /// Yields `(parameter, gradient)` pairs for the optimizer, in a stable
    /// order.
    pub fn params_mut(&mut self) -> Vec<ParamMut<'_>> {
        vec![
            ParamMut {
                value: &mut self.wx,
                grad: &self.dwx,
            },
            ParamMut {
                value: &mut self.wh,
                grad: &self.dwh,
            },
            ParamMut {
                value: &mut self.b,
                grad: &self.db,
            },
        ]
    }
}

/// An int8-weight snapshot of an [`Lstm`]: the quantized inference fast
/// lane. Same gate arithmetic as [`Lstm::forward_inference`], but the
/// fused gate products run against `i8` weights with f32 accumulation.
#[derive(Clone)]
pub struct QuantizedLstm {
    input_dim: usize,
    hidden_dim: usize,
    qwx: QuantizedMatrix,
    qwh: QuantizedMatrix,
    b: Matrix,
}

impl QuantizedLstm {
    /// Input dimensionality per timestep.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden-state dimensionality.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Quantized inference over a sequence; returns the final hidden
    /// state. Pure `&self` and sequential, so results are bit-identical
    /// across worker counts.
    pub fn forward(&self, xs: &[Matrix]) -> Matrix {
        assert!(!xs.is_empty(), "LSTM requires at least one timestep");
        let batch = xs[0].rows();
        let hd = self.hidden_dim;

        let mut h = Matrix::zeros(batch, hd);
        let mut c = Matrix::zeros(batch, hd);

        for x in xs {
            assert_eq!(x.cols(), self.input_dim, "LSTM input dim mismatch");
            assert_eq!(x.rows(), batch, "LSTM batch size changed mid-sequence");
            let pre = fused_gate_affine_quant(x, &self.qwx, &h, &self.qwh, self.b.as_slice());

            let i = col_block(&pre, 0, hd).map(sigmoid);
            let f = col_block(&pre, hd, hd).map(sigmoid);
            let g = col_block(&pre, 2 * hd, hd).map(tanh);
            let o = col_block(&pre, 3 * hd, hd).map(sigmoid);

            let mut c_new = f.hadamard(&c);
            c_new.add_assign(&i.hadamard(&g));
            let tanh_c = c_new.map(tanh);
            h = o.hadamard(&tanh_c);
            c = c_new;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradients;
    use eventhit_rng::rngs::StdRng;
    use eventhit_rng::SeedableRng;

    fn seq(t: usize, batch: usize, dim: usize, seed: u64) -> Vec<Matrix> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..t)
            .map(|_| Matrix::uniform(batch, dim, -1.0, 1.0, &mut rng))
            .collect()
    }

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut lstm = Lstm::new(3, 5, &mut rng);
        let xs = seq(7, 4, 3, 1);
        let h = lstm.forward(&xs);
        assert_eq!(h.shape(), (4, 5));
        assert!(h.all_finite());
    }

    #[test]
    fn hidden_state_is_bounded() {
        // h = o ⊙ tanh(c) with o in (0,1) implies |h| < 1.
        let mut rng = StdRng::seed_from_u64(1);
        let mut lstm = Lstm::new(2, 4, &mut rng);
        let xs = seq(20, 3, 2, 2);
        let h = lstm.forward(&xs);
        assert!(h.as_slice().iter().all(|&v| v.abs() < 1.0));
    }

    #[test]
    fn forward_deterministic() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lstm = Lstm::new(2, 3, &mut rng);
        let xs = seq(5, 2, 2, 4);
        let a = lstm.forward(&xs);
        let b = lstm.forward(&xs);
        assert_eq!(a, b);
    }

    #[test]
    fn inference_matches_training_forward() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut lstm = Lstm::new(3, 4, &mut rng);
        let xs = seq(6, 2, 3, 6);
        let a = lstm.forward(&xs);
        let b = lstm.forward_inference(&xs);
        assert_eq!(a, b);
    }

    #[test]
    fn quantized_forward_tracks_exact_forward() {
        let mut rng = StdRng::seed_from_u64(21);
        let lstm = Lstm::new(4, 6, &mut rng);
        let xs = seq(8, 3, 4, 22);
        let exact = lstm.forward_inference(&xs);
        let quant = lstm.quantized().forward(&xs);
        assert_eq!(quant.shape(), exact.shape());
        for (a, b) in exact.as_slice().iter().zip(quant.as_slice()) {
            // Gates squash to (0,1)/(-1,1); per-step pre-activation
            // error is sub-1% so the recurrences stay close.
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut lstm = Lstm::new(3, 4, &mut rng);
        let xs = seq(5, 2, 3, 8);
        let loss_fn = |l: &mut Lstm| {
            let h = l.forward(&xs);
            0.5 * h.as_slice().iter().map(|&v| v * v).sum::<f32>()
        };
        let grad_fn = |l: &mut Lstm| {
            l.zero_grad();
            let h = l.forward(&xs);
            l.backward_last(&h);
        };
        let err = check_gradients(&mut lstm, loss_fn, grad_fn, |l| l.params_mut(), 1e-2);
        assert!(err < 3e-2, "max rel err {err}");
    }

    #[test]
    fn input_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lstm = Lstm::new(2, 3, &mut rng);
        let mut xs = seq(4, 1, 2, 10);

        lstm.zero_grad();
        let h = lstm.forward(&xs);
        let dxs = lstm.backward_last(&h);

        let eps = 1e-2f32;
        for t in 0..xs.len() {
            for e in 0..xs[t].len() {
                let orig = xs[t].as_slice()[e];
                xs[t].as_mut_slice()[e] = orig + eps;
                let hp = lstm.forward_inference(&xs);
                let lp = 0.5 * hp.as_slice().iter().map(|&v| v * v).sum::<f32>();
                xs[t].as_mut_slice()[e] = orig - eps;
                let hm = lstm.forward_inference(&xs);
                let lm = 0.5 * hm.as_slice().iter().map(|&v| v * v).sum::<f32>();
                xs[t].as_mut_slice()[e] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = dxs[t].as_slice()[e];
                let denom = numeric.abs().max(analytic.abs()).max(1e-2);
                assert!(
                    (numeric - analytic).abs() / denom < 3e-2,
                    "t={t} e={e} numeric={numeric} analytic={analytic}"
                );
            }
        }
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let mut rng = StdRng::seed_from_u64(11);
        let lstm = Lstm::new(2, 3, &mut rng);
        for j in 0..3 {
            assert_eq!(lstm.b[(0, j)], 0.0); // input gate
            assert_eq!(lstm.b[(0, 3 + j)], 1.0); // forget gate
        }
    }

    #[test]
    fn learns_to_remember_first_token() {
        // Tiny task: output should reflect the first input of the sequence.
        // Train h -> first x via a scalar readout folded into the loss.
        use crate::optimizer::{Adam, Optimizer};
        let mut rng = StdRng::seed_from_u64(12);
        let mut lstm = Lstm::new(1, 8, &mut rng);
        let mut readout = crate::dense::Dense::new(
            8,
            1,
            crate::activation::Activation::Linear,
            Init::XavierUniform,
            &mut rng,
        );
        let mut opt = Adam::new(0.02);

        let make_batch = |rng: &mut StdRng| -> (Vec<Matrix>, Matrix) {
            let batch = 16;
            let t = 6;
            let first: Vec<f32> = (0..batch)
                .map(|_| if rng.random::<f32>() < 0.5 { 1.0 } else { -1.0 })
                .collect();
            let mut xs = Vec::new();
            for step in 0..t {
                let data: Vec<f32> = (0..batch)
                    .map(|bi| {
                        if step == 0 {
                            first[bi]
                        } else {
                            rng.random_range(-0.1..0.1)
                        }
                    })
                    .collect();
                xs.push(Matrix::from_vec(batch, 1, data));
            }
            (xs, Matrix::from_vec(batch, 1, first))
        };

        let mut last_loss = f32::MAX;
        for epoch in 0..200 {
            let (xs, y) = make_batch(&mut rng);
            lstm.zero_grad();
            readout.zero_grad();
            let h = lstm.forward(&xs);
            let pred = readout.forward(&h);
            let mut diff = pred.clone();
            diff.add_scaled(&y, -1.0);
            let loss = diff.as_slice().iter().map(|&d| d * d).sum::<f32>() / y.rows() as f32;
            let mut dpred = diff;
            dpred.scale(2.0 / y.rows() as f32);
            let dh = readout.backward(&dpred);
            lstm.backward_last(&dh);
            let mut params = lstm.params_mut();
            params.extend(readout.params_mut());
            opt.step(&mut params);
            if epoch >= 195 {
                last_loss = loss;
            }
        }
        assert!(
            last_loss < 0.15,
            "LSTM failed to learn memory task: loss={last_loss}"
        );
    }
}
