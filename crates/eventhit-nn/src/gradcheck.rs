//! Finite-difference gradient checking.
//!
//! Used pervasively in tests: every layer's analytic backward pass is
//! validated against central finite differences of its forward loss.

use crate::optimizer::ParamMut;

/// Compares analytic gradients against central finite differences.
///
/// * `loss_fn` runs a forward pass and returns the scalar loss.
/// * `grad_fn` zeroes gradients, runs forward + backward, leaving analytic
///   gradients in the layer's accumulators.
/// * `params_fn` exposes the layer's `(value, grad)` pairs.
/// * `eps` is the perturbation size (f32 arithmetic wants ~1e-2).
///
/// Returns the maximum relative error over all checked entries. Large
/// parameter tensors are subsampled with a stride so checks stay fast.
pub fn check_gradients<L>(
    layer: &mut L,
    mut loss_fn: impl FnMut(&mut L) -> f32,
    mut grad_fn: impl FnMut(&mut L),
    params_fn: impl Fn(&mut L) -> Vec<ParamMut<'_>>,
    eps: f32,
) -> f32 {
    // Capture analytic gradients.
    grad_fn(layer);
    let analytic: Vec<Vec<f32>> = params_fn(layer)
        .iter()
        .map(|p| p.grad.as_slice().to_vec())
        .collect();

    let sizes: Vec<usize> = analytic.iter().map(Vec::len).collect();
    let mut max_rel_err = 0.0f32;

    for (pi, &size) in sizes.iter().enumerate() {
        // Check every entry for small tensors; subsample big ones.
        let stride = (size / 64).max(1);
        let mut ei = 0;
        while ei < size {
            let orig = {
                let mut params = params_fn(layer);
                let v = params[pi].value.as_mut_slice();
                let orig = v[ei];
                v[ei] = orig + eps;
                orig
            };
            let loss_plus = loss_fn(layer);
            {
                let mut params = params_fn(layer);
                params[pi].value.as_mut_slice()[ei] = orig - eps;
            }
            let loss_minus = loss_fn(layer);
            {
                let mut params = params_fn(layer);
                params[pi].value.as_mut_slice()[ei] = orig;
            }
            let numeric = (loss_plus - loss_minus) / (2.0 * eps);
            let a = analytic[pi][ei];
            let denom = a.abs().max(numeric.abs()).max(1e-2);
            let rel = (a - numeric).abs() / denom;
            if rel > max_rel_err {
                max_rel_err = rel;
            }
            ei += stride;
        }
    }
    max_rel_err
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    /// A toy "layer": loss = sum(w^2), so dL/dw = 2w.
    struct Quad {
        w: Matrix,
        g: Matrix,
    }

    impl Quad {
        fn params(&mut self) -> Vec<ParamMut<'_>> {
            vec![ParamMut {
                value: &mut self.w,
                grad: &self.g,
            }]
        }
    }

    #[test]
    fn accepts_correct_gradient() {
        let mut q = Quad {
            w: Matrix::from_vec(1, 3, vec![1.0, -2.0, 0.5]),
            g: Matrix::zeros(1, 3),
        };
        let err = check_gradients(
            &mut q,
            |q| q.w.as_slice().iter().map(|&x| x * x).sum(),
            |q| {
                q.g = q.w.map(|x| 2.0 * x);
            },
            |q| q.params(),
            1e-3,
        );
        assert!(err < 1e-2, "err={err}");
    }

    #[test]
    fn rejects_wrong_gradient() {
        let mut q = Quad {
            w: Matrix::from_vec(1, 2, vec![1.0, 2.0]),
            g: Matrix::zeros(1, 2),
        };
        let err = check_gradients(
            &mut q,
            |q| q.w.as_slice().iter().map(|&x| x * x).sum(),
            |q| {
                // Deliberately wrong: factor 3 instead of 2.
                q.g = q.w.map(|x| 3.0 * x);
            },
            |q| q.params(),
            1e-3,
        );
        assert!(err > 0.1, "gradient checker failed to flag wrong gradient");
    }
}
