//! First-order optimizers (SGD with momentum, Adam) and gradient clipping.
//!
//! Layers expose their trainable state as a stable-ordered list of
//! [`ParamMut`] pairs; optimizers keep per-parameter state (momentum /
//! moment estimates) keyed by position in that list, so callers must always
//! pass parameters in the same order.

use crate::matrix::Matrix;

/// A mutable view of one parameter tensor and its accumulated gradient.
pub struct ParamMut<'a> {
    /// The trainable values, updated in place by the optimizer.
    pub value: &'a mut Matrix,
    /// The gradient accumulated by the layer's backward pass.
    pub grad: &'a Matrix,
}

/// A first-order optimizer.
pub trait Optimizer {
    /// Applies one update step to the given parameters.
    fn step(&mut self, params: &mut [ParamMut<'_>]);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (e.g. for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Scales all gradients so their global L2 norm is at most `max_norm`.
///
/// Returns the pre-clipping norm. This mutates copies held by the caller —
/// since layer gradients are borrowed immutably by [`ParamMut`], clipping is
/// applied to an explicit list of mutable gradient matrices instead.
pub fn clip_global_norm(grads: &mut [&mut Matrix], max_norm: f32) -> f32 {
    let total: f32 = grads
        .iter()
        .map(|g| g.as_slice().iter().map(|&x| x * x).sum::<f32>())
        .sum::<f32>()
        .sqrt();
    if total > max_norm && total > 0.0 {
        let scale = max_norm / total;
        for g in grads.iter_mut() {
            g.scale(scale);
        }
    }
    total
}

/// Stochastic gradient descent with classical momentum.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates an SGD optimizer. `momentum = 0` gives plain SGD.
    pub fn new(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [ParamMut<'_>]) {
        if self.velocity.len() < params.len() {
            for p in params[self.velocity.len()..].iter() {
                self.velocity.push(vec![0.0; p.value.len()]);
            }
        }
        for (i, p) in params.iter_mut().enumerate() {
            let v = &mut self.velocity[i];
            assert_eq!(v.len(), p.value.len(), "parameter {i} changed size");
            let values = p.value.as_mut_slice();
            for ((val, vel), &g) in values.iter_mut().zip(v.iter_mut()).zip(p.grad.as_slice()) {
                *vel = self.momentum * *vel - self.lr * g;
                *val += *vel;
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba, 2015) with bias correction.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates an Adam optimizer with the standard defaults
    /// `beta1 = 0.9`, `beta2 = 0.999`, `eps = 1e-8`.
    pub fn new(lr: f32) -> Self {
        Self::with_betas(lr, 0.9, 0.999, 1e-8)
    }

    /// Creates an Adam optimizer with explicit hyper-parameters.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        Adam {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [ParamMut<'_>]) {
        if self.m.len() < params.len() {
            for p in params[self.m.len()..].iter() {
                self.m.push(vec![0.0; p.value.len()]);
                self.v.push(vec![0.0; p.value.len()]);
            }
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in params.iter_mut().enumerate() {
            assert_eq!(self.m[i].len(), p.value.len(), "parameter {i} changed size");
            let (m, v) = (&mut self.m[i], &mut self.v[i]);
            let values = p.value.as_mut_slice();
            for (((val, m), v), &g) in values
                .iter_mut()
                .zip(m.iter_mut())
                .zip(v.iter_mut())
                .zip(p.grad.as_slice())
            {
                *m = self.beta1 * *m + (1.0 - self.beta1) * g;
                *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
                let m_hat = *m / bc1;
                let v_hat = *v / bc2;
                *val -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(x) = sum((x - target)^2) and returns the final point.
    fn minimize<O: Optimizer>(
        opt: &mut O,
        start: Vec<f32>,
        target: &[f32],
        steps: usize,
    ) -> Matrix {
        let n = start.len();
        let mut x = Matrix::from_vec(1, n, start);
        for _ in 0..steps {
            let grad = Matrix::from_vec(
                1,
                n,
                x.as_slice()
                    .iter()
                    .zip(target)
                    .map(|(&xi, &t)| 2.0 * (xi - t))
                    .collect(),
            );
            let mut params = [ParamMut {
                value: &mut x,
                grad: &grad,
            }];
            opt.step(&mut params);
        }
        x
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0);
        let x = minimize(&mut opt, vec![5.0, -3.0], &[1.0, 2.0], 200);
        assert!((x.as_slice()[0] - 1.0).abs() < 1e-3);
        assert!((x.as_slice()[1] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::new(0.05, 0.9);
        let x = minimize(&mut opt, vec![5.0], &[-2.0], 300);
        assert!((x.as_slice()[0] + 2.0).abs() < 1e-2);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let x = minimize(&mut opt, vec![8.0, -8.0], &[0.5, 0.25], 500);
        assert!((x.as_slice()[0] - 0.5).abs() < 1e-2);
        assert!((x.as_slice()[1] - 0.25).abs() < 1e-2);
        assert_eq!(opt.steps(), 500);
    }

    #[test]
    fn adam_first_step_has_unit_scale() {
        // With bias correction, the very first Adam step is approximately
        // lr * sign(grad) regardless of gradient magnitude.
        let mut opt = Adam::new(0.01);
        let mut x = Matrix::from_vec(1, 1, vec![0.0]);
        let grad = Matrix::from_vec(1, 1, vec![1234.0]);
        opt.step(&mut [ParamMut {
            value: &mut x,
            grad: &grad,
        }]);
        assert!((x.as_slice()[0] + 0.01).abs() < 1e-4);
    }

    #[test]
    fn clip_global_norm_scales_down() {
        let mut g1 = Matrix::from_vec(1, 2, vec![3.0, 0.0]);
        let mut g2 = Matrix::from_vec(1, 1, vec![4.0]);
        let norm = clip_global_norm(&mut [&mut g1, &mut g2], 1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        let new_norm = (g1
            .as_slice()
            .iter()
            .chain(g2.as_slice())
            .map(|&x| x * x)
            .sum::<f32>())
        .sqrt();
        assert!((new_norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_global_norm_no_op_below_threshold() {
        let mut g = Matrix::from_vec(1, 2, vec![0.3, 0.4]);
        let norm = clip_global_norm(&mut [&mut g], 1.0);
        assert!((norm - 0.5).abs() < 1e-6);
        assert_eq!(g.as_slice(), &[0.3, 0.4]);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Adam::new(0.5);
        assert_eq!(opt.learning_rate(), 0.5);
        opt.set_learning_rate(0.25);
        assert_eq!(opt.learning_rate(), 0.25);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn rejects_non_positive_lr() {
        let _ = Sgd::new(0.0, 0.0);
    }
}
