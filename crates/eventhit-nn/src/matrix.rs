//! Dense row-major `f32` matrices.
//!
//! This is the storage type used by every layer in the network. Data is a
//! single contiguous `Vec<f32>` in row-major order, which lets optimizers
//! treat parameters as flat slices.
//!
//! The product kernels ([`Matrix::matmul`], [`Matrix::t_matmul`],
//! [`Matrix::matmul_t`], [`Matrix::affine_t`],
//! [`Matrix::fused_gate_affine`]) are cache-blocked over `k` and unrolled
//! eight output columns wide so the autovectorizer gets independent
//! accumulator chains to work with (std-only, stable rustc). Every kernel
//! keeps each output element's accumulation a *single* chain over `k` in
//! ascending order, so the blocked kernels are bit-identical to the naive
//! reference implementations ([`Matrix::matmul_naive`] and friends) that
//! are retained for the kernel-equivalence test suite, and bit-identical
//! across worker counts.

use std::fmt;
use std::ops::{Index, IndexMut};
use std::sync::atomic::{AtomicBool, Ordering};

use eventhit_parallel::Pool;
use eventhit_rng::Rng;

/// Multiply–add count below which the product kernels stay sequential.
///
/// Row-blocking a product costs a scoped-thread spawn per region (tens of
/// microseconds); a 2^20-flop product (~128×64·64×128) is where that
/// overhead drops comfortably below the arithmetic. Below the threshold
/// the kernels never even resolve a [`Pool`].
pub const PAR_THRESHOLD: usize = 1 << 20;

/// `k`-panel length for the cache-blocked kernels: an eight-row panel of
/// the operand plus the walked row stays within L1 (9 × 256 × 4 B ≈ 9 KiB).
/// Blocks are consumed in ascending order into the same accumulator chain,
/// so blocking never changes the bits.
const K_BLOCK: usize = 256;

/// When set, the product kernels run their retained naive inner loops
/// instead of the blocked/unrolled ones (see [`set_naive_kernels`]).
static FORCE_NAIVE: AtomicBool = AtomicBool::new(false);

/// Routes all product kernels through the retained naive inner loops.
///
/// This is a bench/test hook: `benches/kernel_benches.rs` uses it to
/// measure the blocked kernels against the pre-refactor baseline in one
/// process. Both paths are bit-identical, so flipping the switch never
/// changes results — only throughput.
///
/// ```
/// use eventhit_nn::matrix::{set_naive_kernels, Matrix};
/// let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// set_naive_kernels(true);
/// let slow = a.matmul(&a);
/// set_naive_kernels(false);
/// assert_eq!(slow, a.matmul(&a));
/// ```
pub fn set_naive_kernels(enabled: bool) {
    FORCE_NAIVE.store(enabled, Ordering::Relaxed);
}

/// True if [`set_naive_kernels`] has routed the kernels to the naive
/// inner loops.
pub fn naive_kernels_forced() -> bool {
    FORCE_NAIVE.load(Ordering::Relaxed)
}

/// 8-wide unrolled `out_row += a * b_row` (the `ikj` inner loop).
#[inline]
fn axpy8(a: f32, b_row: &[f32], out_row: &mut [f32]) {
    let mut o_it = out_row.chunks_exact_mut(8);
    let mut b_it = b_row.chunks_exact(8);
    for (o, b) in (&mut o_it).zip(&mut b_it) {
        o[0] += a * b[0];
        o[1] += a * b[1];
        o[2] += a * b[2];
        o[3] += a * b[3];
        o[4] += a * b[4];
        o[5] += a * b[5];
        o[6] += a * b[6];
        o[7] += a * b[7];
    }
    for (o, &b) in o_it.into_remainder().iter_mut().zip(b_it.remainder()) {
        *o += a * b;
    }
}

/// Blocked/unrolled row kernel for `A * B^T`: accumulates
/// `out_row[j] += dot(a_row, rhs.row(j))` eight output columns at a time,
/// `k`-panelled. Each `out_row[j]` is a single accumulator chain over `k`
/// in ascending order (partial sums round-trip through `out_row` between
/// panels), so the result is bit-identical to the naive dot product.
#[inline]
fn dot_rows8(a_row: &[f32], rhs: &Matrix, out_row: &mut [f32]) {
    let kdim = a_row.len();
    let out_cols = out_row.len();
    let mut kb = 0;
    while kb < kdim {
        let kend = (kb + K_BLOCK).min(kdim);
        let a_blk = &a_row[kb..kend];
        let mut j = 0;
        while j + 8 <= out_cols {
            let b0 = &rhs.row(j)[kb..kend];
            let b1 = &rhs.row(j + 1)[kb..kend];
            let b2 = &rhs.row(j + 2)[kb..kend];
            let b3 = &rhs.row(j + 3)[kb..kend];
            let b4 = &rhs.row(j + 4)[kb..kend];
            let b5 = &rhs.row(j + 5)[kb..kend];
            let b6 = &rhs.row(j + 6)[kb..kend];
            let b7 = &rhs.row(j + 7)[kb..kend];
            let mut acc = [
                out_row[j],
                out_row[j + 1],
                out_row[j + 2],
                out_row[j + 3],
                out_row[j + 4],
                out_row[j + 5],
                out_row[j + 6],
                out_row[j + 7],
            ];
            for (idx, &a) in a_blk.iter().enumerate() {
                acc[0] += a * b0[idx];
                acc[1] += a * b1[idx];
                acc[2] += a * b2[idx];
                acc[3] += a * b3[idx];
                acc[4] += a * b4[idx];
                acc[5] += a * b5[idx];
                acc[6] += a * b6[idx];
                acc[7] += a * b7[idx];
            }
            out_row[j..j + 8].copy_from_slice(&acc);
            j += 8;
        }
        while j < out_cols {
            let b = &rhs.row(j)[kb..kend];
            let mut acc = out_row[j];
            for (idx, &a) in a_blk.iter().enumerate() {
                acc += a * b[idx];
            }
            out_row[j] = acc;
            j += 1;
        }
        kb = kend;
    }
}

/// Naive row kernel for `A * B^T`: one scalar dot product per output
/// column. Retained as the bit-exact reference for [`dot_rows8`].
#[inline]
fn dot_rows_naive(a_row: &[f32], rhs: &Matrix, out_row: &mut [f32]) {
    for (j, o) in out_row.iter_mut().enumerate() {
        let b_row = rhs.row(j);
        let mut acc = 0.0f32;
        for (&a, &b) in a_row.iter().zip(b_row) {
            acc += a * b;
        }
        *o = acc;
    }
}

/// Fused gate row kernel: `out_row[j] = dot(x_row, wx.row(j)) +
/// dot(h_row, wh.row(j)) + bias[j]`, eight output columns at a time
/// (sixteen independent accumulator chains). Each dot is its own single
/// chain over ascending `k` and the two are added only once both are
/// complete, matching the unfused `matmul_t` + `add_assign` +
/// `add_row_broadcast` sequence bit for bit.
#[inline]
fn gate_row8(
    x_row: &[f32],
    wx: &Matrix,
    h_row: &[f32],
    wh: &Matrix,
    bias: &[f32],
    out_row: &mut [f32],
) {
    let out_cols = out_row.len();
    let mut j = 0;
    while j + 8 <= out_cols {
        let mut accx = [0.0f32; 8];
        let x0 = &wx.row(j)[..x_row.len()];
        let x1 = &wx.row(j + 1)[..x_row.len()];
        let x2 = &wx.row(j + 2)[..x_row.len()];
        let x3 = &wx.row(j + 3)[..x_row.len()];
        let x4 = &wx.row(j + 4)[..x_row.len()];
        let x5 = &wx.row(j + 5)[..x_row.len()];
        let x6 = &wx.row(j + 6)[..x_row.len()];
        let x7 = &wx.row(j + 7)[..x_row.len()];
        for (idx, &a) in x_row.iter().enumerate() {
            accx[0] += a * x0[idx];
            accx[1] += a * x1[idx];
            accx[2] += a * x2[idx];
            accx[3] += a * x3[idx];
            accx[4] += a * x4[idx];
            accx[5] += a * x5[idx];
            accx[6] += a * x6[idx];
            accx[7] += a * x7[idx];
        }
        let mut acch = [0.0f32; 8];
        let h0 = &wh.row(j)[..h_row.len()];
        let h1 = &wh.row(j + 1)[..h_row.len()];
        let h2 = &wh.row(j + 2)[..h_row.len()];
        let h3 = &wh.row(j + 3)[..h_row.len()];
        let h4 = &wh.row(j + 4)[..h_row.len()];
        let h5 = &wh.row(j + 5)[..h_row.len()];
        let h6 = &wh.row(j + 6)[..h_row.len()];
        let h7 = &wh.row(j + 7)[..h_row.len()];
        for (idx, &a) in h_row.iter().enumerate() {
            acch[0] += a * h0[idx];
            acch[1] += a * h1[idx];
            acch[2] += a * h2[idx];
            acch[3] += a * h3[idx];
            acch[4] += a * h4[idx];
            acch[5] += a * h5[idx];
            acch[6] += a * h6[idx];
            acch[7] += a * h7[idx];
        }
        for t in 0..8 {
            out_row[j + t] = (accx[t] + acch[t]) + bias[j + t];
        }
        j += 8;
    }
    while j < out_cols {
        let mut accx = 0.0f32;
        for (&a, &b) in x_row.iter().zip(wx.row(j)) {
            accx += a * b;
        }
        let mut acch = 0.0f32;
        for (&a, &b) in h_row.iter().zip(wh.row(j)) {
            acch += a * b;
        }
        out_row[j] = (accx + acch) + bias[j];
        j += 1;
    }
}

/// Naive fused gate row kernel: the reference scalar form of
/// [`gate_row8`], one output column at a time.
#[inline]
fn gate_row_naive(
    x_row: &[f32],
    wx: &Matrix,
    h_row: &[f32],
    wh: &Matrix,
    bias: &[f32],
    out_row: &mut [f32],
) {
    for (j, o) in out_row.iter_mut().enumerate() {
        let mut accx = 0.0f32;
        for (&a, &b) in x_row.iter().zip(wx.row(j)) {
            accx += a * b;
        }
        let mut acch = 0.0f32;
        for (&a, &b) in h_row.iter().zip(wh.row(j)) {
            acch += a * b;
        }
        *o = (accx + acch) + bias[j];
    }
}

/// A dense row-major matrix of `f32` values.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "inconsistent row length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates a matrix with entries drawn uniformly from `[lo, hi)`.
    pub fn uniform<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        lo: f32,
        hi: f32,
        rng: &mut R,
    ) -> Self {
        let data = (0..rows * cols).map(|_| rng.random_range(lo..hi)).collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the matrix has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the underlying data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the underlying data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrows row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies `src` into row `r`.
    ///
    /// # Panics
    /// Panics if `src.len() != cols`.
    pub fn set_row(&mut self, r: usize, src: &[f32]) {
        assert_eq!(src.len(), self.cols);
        self.row_mut(r).copy_from_slice(src);
    }

    /// The pool the product kernels use for a product of `flops`
    /// multiply–adds: sequential below [`PAR_THRESHOLD`], the ambient
    /// [`Pool::current`] above it.
    fn product_pool(flops: usize) -> Pool {
        if flops < PAR_THRESHOLD {
            Pool::sequential()
        } else {
            Pool::current()
        }
    }

    /// The row-block length (in output rows) for splitting an
    /// `out_rows`-row product across `pool`: ~4 blocks per worker so
    /// stealing can rebalance, and the whole matrix in one block when the
    /// pool is sequential.
    fn row_block(out_rows: usize, pool: &Pool) -> usize {
        out_rows.div_ceil(pool.workers() * 4).max(1)
    }

    /// Matrix product `self * rhs`.
    ///
    /// Uses `ikj` loop ordering, `k`-panelled so the touched `rhs` rows
    /// stay cache-resident and 8-wide unrolled along the output row.
    /// Products of at least [`PAR_THRESHOLD`] multiply–adds are
    /// row-blocked across [`Pool::current`]; the result is bit-identical
    /// either way and bit-identical to [`Matrix::matmul_naive`] (each
    /// output element's accumulation order never changes).
    ///
    /// ```
    /// use eventhit_nn::matrix::Matrix;
    /// let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
    /// let id = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
    /// assert_eq!(a.matmul(&id), a);
    /// assert_eq!(a.matmul(&id), a.matmul_naive(&id));
    /// ```
    ///
    /// # Panics
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        self.matmul_with(rhs, &Matrix::product_pool(self.rows * self.cols * rhs.cols))
    }

    /// [`Matrix::matmul`] on an explicit [`Pool`] (no size threshold).
    pub fn matmul_with(&self, rhs: &Matrix, pool: &Pool) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let out_cols = rhs.cols;
        let mut out = Matrix::zeros(self.rows, out_cols);
        if out.data.is_empty() {
            return out;
        }
        let block = Matrix::row_block(self.rows, pool);
        let naive = naive_kernels_forced();
        pool.for_each_chunk_mut(&mut out.data, block * out_cols, |_, offset, chunk| {
            let row0 = offset / out_cols;
            if naive {
                for (local, out_row) in chunk.chunks_mut(out_cols).enumerate() {
                    let a_row = self.row(row0 + local);
                    for (k, &a) in a_row.iter().enumerate() {
                        if a == 0.0 {
                            continue;
                        }
                        let b_row = rhs.row(k);
                        for (o, &b) in out_row.iter_mut().zip(b_row) {
                            *o += a * b;
                        }
                    }
                }
                return;
            }
            // k-panelled ikj: for each panel, sweep every output row in
            // the chunk so the touched rhs panel stays hot. Panels are
            // consumed in ascending k into the same output elements, so
            // per-element accumulation order matches the naive kernel.
            let mut kb = 0;
            while kb < self.cols {
                let kend = (kb + K_BLOCK).min(self.cols);
                for (local, out_row) in chunk.chunks_mut(out_cols).enumerate() {
                    let a_row = self.row(row0 + local);
                    for (k, &a) in a_row[kb..kend].iter().enumerate() {
                        if a == 0.0 {
                            continue;
                        }
                        axpy8(a, rhs.row(kb + k), out_row);
                    }
                }
                kb = kend;
            }
        });
        out
    }

    /// Sequential naive `self * rhs` (`ikj`, no blocking, no unrolling,
    /// no pool). Retained as the bit-exact reference implementation for
    /// the kernel-equivalence test suite.
    ///
    /// ```
    /// use eventhit_nn::matrix::Matrix;
    /// let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
    /// let b = Matrix::from_vec(2, 1, vec![3.0, 4.0]);
    /// assert_eq!(a.matmul_naive(&b)[(0, 0)], 11.0);
    /// ```
    ///
    /// # Panics
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul_naive(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = rhs.row(k);
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix product `self^T * rhs` without materializing the transpose.
    ///
    /// `k`-panelled and 8-wide unrolled like [`Matrix::matmul`]; large
    /// products parallelize the same way. Each output element accumulates
    /// over `k` in ascending order in every variant, so the bits never
    /// depend on the pool and match [`Matrix::t_matmul_naive`].
    ///
    /// ```
    /// use eventhit_nn::matrix::Matrix;
    /// let a = Matrix::from_vec(2, 1, vec![1.0, 2.0]);
    /// let b = Matrix::from_vec(2, 1, vec![3.0, 4.0]);
    /// assert_eq!(a.t_matmul(&b)[(0, 0)], 11.0);
    /// assert_eq!(a.t_matmul(&b), a.t_matmul_naive(&b));
    /// ```
    ///
    /// # Panics
    /// Panics if `self.rows != rhs.rows`.
    pub fn t_matmul(&self, rhs: &Matrix) -> Matrix {
        self.t_matmul_with(rhs, &Matrix::product_pool(self.rows * self.cols * rhs.cols))
    }

    /// [`Matrix::t_matmul`] on an explicit [`Pool`] (no size threshold).
    pub fn t_matmul_with(&self, rhs: &Matrix, pool: &Pool) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "t_matmul shape mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let out_cols = rhs.cols;
        let mut out = Matrix::zeros(self.cols, out_cols);
        if out.data.is_empty() {
            return out;
        }
        let block = Matrix::row_block(self.cols, pool);
        let naive = naive_kernels_forced();
        pool.for_each_chunk_mut(&mut out.data, block * out_cols, |_, offset, chunk| {
            let row0 = offset / out_cols;
            if naive {
                for (local, out_row) in chunk.chunks_mut(out_cols).enumerate() {
                    let i = row0 + local;
                    for k in 0..self.rows {
                        let a = self.data[k * self.cols + i];
                        if a == 0.0 {
                            continue;
                        }
                        let b_row = rhs.row(k);
                        for (o, &b) in out_row.iter_mut().zip(b_row) {
                            *o += a * b;
                        }
                    }
                }
                return;
            }
            // k-panelled: sweep every output row in the chunk per panel so
            // the rhs panel stays hot; a is a strided column walk of self.
            let mut kb = 0;
            while kb < self.rows {
                let kend = (kb + K_BLOCK).min(self.rows);
                for (local, out_row) in chunk.chunks_mut(out_cols).enumerate() {
                    let i = row0 + local;
                    for k in kb..kend {
                        let a = self.data[k * self.cols + i];
                        if a == 0.0 {
                            continue;
                        }
                        axpy8(a, rhs.row(k), out_row);
                    }
                }
                kb = kend;
            }
        });
        out
    }

    /// Sequential naive `self^T * rhs` (no blocking, no unrolling, no
    /// pool). Retained as the bit-exact reference implementation for the
    /// kernel-equivalence test suite.
    ///
    /// ```
    /// use eventhit_nn::matrix::Matrix;
    /// let a = Matrix::from_vec(2, 1, vec![1.0, 2.0]);
    /// assert_eq!(a.t_matmul_naive(&a)[(0, 0)], 5.0);
    /// ```
    ///
    /// # Panics
    /// Panics if `self.rows != rhs.rows`.
    pub fn t_matmul_naive(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "t_matmul shape mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let out_cols = rhs.cols;
        let mut out = Matrix::zeros(self.cols, out_cols);
        for i in 0..self.cols {
            let out_row = &mut out.data[i * out_cols..(i + 1) * out_cols];
            for k in 0..self.rows {
                let a = self.data[k * self.cols + i];
                if a == 0.0 {
                    continue;
                }
                let b_row = rhs.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix product `self * rhs^T` without materializing the transpose.
    ///
    /// Every output element is an independent dot product; the blocked
    /// kernel runs eight of them at once (eight independent accumulator
    /// chains — the ILP the scalar dot can't offer), `k`-panelled for
    /// cache residency. Large products parallelize like
    /// [`Matrix::matmul`]; bits never depend on the pool and match
    /// [`Matrix::matmul_t_naive`].
    ///
    /// ```
    /// use eventhit_nn::matrix::Matrix;
    /// let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
    /// let b = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
    /// assert_eq!(a.matmul_t(&b)[(0, 0)], 11.0);
    /// assert_eq!(a.matmul_t(&b), a.matmul_t_naive(&b));
    /// ```
    ///
    /// # Panics
    /// Panics if `self.cols != rhs.cols`.
    pub fn matmul_t(&self, rhs: &Matrix) -> Matrix {
        self.matmul_t_with(rhs, &Matrix::product_pool(self.rows * self.cols * rhs.rows))
    }

    /// [`Matrix::matmul_t`] on an explicit [`Pool`] (no size threshold).
    pub fn matmul_t_with(&self, rhs: &Matrix, pool: &Pool) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_t shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let out_cols = rhs.rows;
        let mut out = Matrix::zeros(self.rows, out_cols);
        if out.data.is_empty() {
            return out;
        }
        let block = Matrix::row_block(self.rows, pool);
        let naive = naive_kernels_forced();
        pool.for_each_chunk_mut(&mut out.data, block * out_cols, |_, offset, chunk| {
            let row0 = offset / out_cols;
            for (local, out_row) in chunk.chunks_mut(out_cols).enumerate() {
                let a_row = self.row(row0 + local);
                if naive {
                    dot_rows_naive(a_row, rhs, out_row);
                } else {
                    dot_rows8(a_row, rhs, out_row);
                }
            }
        });
        out
    }

    /// Sequential naive `self * rhs^T` (one scalar dot product per output
    /// element, no pool). Retained as the bit-exact reference
    /// implementation for the kernel-equivalence test suite.
    ///
    /// ```
    /// use eventhit_nn::matrix::Matrix;
    /// let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
    /// assert_eq!(a.matmul_t_naive(&a)[(0, 0)], 5.0);
    /// ```
    ///
    /// # Panics
    /// Panics if `self.cols != rhs.cols`.
    pub fn matmul_t_naive(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_t shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let out_cols = rhs.rows;
        let mut out = Matrix::zeros(self.rows, out_cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * out_cols..(i + 1) * out_cols];
            dot_rows_naive(a_row, rhs, out_row);
        }
        out
    }

    /// Affine map `self * w^T + bias` (bias broadcast to every row) in one
    /// pass — the [`crate::dense::Dense`] / GRU pre-activation. Per output
    /// element the dot product completes (single chain, ascending `k`)
    /// before the bias is added, exactly like `matmul_t` followed by
    /// `add_row_broadcast`, so the fused kernel is bit-identical to
    /// [`Matrix::affine_t_naive`] and pool-invariant.
    ///
    /// ```
    /// use eventhit_nn::matrix::Matrix;
    /// let x = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
    /// let w = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
    /// assert_eq!(x.affine_t(&w, &[0.5])[(0, 0)], 11.5);
    /// ```
    ///
    /// # Panics
    /// Panics if `self.cols != w.cols` or `bias.len() != w.rows`.
    pub fn affine_t(&self, w: &Matrix, bias: &[f32]) -> Matrix {
        assert_eq!(
            self.cols, w.cols,
            "affine_t shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, w.rows, w.cols
        );
        assert_eq!(bias.len(), w.rows, "affine_t bias length mismatch");
        let out_cols = w.rows;
        let mut out = Matrix::zeros(self.rows, out_cols);
        if out.data.is_empty() {
            return out;
        }
        let pool = Matrix::product_pool(self.rows * self.cols * w.rows);
        let block = Matrix::row_block(self.rows, &pool);
        let naive = naive_kernels_forced();
        pool.for_each_chunk_mut(&mut out.data, block * out_cols, |_, offset, chunk| {
            let row0 = offset / out_cols;
            for (local, out_row) in chunk.chunks_mut(out_cols).enumerate() {
                let a_row = self.row(row0 + local);
                if naive {
                    dot_rows_naive(a_row, w, out_row);
                } else {
                    dot_rows8(a_row, w, out_row);
                }
                for (o, &b) in out_row.iter_mut().zip(bias) {
                    *o += b;
                }
            }
        });
        out
    }

    /// Sequential naive reference for [`Matrix::affine_t`]: `matmul_t`
    /// then a bias broadcast, composed from the retained naive kernels.
    ///
    /// ```
    /// use eventhit_nn::matrix::Matrix;
    /// let x = Matrix::from_vec(1, 1, vec![2.0]);
    /// let w = Matrix::from_vec(1, 1, vec![3.0]);
    /// assert_eq!(x.affine_t_naive(&w, &[1.0])[(0, 0)], 7.0);
    /// ```
    pub fn affine_t_naive(&self, w: &Matrix, bias: &[f32]) -> Matrix {
        assert_eq!(bias.len(), w.rows, "affine_t bias length mismatch");
        let mut out = self.matmul_t_naive(w);
        out.add_row_broadcast(bias);
        out
    }

    /// Fused recurrent gate pre-activation
    /// `self * wx^T + h * wh^T + bias` in a single pass over the
    /// concatenated gate weights — the LSTM/GRU per-step kernel. For each
    /// output element both dot products complete as independent single
    /// chains (ascending `k`), are added to each other, then the bias is
    /// added — exactly the `matmul_t` + `add_assign` +
    /// `add_row_broadcast` sequence it replaces, so it is bit-identical
    /// to [`Matrix::fused_gate_affine_naive`] and pool-invariant.
    ///
    /// ```
    /// use eventhit_nn::matrix::Matrix;
    /// let x = Matrix::from_vec(1, 1, vec![2.0]);
    /// let wx = Matrix::from_vec(1, 1, vec![3.0]);
    /// let h = Matrix::from_vec(1, 1, vec![5.0]);
    /// let wh = Matrix::from_vec(1, 1, vec![7.0]);
    /// let pre = x.fused_gate_affine(&wx, &h, &wh, &[1.0]);
    /// assert_eq!(pre[(0, 0)], 42.0); // 2*3 + 5*7 + 1
    /// ```
    ///
    /// # Panics
    /// Panics on any shape mismatch (`self.cols != wx.cols`,
    /// `h.cols != wh.cols`, `self.rows != h.rows`, `wx.rows != wh.rows`,
    /// or `bias.len() != wx.rows`).
    pub fn fused_gate_affine(&self, wx: &Matrix, h: &Matrix, wh: &Matrix, bias: &[f32]) -> Matrix {
        assert_eq!(self.cols, wx.cols, "fused_gate_affine x/wx mismatch");
        assert_eq!(h.cols, wh.cols, "fused_gate_affine h/wh mismatch");
        assert_eq!(self.rows, h.rows, "fused_gate_affine batch mismatch");
        assert_eq!(wx.rows, wh.rows, "fused_gate_affine gate-count mismatch");
        assert_eq!(bias.len(), wx.rows, "fused_gate_affine bias mismatch");
        let out_cols = wx.rows;
        let mut out = Matrix::zeros(self.rows, out_cols);
        if out.data.is_empty() {
            return out;
        }
        let flops = self.rows * (self.cols + h.cols) * out_cols;
        let pool = Matrix::product_pool(flops);
        let block = Matrix::row_block(self.rows, &pool);
        let naive = naive_kernels_forced();
        pool.for_each_chunk_mut(&mut out.data, block * out_cols, |_, offset, chunk| {
            let row0 = offset / out_cols;
            for (local, out_row) in chunk.chunks_mut(out_cols).enumerate() {
                let r = row0 + local;
                if naive {
                    gate_row_naive(self.row(r), wx, h.row(r), wh, bias, out_row);
                } else {
                    gate_row8(self.row(r), wx, h.row(r), wh, bias, out_row);
                }
            }
        });
        out
    }

    /// Sequential naive reference for [`Matrix::fused_gate_affine`]:
    /// two naive `matmul_t` products, an elementwise add, and a bias
    /// broadcast — the exact pre-fusion gate arithmetic.
    ///
    /// ```
    /// use eventhit_nn::matrix::Matrix;
    /// let x = Matrix::from_vec(1, 1, vec![2.0]);
    /// let w = Matrix::from_vec(1, 1, vec![3.0]);
    /// let pre = x.fused_gate_affine_naive(&w, &x, &w, &[0.0]);
    /// assert_eq!(pre[(0, 0)], 12.0);
    /// ```
    pub fn fused_gate_affine_naive(
        &self,
        wx: &Matrix,
        h: &Matrix,
        wh: &Matrix,
        bias: &[f32],
    ) -> Matrix {
        let mut pre = self.matmul_t_naive(wx);
        pre.add_assign(&h.matmul_t_naive(wh));
        pre.add_row_broadcast(bias);
        pre
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Elementwise sum, `self += rhs`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Elementwise `self += alpha * rhs`.
    pub fn add_scaled(&mut self, rhs: &Matrix, alpha: f32) {
        assert_eq!(self.shape(), rhs.shape(), "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Adds a row vector `bias` (length `cols`) to every row.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "broadcast length mismatch");
        for r in 0..self.rows {
            for (a, &b) in self.row_mut(r).iter_mut().zip(bias) {
                *a += b;
            }
        }
    }

    /// Elementwise (Hadamard) product, returning a new matrix.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "hadamard shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a * b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Multiplies every entry by `alpha` in place.
    pub fn scale(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Applies `f` to every entry, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let data = self.data.iter().map(|&x| f(x)).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Applies `f` to every entry in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for a in &mut self.data {
            *a = f(*a);
        }
    }

    /// Sets all entries to zero (reuses the allocation).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Sums entries along rows, producing a length-`cols` vector
    /// (i.e. a column-wise sum). Useful for bias gradients.
    pub fn sum_rows(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Horizontally concatenates `self` and `rhs` (same row count).
    pub fn hcat(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "hcat row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + rhs.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(rhs.row(r));
        }
        out
    }

    /// Splits the matrix into two column blocks at column `at`.
    pub fn hsplit(&self, at: usize) -> (Matrix, Matrix) {
        assert!(at <= self.cols, "split point out of range");
        let mut left = Matrix::zeros(self.rows, at);
        let mut right = Matrix::zeros(self.rows, self.cols - at);
        for r in 0..self.rows {
            left.row_mut(r).copy_from_slice(&self.row(r)[..at]);
            right.row_mut(r).copy_from_slice(&self.row(r)[at..]);
        }
        (left, right)
    }

    /// Extracts the sub-matrix of the given rows (copy).
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            out.set_row(i, self.row(r));
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Maximum absolute entry (0 for an empty matrix).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// True if every entry is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for r in 0..show {
            write!(f, "  [")?;
            let cols = self.cols.min(8);
            for c in 0..cols {
                write!(f, "{:9.4}", self[(r, c)])?;
                if c + 1 < cols {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventhit_rng::rngs::StdRng;
    use eventhit_rng::SeedableRng;

    fn sample(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::uniform(rows, cols, -1.0, 1.0, &mut rng)
    }

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_round_trips() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_rejects_bad_len() {
        let _ = Matrix::from_vec(2, 3, vec![1.0]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c[(0, 0)], 58.0);
        assert_eq!(c[(0, 1)], 64.0);
        assert_eq!(c[(1, 0)], 139.0);
        assert_eq!(c[(1, 1)], 154.0);
    }

    #[test]
    fn identity_is_neutral() {
        let a = sample(4, 4, 1);
        let mut id = Matrix::zeros(4, 4);
        for i in 0..4 {
            id[(i, i)] = 1.0;
        }
        let prod = a.matmul(&id);
        for (x, y) in prod.as_slice().iter().zip(a.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = sample(5, 3, 2);
        let b = sample(5, 4, 3);
        let fast = a.t_matmul(&b);
        let slow = a.transpose().matmul(&b);
        assert_eq!(fast.shape(), (3, 4));
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = sample(5, 3, 4);
        let b = sample(4, 3, 5);
        let fast = a.matmul_t(&b);
        let slow = a.matmul(&b.transpose());
        assert_eq!(fast.shape(), (5, 4));
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_involution() {
        let a = sample(3, 7, 6);
        let back = a.transpose().transpose();
        assert_eq!(a, back);
    }

    #[test]
    fn add_and_scale() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        a.add_assign(&b);
        assert!(a.as_slice().iter().all(|&x| x == 3.0));
        a.scale(2.0);
        assert!(a.as_slice().iter().all(|&x| x == 6.0));
        a.add_scaled(&b, -0.5);
        assert!(a.as_slice().iter().all(|&x| x == 5.0));
    }

    #[test]
    fn row_broadcast_adds_bias() {
        let mut a = Matrix::zeros(3, 2);
        a.add_row_broadcast(&[1.0, -1.0]);
        for r in 0..3 {
            assert_eq!(a.row(r), &[1.0, -1.0]);
        }
    }

    #[test]
    fn hadamard_multiplies_elementwise() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn sum_rows_is_columnwise_sum() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.sum_rows(), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn hcat_hsplit_round_trip() {
        let a = sample(3, 2, 7);
        let b = sample(3, 5, 8);
        let cat = a.hcat(&b);
        assert_eq!(cat.shape(), (3, 7));
        let (l, r) = cat.hsplit(2);
        assert_eq!(l, a);
        assert_eq!(r, b);
    }

    #[test]
    fn select_rows_copies_requested_rows() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let sel = a.select_rows(&[2, 0]);
        assert_eq!(sel.row(0), &[5.0, 6.0]);
        assert_eq!(sel.row(1), &[1.0, 2.0]);
    }

    #[test]
    fn norm_and_max_abs() {
        let a = Matrix::from_vec(1, 2, vec![3.0, -4.0]);
        assert!((a.norm() - 5.0).abs() < 1e-6);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn product_kernels_are_pool_invariant_to_the_bit() {
        // Big enough that a 4-worker pool actually splits the rows; odd
        // shapes so the blocks are uneven.
        let a = sample(67, 41, 10);
        let b = sample(41, 53, 11);
        let c = sample(67, 53, 12);
        let seq = Pool::sequential();
        let base_mm = a.matmul_with(&b, &seq);
        let base_t = a.t_matmul_with(&c, &seq);
        let base_mt = a.matmul_t_with(&b.transpose(), &seq);
        for workers in [2, 3, 4, 8] {
            let pool = Pool::new(workers);
            assert_eq!(
                a.matmul_with(&b, &pool),
                base_mm,
                "matmul workers={workers}"
            );
            assert_eq!(
                a.t_matmul_with(&c, &pool),
                base_t,
                "t_matmul workers={workers}"
            );
            assert_eq!(
                a.matmul_t_with(&b.transpose(), &pool),
                base_mt,
                "matmul_t workers={workers}"
            );
        }
        // The auto-threshold entry points agree with the explicit ones.
        assert_eq!(a.matmul(&b), base_mm);
        assert_eq!(a.t_matmul(&c), base_t);
    }

    #[test]
    fn parallel_kernels_handle_degenerate_shapes() {
        let pool = Pool::new(4);
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 0);
        assert_eq!(a.matmul_with(&b, &pool).shape(), (0, 0));
        let c = sample(3, 5, 13);
        assert_eq!(c.matmul_with(&b, &pool).shape(), (3, 0));
        let one = sample(1, 4, 14);
        let d = sample(4, 1, 15);
        assert_eq!(one.matmul_with(&d, &pool).shape(), (1, 1));
    }

    #[test]
    fn blocked_kernels_bit_match_naive_references() {
        // Shapes straddling the 8-wide unroll and K_BLOCK boundaries.
        for &(m, k, n) in &[(1, 1, 1), (3, 7, 9), (8, 256, 8), (13, 300, 17)] {
            let a = sample(m, k, (m * k + n) as u64);
            let b = sample(k, n, (m + k * n) as u64);
            assert_eq!(a.matmul(&b), a.matmul_naive(&b), "{m}x{k}x{n}");
            let at = sample(k, m, (m + k + n) as u64);
            assert_eq!(at.t_matmul(&b), at.t_matmul_naive(&b), "{m}x{k}x{n}");
            let bt = b.transpose();
            assert_eq!(a.matmul_t(&bt), a.matmul_t_naive(&bt), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn affine_t_matches_unfused_sequence() {
        let x = sample(5, 7, 20);
        let w = sample(11, 7, 21);
        let bias: Vec<f32> = (0..11).map(|i| i as f32 * 0.1 - 0.5).collect();
        let mut want = x.matmul_t(&w);
        want.add_row_broadcast(&bias);
        assert_eq!(x.affine_t(&w, &bias), want);
        assert_eq!(x.affine_t_naive(&w, &bias), want);
    }

    #[test]
    fn fused_gate_affine_matches_unfused_sequence() {
        let x = sample(4, 6, 22);
        let wx = sample(20, 6, 23);
        let h = sample(4, 5, 24);
        let wh = sample(20, 5, 25);
        let bias: Vec<f32> = (0..20).map(|i| (i as f32).sin()).collect();
        let mut want = x.matmul_t(&wx);
        want.add_assign(&h.matmul_t(&wh));
        want.add_row_broadcast(&bias);
        assert_eq!(x.fused_gate_affine(&wx, &h, &wh, &bias), want);
        assert_eq!(x.fused_gate_affine_naive(&wx, &h, &wh, &bias), want);
    }

    #[test]
    fn naive_switch_does_not_change_results() {
        let a = sample(9, 33, 30);
        let b = sample(33, 12, 31);
        let fast = a.matmul(&b);
        set_naive_kernels(true);
        let slow = a.matmul(&b);
        set_naive_kernels(false);
        assert_eq!(fast, slow);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut a = Matrix::zeros(1, 2);
        assert!(a.all_finite());
        a[(0, 1)] = f32::NAN;
        assert!(!a.all_finite());
    }
}
