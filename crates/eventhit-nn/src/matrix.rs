//! Dense row-major `f32` matrices.
//!
//! This is the storage type used by every layer in the network. Data is a
//! single contiguous `Vec<f32>` in row-major order, which keeps the inner
//! loops of matrix multiplication cache-friendly (`ikj` ordering) and lets
//! optimizers treat parameters as flat slices.

use std::fmt;
use std::ops::{Index, IndexMut};

use eventhit_parallel::Pool;
use eventhit_rng::Rng;

/// Multiply–add count below which the product kernels stay sequential.
///
/// Row-blocking a product costs a scoped-thread spawn per region (tens of
/// microseconds); a 2^20-flop product (~128×64·64×128) is where that
/// overhead drops comfortably below the arithmetic. Below the threshold
/// the kernels never even resolve a [`Pool`].
pub const PAR_THRESHOLD: usize = 1 << 20;

/// A dense row-major matrix of `f32` values.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "inconsistent row length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates a matrix with entries drawn uniformly from `[lo, hi)`.
    pub fn uniform<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        lo: f32,
        hi: f32,
        rng: &mut R,
    ) -> Self {
        let data = (0..rows * cols).map(|_| rng.random_range(lo..hi)).collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the matrix has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the underlying data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the underlying data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrows row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies `src` into row `r`.
    ///
    /// # Panics
    /// Panics if `src.len() != cols`.
    pub fn set_row(&mut self, r: usize, src: &[f32]) {
        assert_eq!(src.len(), self.cols);
        self.row_mut(r).copy_from_slice(src);
    }

    /// The pool the product kernels use for a product of `flops`
    /// multiply–adds: sequential below [`PAR_THRESHOLD`], the ambient
    /// [`Pool::current`] above it.
    fn product_pool(flops: usize) -> Pool {
        if flops < PAR_THRESHOLD {
            Pool::sequential()
        } else {
            Pool::current()
        }
    }

    /// The row-block length (in output rows) for splitting an
    /// `out_rows`-row product across `pool`: ~4 blocks per worker so
    /// stealing can rebalance, and the whole matrix in one block when the
    /// pool is sequential.
    fn row_block(out_rows: usize, pool: &Pool) -> usize {
        out_rows.div_ceil(pool.workers() * 4).max(1)
    }

    /// Matrix product `self * rhs`.
    ///
    /// Uses `ikj` loop ordering so the innermost loop walks both the output
    /// row and the `rhs` row contiguously. Products of at least
    /// [`PAR_THRESHOLD`] multiply–adds are row-blocked across
    /// [`Pool::current`]; the result is bit-identical either way (each
    /// output row's accumulation order never changes).
    ///
    /// # Panics
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        self.matmul_with(rhs, &Matrix::product_pool(self.rows * self.cols * rhs.cols))
    }

    /// [`Matrix::matmul`] on an explicit [`Pool`] (no size threshold).
    pub fn matmul_with(&self, rhs: &Matrix, pool: &Pool) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let out_cols = rhs.cols;
        let mut out = Matrix::zeros(self.rows, out_cols);
        if out.data.is_empty() {
            return out;
        }
        let block = Matrix::row_block(self.rows, pool);
        pool.for_each_chunk_mut(&mut out.data, block * out_cols, |_, offset, chunk| {
            let row0 = offset / out_cols;
            for (local, out_row) in chunk.chunks_mut(out_cols).enumerate() {
                let a_row = self.row(row0 + local);
                for (k, &a) in a_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let b_row = rhs.row(k);
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            }
        });
        out
    }

    /// Matrix product `self^T * rhs` without materializing the transpose.
    ///
    /// Large products parallelize like [`Matrix::matmul`]; each output
    /// row accumulates over `k` in ascending order in both the sequential
    /// and the row-blocked kernel, so the bits never depend on the pool.
    ///
    /// # Panics
    /// Panics if `self.rows != rhs.rows`.
    pub fn t_matmul(&self, rhs: &Matrix) -> Matrix {
        self.t_matmul_with(rhs, &Matrix::product_pool(self.rows * self.cols * rhs.cols))
    }

    /// [`Matrix::t_matmul`] on an explicit [`Pool`] (no size threshold).
    pub fn t_matmul_with(&self, rhs: &Matrix, pool: &Pool) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "t_matmul shape mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let out_cols = rhs.cols;
        let mut out = Matrix::zeros(self.cols, out_cols);
        if out.data.is_empty() {
            return out;
        }
        let block = Matrix::row_block(self.cols, pool);
        pool.for_each_chunk_mut(&mut out.data, block * out_cols, |_, offset, chunk| {
            let row0 = offset / out_cols;
            for (local, out_row) in chunk.chunks_mut(out_cols).enumerate() {
                let i = row0 + local;
                for k in 0..self.rows {
                    let a = self.data[k * self.cols + i];
                    if a == 0.0 {
                        continue;
                    }
                    let b_row = rhs.row(k);
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            }
        });
        out
    }

    /// Matrix product `self * rhs^T` without materializing the transpose.
    ///
    /// Large products parallelize like [`Matrix::matmul`]; every output
    /// element is an independent dot product, so the bits never depend on
    /// the pool.
    ///
    /// # Panics
    /// Panics if `self.cols != rhs.cols`.
    pub fn matmul_t(&self, rhs: &Matrix) -> Matrix {
        self.matmul_t_with(rhs, &Matrix::product_pool(self.rows * self.cols * rhs.rows))
    }

    /// [`Matrix::matmul_t`] on an explicit [`Pool`] (no size threshold).
    pub fn matmul_t_with(&self, rhs: &Matrix, pool: &Pool) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_t shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let out_cols = rhs.rows;
        let mut out = Matrix::zeros(self.rows, out_cols);
        if out.data.is_empty() {
            return out;
        }
        let block = Matrix::row_block(self.rows, pool);
        pool.for_each_chunk_mut(&mut out.data, block * out_cols, |_, offset, chunk| {
            let row0 = offset / out_cols;
            for (local, out_row) in chunk.chunks_mut(out_cols).enumerate() {
                let a_row = self.row(row0 + local);
                for (j, o) in out_row.iter_mut().enumerate() {
                    let b_row = rhs.row(j);
                    let mut acc = 0.0f32;
                    for (&a, &b) in a_row.iter().zip(b_row) {
                        acc += a * b;
                    }
                    *o = acc;
                }
            }
        });
        out
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Elementwise sum, `self += rhs`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Elementwise `self += alpha * rhs`.
    pub fn add_scaled(&mut self, rhs: &Matrix, alpha: f32) {
        assert_eq!(self.shape(), rhs.shape(), "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Adds a row vector `bias` (length `cols`) to every row.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "broadcast length mismatch");
        for r in 0..self.rows {
            for (a, &b) in self.row_mut(r).iter_mut().zip(bias) {
                *a += b;
            }
        }
    }

    /// Elementwise (Hadamard) product, returning a new matrix.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "hadamard shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a * b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Multiplies every entry by `alpha` in place.
    pub fn scale(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Applies `f` to every entry, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let data = self.data.iter().map(|&x| f(x)).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Applies `f` to every entry in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for a in &mut self.data {
            *a = f(*a);
        }
    }

    /// Sets all entries to zero (reuses the allocation).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Sums entries along rows, producing a length-`cols` vector
    /// (i.e. a column-wise sum). Useful for bias gradients.
    pub fn sum_rows(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Horizontally concatenates `self` and `rhs` (same row count).
    pub fn hcat(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "hcat row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + rhs.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(rhs.row(r));
        }
        out
    }

    /// Splits the matrix into two column blocks at column `at`.
    pub fn hsplit(&self, at: usize) -> (Matrix, Matrix) {
        assert!(at <= self.cols, "split point out of range");
        let mut left = Matrix::zeros(self.rows, at);
        let mut right = Matrix::zeros(self.rows, self.cols - at);
        for r in 0..self.rows {
            left.row_mut(r).copy_from_slice(&self.row(r)[..at]);
            right.row_mut(r).copy_from_slice(&self.row(r)[at..]);
        }
        (left, right)
    }

    /// Extracts the sub-matrix of the given rows (copy).
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            out.set_row(i, self.row(r));
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Maximum absolute entry (0 for an empty matrix).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// True if every entry is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for r in 0..show {
            write!(f, "  [")?;
            let cols = self.cols.min(8);
            for c in 0..cols {
                write!(f, "{:9.4}", self[(r, c)])?;
                if c + 1 < cols {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventhit_rng::rngs::StdRng;
    use eventhit_rng::SeedableRng;

    fn sample(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::uniform(rows, cols, -1.0, 1.0, &mut rng)
    }

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_round_trips() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_rejects_bad_len() {
        let _ = Matrix::from_vec(2, 3, vec![1.0]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c[(0, 0)], 58.0);
        assert_eq!(c[(0, 1)], 64.0);
        assert_eq!(c[(1, 0)], 139.0);
        assert_eq!(c[(1, 1)], 154.0);
    }

    #[test]
    fn identity_is_neutral() {
        let a = sample(4, 4, 1);
        let mut id = Matrix::zeros(4, 4);
        for i in 0..4 {
            id[(i, i)] = 1.0;
        }
        let prod = a.matmul(&id);
        for (x, y) in prod.as_slice().iter().zip(a.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = sample(5, 3, 2);
        let b = sample(5, 4, 3);
        let fast = a.t_matmul(&b);
        let slow = a.transpose().matmul(&b);
        assert_eq!(fast.shape(), (3, 4));
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = sample(5, 3, 4);
        let b = sample(4, 3, 5);
        let fast = a.matmul_t(&b);
        let slow = a.matmul(&b.transpose());
        assert_eq!(fast.shape(), (5, 4));
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_involution() {
        let a = sample(3, 7, 6);
        let back = a.transpose().transpose();
        assert_eq!(a, back);
    }

    #[test]
    fn add_and_scale() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        a.add_assign(&b);
        assert!(a.as_slice().iter().all(|&x| x == 3.0));
        a.scale(2.0);
        assert!(a.as_slice().iter().all(|&x| x == 6.0));
        a.add_scaled(&b, -0.5);
        assert!(a.as_slice().iter().all(|&x| x == 5.0));
    }

    #[test]
    fn row_broadcast_adds_bias() {
        let mut a = Matrix::zeros(3, 2);
        a.add_row_broadcast(&[1.0, -1.0]);
        for r in 0..3 {
            assert_eq!(a.row(r), &[1.0, -1.0]);
        }
    }

    #[test]
    fn hadamard_multiplies_elementwise() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn sum_rows_is_columnwise_sum() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.sum_rows(), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn hcat_hsplit_round_trip() {
        let a = sample(3, 2, 7);
        let b = sample(3, 5, 8);
        let cat = a.hcat(&b);
        assert_eq!(cat.shape(), (3, 7));
        let (l, r) = cat.hsplit(2);
        assert_eq!(l, a);
        assert_eq!(r, b);
    }

    #[test]
    fn select_rows_copies_requested_rows() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let sel = a.select_rows(&[2, 0]);
        assert_eq!(sel.row(0), &[5.0, 6.0]);
        assert_eq!(sel.row(1), &[1.0, 2.0]);
    }

    #[test]
    fn norm_and_max_abs() {
        let a = Matrix::from_vec(1, 2, vec![3.0, -4.0]);
        assert!((a.norm() - 5.0).abs() < 1e-6);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn product_kernels_are_pool_invariant_to_the_bit() {
        // Big enough that a 4-worker pool actually splits the rows; odd
        // shapes so the blocks are uneven.
        let a = sample(67, 41, 10);
        let b = sample(41, 53, 11);
        let c = sample(67, 53, 12);
        let seq = Pool::sequential();
        let base_mm = a.matmul_with(&b, &seq);
        let base_t = a.t_matmul_with(&c, &seq);
        let base_mt = a.matmul_t_with(&b.transpose(), &seq);
        for workers in [2, 3, 4, 8] {
            let pool = Pool::new(workers);
            assert_eq!(
                a.matmul_with(&b, &pool),
                base_mm,
                "matmul workers={workers}"
            );
            assert_eq!(
                a.t_matmul_with(&c, &pool),
                base_t,
                "t_matmul workers={workers}"
            );
            assert_eq!(
                a.matmul_t_with(&b.transpose(), &pool),
                base_mt,
                "matmul_t workers={workers}"
            );
        }
        // The auto-threshold entry points agree with the explicit ones.
        assert_eq!(a.matmul(&b), base_mm);
        assert_eq!(a.t_matmul(&c), base_t);
    }

    #[test]
    fn parallel_kernels_handle_degenerate_shapes() {
        let pool = Pool::new(4);
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 0);
        assert_eq!(a.matmul_with(&b, &pool).shape(), (0, 0));
        let c = sample(3, 5, 13);
        assert_eq!(c.matmul_with(&b, &pool).shape(), (3, 0));
        let one = sample(1, 4, 14);
        let d = sample(4, 1, 15);
        assert_eq!(one.matmul_with(&d, &pool).shape(), (1, 1));
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut a = Matrix::zeros(1, 2);
        assert!(a.all_finite());
        a[(0, 1)] = f32::NAN;
        assert!(!a.all_finite());
    }
}
