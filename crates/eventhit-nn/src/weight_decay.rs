//! Decoupled weight decay (AdamW, Loshchilov & Hutter 2019).
//!
//! Applies `w -= lr * wd * w` *before* the optimizer's gradient step, so
//! the decay is not distorted by Adam's second-moment normalization. Kept
//! separate from the optimizers so any of them composes with it.

use crate::optimizer::ParamMut;

/// Decoupled weight-decay regularizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightDecay {
    /// Decay coefficient `wd` (typical range 1e-4 … 1e-2).
    pub wd: f32,
}

impl WeightDecay {
    /// Creates a regularizer; `wd = 0` is a no-op.
    pub fn new(wd: f32) -> Self {
        assert!(wd >= 0.0, "weight decay must be non-negative");
        WeightDecay { wd }
    }

    /// Applies the decay to all parameters at learning rate `lr`.
    /// Bias-like parameters (single-row tensors) are conventionally
    /// excluded; pass `decay_biases = false` for that behaviour.
    pub fn apply(&self, params: &mut [ParamMut<'_>], lr: f32, decay_biases: bool) {
        if self.wd == 0.0 {
            return;
        }
        let factor = 1.0 - lr * self.wd;
        for p in params.iter_mut() {
            if !decay_biases && p.value.rows() == 1 {
                continue;
            }
            p.value.scale(factor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    #[test]
    fn decay_shrinks_weights_multiplicatively() {
        let mut w = Matrix::filled(2, 2, 1.0);
        let g = Matrix::zeros(2, 2);
        let wd = WeightDecay::new(0.1);
        wd.apply(
            &mut [ParamMut {
                value: &mut w,
                grad: &g,
            }],
            0.5,
            true,
        );
        // factor = 1 - 0.5 * 0.1 = 0.95.
        assert!(w.as_slice().iter().all(|&x| (x - 0.95).abs() < 1e-6));
    }

    #[test]
    fn biases_can_be_excluded() {
        let mut w = Matrix::filled(2, 2, 1.0);
        let mut b = Matrix::filled(1, 2, 1.0);
        let gw = Matrix::zeros(2, 2);
        let gb = Matrix::zeros(1, 2);
        let wd = WeightDecay::new(0.1);
        wd.apply(
            &mut [
                ParamMut {
                    value: &mut w,
                    grad: &gw,
                },
                ParamMut {
                    value: &mut b,
                    grad: &gb,
                },
            ],
            1.0,
            false,
        );
        assert!(w.as_slice()[0] < 1.0);
        assert_eq!(b.as_slice()[0], 1.0, "bias untouched");
    }

    #[test]
    fn zero_decay_is_identity() {
        let mut w = Matrix::filled(1, 3, 2.0);
        let g = Matrix::zeros(1, 3);
        WeightDecay::new(0.0).apply(
            &mut [ParamMut {
                value: &mut w,
                grad: &g,
            }],
            0.1,
            true,
        );
        assert!(w.as_slice().iter().all(|&x| x == 2.0));
    }

    #[test]
    fn decayed_training_shrinks_norm_vs_undecayed() {
        use crate::optimizer::{Adam, Optimizer};
        // Minimize a flat loss (zero gradient): only decay acts.
        let run = |wd_coef: f32| -> f32 {
            let mut w = Matrix::filled(4, 4, 1.0);
            let g = Matrix::zeros(4, 4);
            let mut opt = Adam::new(0.01);
            let wd = WeightDecay::new(wd_coef);
            for _ in 0..100 {
                let mut params = [ParamMut {
                    value: &mut w,
                    grad: &g,
                }];
                wd.apply(&mut params, opt.learning_rate(), true);
                opt.step(&mut params);
            }
            w.norm()
        };
        assert!(run(1.0) < run(0.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_decay() {
        let _ = WeightDecay::new(-0.1);
    }
}
