//! GRU layer with full backpropagation through time.
//!
//! An alternative recurrent encoder to [`crate::lstm::Lstm`] used by the
//! encoder-choice ablation: the paper picks an LSTM (§III) but any sequence
//! encoder fits the architecture. Gates follow Cho et al. (2014):
//!
//! ```text
//! r_t = σ(W_r x_t + U_r h_{t-1} + b_r)          (reset)
//! z_t = σ(W_z x_t + U_z h_{t-1} + b_z)          (update)
//! n_t = tanh(W_n x_t + r_t ⊙ (U_n h_{t-1} + b_nh) + b_nx)  (candidate)
//! h_t = (1 - z_t) ⊙ n_t + z_t ⊙ h_{t-1}
//! ```
//!
//! Fused weights are laid out `[r | z | n]` along the rows.

use eventhit_rng::Rng;

use crate::activation::{sigmoid, tanh};
use crate::init::Init;
use crate::matrix::Matrix;
use crate::optimizer::ParamMut;
use crate::quant::{affine_t_quant, QuantizedMatrix};

/// Per-timestep forward cache needed by BPTT.
#[derive(Clone)]
struct StepCache {
    x: Matrix,
    h_prev: Matrix,
    r: Matrix,
    z: Matrix,
    n: Matrix,
    /// `U_n h_{t-1} + b_nh` before the reset gate is applied.
    hn_pre: Matrix,
}

/// A GRU layer processing sequences of feature vectors.
#[derive(Clone)]
pub struct Gru {
    input_dim: usize,
    hidden_dim: usize,
    wx: Matrix,
    wh: Matrix,
    bx: Matrix,
    bh: Matrix,
    dwx: Matrix,
    dwh: Matrix,
    dbx: Matrix,
    dbh: Matrix,
    cache: Vec<StepCache>,
}

fn col_block(m: &Matrix, start: usize, len: usize) -> Matrix {
    let mut out = Matrix::zeros(m.rows(), len);
    for r in 0..m.rows() {
        out.row_mut(r)
            .copy_from_slice(&m.row(r)[start..start + len]);
    }
    out
}

fn set_col_block(m: &mut Matrix, start: usize, block: &Matrix) {
    for r in 0..m.rows() {
        m.row_mut(r)[start..start + block.cols()].copy_from_slice(block.row(r));
    }
}

impl Gru {
    /// Creates a GRU with `input_dim` features per step and `hidden_dim`
    /// hidden units.
    pub fn new<R: Rng + ?Sized>(input_dim: usize, hidden_dim: usize, rng: &mut R) -> Self {
        Gru {
            input_dim,
            hidden_dim,
            wx: Init::XavierUniform.matrix(3 * hidden_dim, input_dim, rng),
            wh: Init::XavierUniform.matrix(3 * hidden_dim, hidden_dim, rng),
            bx: Matrix::zeros(1, 3 * hidden_dim),
            bh: Matrix::zeros(1, 3 * hidden_dim),
            dwx: Matrix::zeros(3 * hidden_dim, input_dim),
            dwh: Matrix::zeros(3 * hidden_dim, hidden_dim),
            dbx: Matrix::zeros(1, 3 * hidden_dim),
            dbh: Matrix::zeros(1, 3 * hidden_dim),
            cache: Vec::new(),
        }
    }

    /// Input dimensionality per timestep.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden-state dimensionality.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.wx.len() + self.wh.len() + self.bx.len() + self.bh.len()
    }

    /// Runs the GRU over a sequence, caching for BPTT; returns the final
    /// hidden state.
    pub fn forward(&mut self, xs: &[Matrix]) -> Matrix {
        assert!(!xs.is_empty(), "GRU requires at least one timestep");
        let batch = xs[0].rows();
        let hd = self.hidden_dim;
        self.cache.clear();
        let mut h = Matrix::zeros(batch, hd);

        for x in xs {
            let (r, z, n, hn_pre, h_new) = self.step(x, &h);
            self.cache.push(StepCache {
                x: x.clone(),
                h_prev: h,
                r,
                z,
                n,
                hn_pre,
            });
            h = h_new;
        }
        h
    }

    /// Inference-only forward (no caching). Pure `&self`, so a trained
    /// layer can be shared across threads for parallel inference; the
    /// step arithmetic is shared with [`Gru::forward`], so the two are
    /// bit-identical.
    pub fn forward_inference(&self, xs: &[Matrix]) -> Matrix {
        assert!(!xs.is_empty(), "GRU requires at least one timestep");
        let batch = xs[0].rows();
        let mut h = Matrix::zeros(batch, self.hidden_dim);
        for x in xs {
            h = self.step(x, &h).4;
        }
        h
    }

    /// One timestep of gate arithmetic: returns `(r, z, n, hn_pre, h_new)`.
    #[allow(clippy::type_complexity)]
    fn step(&self, x: &Matrix, h: &Matrix) -> (Matrix, Matrix, Matrix, Matrix, Matrix) {
        let hd = self.hidden_dim;
        assert_eq!(x.cols(), self.input_dim, "GRU input dim mismatch");
        // One fused affine pass per operand over the concatenated [r|z|n]
        // gate weights (px and ph stay separate: the n gate needs ph's
        // block before the reset product), bit-identical to matmul_t +
        // add_row_broadcast.
        let px = x.affine_t(&self.wx, self.bx.as_slice());
        let ph = h.affine_t(&self.wh, self.bh.as_slice());

        let mut r_pre = col_block(&px, 0, hd);
        r_pre.add_assign(&col_block(&ph, 0, hd));
        let r = r_pre.map(sigmoid);

        let mut z_pre = col_block(&px, hd, hd);
        z_pre.add_assign(&col_block(&ph, hd, hd));
        let z = z_pre.map(sigmoid);

        let hn_pre = col_block(&ph, 2 * hd, hd);
        let mut n_pre = col_block(&px, 2 * hd, hd);
        n_pre.add_assign(&r.hadamard(&hn_pre));
        let n = n_pre.map(tanh);

        // h_new = (1 - z) ⊙ n + z ⊙ h_prev
        let mut h_new = z.map(|v| 1.0 - v).hadamard(&n);
        h_new.add_assign(&z.hadamard(h));
        (r, z, n, hn_pre, h_new)
    }

    /// BPTT from the gradient of the loss w.r.t. the final hidden state;
    /// returns per-step input gradients.
    pub fn backward_last(&mut self, dh_last: &Matrix) -> Vec<Matrix> {
        assert!(!self.cache.is_empty(), "Gru::backward_last before forward");
        let hd = self.hidden_dim;
        let batch = self.cache[0].x.rows();
        let mut dh = dh_last.clone();
        let mut dxs = vec![Matrix::zeros(0, 0); self.cache.len()];

        for t in (0..self.cache.len()).rev() {
            let step = &self.cache[t];

            // h = (1-z) ⊙ n + z ⊙ h_prev
            let dn = dh.hadamard(&step.z.map(|v| 1.0 - v));
            let mut dz = dh.hadamard(&step.h_prev);
            dz.add_scaled(&dh.hadamard(&step.n), -1.0);
            let mut dh_prev = dh.hadamard(&step.z);

            // n = tanh(n_pre)
            let dn_pre = dn.hadamard(&step.n.map(|v| 1.0 - v * v));
            // n_pre = px_n + r ⊙ hn_pre
            let dr = dn_pre.hadamard(&step.hn_pre);
            let dhn_pre = dn_pre.hadamard(&step.r);

            let dr_pre = dr.hadamard(&step.r.map(|s| s * (1.0 - s)));
            let dz_pre = dz.hadamard(&step.z.map(|s| s * (1.0 - s)));

            // Assemble fused gradients: px gets [r|z|n] pre-gradients; ph
            // gets [r|z] pre-gradients plus dhn_pre on the n block.
            let mut dpx = Matrix::zeros(batch, 3 * hd);
            set_col_block(&mut dpx, 0, &dr_pre);
            set_col_block(&mut dpx, hd, &dz_pre);
            set_col_block(&mut dpx, 2 * hd, &dn_pre);
            let mut dph = Matrix::zeros(batch, 3 * hd);
            set_col_block(&mut dph, 0, &dr_pre);
            set_col_block(&mut dph, hd, &dz_pre);
            set_col_block(&mut dph, 2 * hd, &dhn_pre);

            self.dwx.add_assign(&dpx.t_matmul(&step.x));
            self.dwh.add_assign(&dph.t_matmul(&step.h_prev));
            for (g, &v) in self.dbx.as_mut_slice().iter_mut().zip(&dpx.sum_rows()) {
                *g += v;
            }
            for (g, &v) in self.dbh.as_mut_slice().iter_mut().zip(&dph.sum_rows()) {
                *g += v;
            }

            dxs[t] = dpx.matmul(&self.wx);
            dh_prev.add_assign(&dph.matmul(&self.wh));
            dh = dh_prev;
        }
        dxs
    }

    /// Snapshots the layer onto the int8 fast lane (see
    /// [`crate::quant::InferenceLane`]). Gate weights are quantized once;
    /// the returned layer is immutable and cheap to clone.
    pub fn quantized(&self) -> QuantizedGru {
        QuantizedGru {
            input_dim: self.input_dim,
            hidden_dim: self.hidden_dim,
            qwx: QuantizedMatrix::quantize(&self.wx),
            qwh: QuantizedMatrix::quantize(&self.wh),
            bx: self.bx.clone(),
            bh: self.bh.clone(),
        }
    }

    /// Zeros the accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.dwx.fill_zero();
        self.dwh.fill_zero();
        self.dbx.fill_zero();
        self.dbh.fill_zero();
    }

    /// Yields `(parameter, gradient)` pairs for the optimizer.
    pub fn params_mut(&mut self) -> Vec<ParamMut<'_>> {
        vec![
            ParamMut {
                value: &mut self.wx,
                grad: &self.dwx,
            },
            ParamMut {
                value: &mut self.wh,
                grad: &self.dwh,
            },
            ParamMut {
                value: &mut self.bx,
                grad: &self.dbx,
            },
            ParamMut {
                value: &mut self.bh,
                grad: &self.dbh,
            },
        ]
    }
}

/// An int8-weight snapshot of a [`Gru`]: the quantized inference fast
/// lane. Same gate arithmetic as [`Gru::forward_inference`], but the
/// `[r|z|n]` affine passes run against `i8` weights with f32
/// accumulation.
#[derive(Clone)]
pub struct QuantizedGru {
    input_dim: usize,
    hidden_dim: usize,
    qwx: QuantizedMatrix,
    qwh: QuantizedMatrix,
    bx: Matrix,
    bh: Matrix,
}

impl QuantizedGru {
    /// Input dimensionality per timestep.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden-state dimensionality.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Quantized inference over a sequence; returns the final hidden
    /// state. Pure `&self` and sequential, so results are bit-identical
    /// across worker counts.
    pub fn forward(&self, xs: &[Matrix]) -> Matrix {
        assert!(!xs.is_empty(), "GRU requires at least one timestep");
        let batch = xs[0].rows();
        let hd = self.hidden_dim;
        let mut h = Matrix::zeros(batch, hd);
        for x in xs {
            assert_eq!(x.cols(), self.input_dim, "GRU input dim mismatch");
            let px = affine_t_quant(x, &self.qwx, self.bx.as_slice());
            let ph = affine_t_quant(&h, &self.qwh, self.bh.as_slice());

            let mut r_pre = col_block(&px, 0, hd);
            r_pre.add_assign(&col_block(&ph, 0, hd));
            let r = r_pre.map(sigmoid);

            let mut z_pre = col_block(&px, hd, hd);
            z_pre.add_assign(&col_block(&ph, hd, hd));
            let z = z_pre.map(sigmoid);

            let hn_pre = col_block(&ph, 2 * hd, hd);
            let mut n_pre = col_block(&px, 2 * hd, hd);
            n_pre.add_assign(&r.hadamard(&hn_pre));
            let n = n_pre.map(tanh);

            let mut h_new = z.map(|v| 1.0 - v).hadamard(&n);
            h_new.add_assign(&z.hadamard(&h));
            h = h_new;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradients;
    use eventhit_rng::rngs::StdRng;
    use eventhit_rng::SeedableRng;

    fn seq(t: usize, batch: usize, dim: usize, seed: u64) -> Vec<Matrix> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..t)
            .map(|_| Matrix::uniform(batch, dim, -1.0, 1.0, &mut rng))
            .collect()
    }

    #[test]
    fn forward_shapes_and_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut gru = Gru::new(3, 5, &mut rng);
        let xs = seq(7, 4, 3, 1);
        let h = gru.forward(&xs);
        assert_eq!(h.shape(), (4, 5));
        // h is a convex combination of tanh outputs: |h| <= 1.
        assert!(h.as_slice().iter().all(|&v| v.abs() <= 1.0));
    }

    #[test]
    fn inference_matches_training_forward() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut gru = Gru::new(2, 4, &mut rng);
        let xs = seq(5, 3, 2, 2);
        assert_eq!(gru.forward(&xs), gru.forward_inference(&xs));
    }

    #[test]
    fn quantized_forward_tracks_exact_forward() {
        let mut rng = StdRng::seed_from_u64(20);
        let gru = Gru::new(3, 6, &mut rng);
        let xs = seq(8, 3, 3, 21);
        let exact = gru.forward_inference(&xs);
        let quant = gru.quantized().forward(&xs);
        assert_eq!(quant.shape(), exact.shape());
        for (a, b) in exact.as_slice().iter().zip(quant.as_slice()) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut gru = Gru::new(3, 4, &mut rng);
        let xs = seq(5, 2, 3, 4);
        let loss_fn = |g: &mut Gru| {
            let h = g.forward(&xs);
            0.5 * h.as_slice().iter().map(|&v| v * v).sum::<f32>()
        };
        let grad_fn = |g: &mut Gru| {
            g.zero_grad();
            let h = g.forward(&xs);
            g.backward_last(&h);
        };
        let err = check_gradients(&mut gru, loss_fn, grad_fn, |g| g.params_mut(), 1e-2);
        assert!(err < 3e-2, "max rel err {err}");
    }

    #[test]
    fn input_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut gru = Gru::new(2, 3, &mut rng);
        let mut xs = seq(4, 1, 2, 6);
        gru.zero_grad();
        let h = gru.forward(&xs);
        let dxs = gru.backward_last(&h);

        let eps = 1e-2f32;
        for t in 0..xs.len() {
            for e in 0..xs[t].len() {
                let orig = xs[t].as_slice()[e];
                xs[t].as_mut_slice()[e] = orig + eps;
                let lp = {
                    let h = gru.forward_inference(&xs);
                    0.5 * h.as_slice().iter().map(|&v| v * v).sum::<f32>()
                };
                xs[t].as_mut_slice()[e] = orig - eps;
                let lm = {
                    let h = gru.forward_inference(&xs);
                    0.5 * h.as_slice().iter().map(|&v| v * v).sum::<f32>()
                };
                xs[t].as_mut_slice()[e] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = dxs[t].as_slice()[e];
                let denom = numeric.abs().max(analytic.abs()).max(1e-2);
                assert!(
                    (numeric - analytic).abs() / denom < 3e-2,
                    "t={t} e={e}: {numeric} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(7);
        let gru = Gru::new(4, 6, &mut rng);
        // wx: 18x4, wh: 18x6, bx: 18, bh: 18.
        assert_eq!(gru.param_count(), 72 + 108 + 18 + 18);
    }

    #[test]
    fn learns_to_remember_first_token() {
        use crate::activation::Activation;
        use crate::dense::Dense;
        use crate::optimizer::{Adam, Optimizer};
        let mut rng = StdRng::seed_from_u64(8);
        let mut gru = Gru::new(1, 8, &mut rng);
        let mut readout = Dense::new(8, 1, Activation::Linear, Init::XavierUniform, &mut rng);
        let mut opt = Adam::new(0.02);

        let mut last_loss = f32::MAX;
        for epoch in 0..200 {
            let batch = 16;
            let t = 6;
            let first: Vec<f32> = (0..batch)
                .map(|_| if rng.random::<f32>() < 0.5 { 1.0 } else { -1.0 })
                .collect();
            let mut xs = Vec::new();
            for step in 0..t {
                let data: Vec<f32> = (0..batch)
                    .map(|bi| {
                        if step == 0 {
                            first[bi]
                        } else {
                            rng.random_range(-0.1..0.1)
                        }
                    })
                    .collect();
                xs.push(Matrix::from_vec(batch, 1, data));
            }
            let y = Matrix::from_vec(batch, 1, first);

            gru.zero_grad();
            readout.zero_grad();
            let h = gru.forward(&xs);
            let pred = readout.forward(&h);
            let mut diff = pred.clone();
            diff.add_scaled(&y, -1.0);
            let loss = diff.as_slice().iter().map(|&d| d * d).sum::<f32>() / batch as f32;
            let mut dpred = diff;
            dpred.scale(2.0 / batch as f32);
            let dh = readout.backward(&dpred);
            gru.backward_last(&dh);
            let mut params = gru.params_mut();
            params.extend(readout.params_mut());
            opt.step(&mut params);
            if epoch >= 195 {
                last_loss = loss;
            }
        }
        assert!(
            last_loss < 0.15,
            "GRU failed to learn memory task: loss={last_loss}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one timestep")]
    fn rejects_empty_sequence() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut gru = Gru::new(2, 3, &mut rng);
        let _ = gru.forward(&[]);
    }
}
