//! Scalar activation functions and their derivatives.
//!
//! Derivatives are expressed *in terms of the activation output* where
//! possible (sigmoid, tanh) because the forward pass already computed that
//! value; this avoids recomputing the activation during backprop.

use crate::matrix::Matrix;

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Derivative of sigmoid given its output `s = sigmoid(x)`.
#[inline]
pub fn sigmoid_deriv_from_output(s: f32) -> f32 {
    s * (1.0 - s)
}

/// Hyperbolic tangent.
#[inline]
pub fn tanh(x: f32) -> f32 {
    x.tanh()
}

/// Derivative of tanh given its output `t = tanh(x)`.
#[inline]
pub fn tanh_deriv_from_output(t: f32) -> f32 {
    1.0 - t * t
}

/// Rectified linear unit.
#[inline]
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// Derivative of relu given its *input* `x` (1 for x > 0, else 0).
#[inline]
pub fn relu_deriv_from_input(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Activation kind selectable at layer construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Identity (no nonlinearity).
    Linear,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit.
    Relu,
}

impl Activation {
    /// Applies the activation elementwise.
    pub fn apply(self, m: &Matrix) -> Matrix {
        match self {
            Activation::Linear => m.clone(),
            Activation::Sigmoid => m.map(sigmoid),
            Activation::Tanh => m.map(tanh),
            Activation::Relu => m.map(relu),
        }
    }

    /// Elementwise derivative for backprop.
    ///
    /// `pre` is the pre-activation input, `out` the activation output; both
    /// are provided so each activation can use whichever is cheaper.
    pub fn deriv(self, pre: &Matrix, out: &Matrix) -> Matrix {
        match self {
            Activation::Linear => Matrix::filled(pre.rows(), pre.cols(), 1.0),
            Activation::Sigmoid => out.map(sigmoid_deriv_from_output),
            Activation::Tanh => out.map(tanh_deriv_from_output),
            Activation::Relu => pre.map(relu_deriv_from_input),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_midpoint_and_limits() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(20.0) > 0.999_999);
        assert!(sigmoid(-20.0) < 1e-6);
        // Stability at extremes: no NaN.
        assert!(sigmoid(1000.0).is_finite());
        assert!(sigmoid(-1000.0).is_finite());
    }

    #[test]
    fn sigmoid_symmetry() {
        for &x in &[0.1f32, 0.5, 1.0, 3.0, 8.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn sigmoid_derivative_matches_finite_difference() {
        let eps = 1e-3f32;
        for &x in &[-2.0f32, -0.5, 0.0, 0.7, 2.5] {
            let numeric = (sigmoid(x + eps) - sigmoid(x - eps)) / (2.0 * eps);
            let analytic = sigmoid_deriv_from_output(sigmoid(x));
            assert!((numeric - analytic).abs() < 1e-4, "x={x}");
        }
    }

    #[test]
    fn tanh_derivative_matches_finite_difference() {
        let eps = 1e-3f32;
        for &x in &[-1.5f32, -0.2, 0.0, 0.9, 1.8] {
            let numeric = (tanh(x + eps) - tanh(x - eps)) / (2.0 * eps);
            let analytic = tanh_deriv_from_output(tanh(x));
            assert!((numeric - analytic).abs() < 1e-4, "x={x}");
        }
    }

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(relu(-3.0), 0.0);
        assert_eq!(relu(3.0), 3.0);
        assert_eq!(relu_deriv_from_input(-1.0), 0.0);
        assert_eq!(relu_deriv_from_input(1.0), 1.0);
    }

    #[test]
    fn activation_apply_and_deriv_shapes() {
        let m = Matrix::from_vec(2, 2, vec![-1.0, 0.0, 0.5, 2.0]);
        for act in [
            Activation::Linear,
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::Relu,
        ] {
            let out = act.apply(&m);
            let d = act.deriv(&m, &out);
            assert_eq!(out.shape(), m.shape());
            assert_eq!(d.shape(), m.shape());
        }
    }

    #[test]
    fn linear_is_identity() {
        let m = Matrix::from_vec(1, 3, vec![-1.0, 0.0, 2.0]);
        assert_eq!(Activation::Linear.apply(&m), m);
    }
}
