//! # eventhit-nn
//!
//! A small, self-contained neural-network substrate used by the EventHit
//! reproduction: dense row-major `f32` matrices, fully connected and LSTM
//! layers with hand-written backward passes (validated against finite
//! differences), inverted dropout, binary cross-entropy losses, and SGD /
//! Adam optimizers.
//!
//! The layer set is exactly what the paper's architecture (Fig. 3) needs:
//! an LSTM encoder, fully connected layers with sigmoid/tanh/relu
//! activations, and dropout. There is no general autograd — the model graph
//! is fixed, and each layer exposes `forward` / `backward` / `params_mut`.
//!
//! Inference additionally offers an int8-weight fast lane (see
//! [`quant::InferenceLane`]): `Dense`/`Lstm`/`Gru` snapshot onto
//! quantized counterparts whose forward passes stream 4x less weight
//! memory. The exact lane's blocked/unrolled product kernels in
//! [`matrix`] are bit-identical to their retained naive references.
//!
//! ```
//! use eventhit_nn::activation::Activation;
//! use eventhit_nn::dense::Dense;
//! use eventhit_nn::init::Init;
//! use eventhit_nn::matrix::Matrix;
//! use eventhit_rng::rngs::StdRng;
//! use eventhit_rng::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut layer = Dense::new(4, 2, Activation::Sigmoid, Init::XavierUniform, &mut rng);
//! let x = Matrix::uniform(3, 4, -1.0, 1.0, &mut rng);
//! let probs = layer.forward(&x);
//! assert_eq!(probs.shape(), (3, 2));
//! ```

#![deny(missing_docs)]

pub mod activation;
pub mod dense;
pub mod dropout;
pub mod gradcheck;
pub mod gru;
pub mod init;
pub mod loss;
pub mod lstm;
pub mod matrix;
pub mod optimizer;
pub mod quant;
pub mod schedule;
pub mod weight_decay;

pub use activation::Activation;
pub use dense::{Dense, QuantizedDense};
pub use dropout::Dropout;
pub use gru::{Gru, QuantizedGru};
pub use init::Init;
pub use lstm::{Lstm, QuantizedLstm};
pub use matrix::Matrix;
pub use optimizer::{Adam, Optimizer, ParamMut, Sgd};
pub use quant::{InferenceLane, QuantizedMatrix};
pub use schedule::LrSchedule;
pub use weight_decay::WeightDecay;
