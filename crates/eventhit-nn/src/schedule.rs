//! Learning-rate schedules.
//!
//! Schedules are pure functions of the step index; the trainer queries the
//! schedule each step and sets the optimizer's learning rate, keeping the
//! optimizer itself schedule-agnostic.

/// A learning-rate schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant {
        /// The learning rate.
        lr: f32,
    },
    /// Step decay: `lr * factor^(step / every)`.
    StepDecay {
        /// Initial learning rate.
        lr: f32,
        /// Multiplicative factor applied at each boundary, in (0, 1].
        factor: f32,
        /// Steps between decays.
        every: usize,
    },
    /// Linear warmup to `lr` over `warmup` steps, then cosine decay to
    /// `lr * floor` at `total` steps (clamped thereafter).
    WarmupCosine {
        /// Peak learning rate.
        lr: f32,
        /// Warmup steps.
        warmup: usize,
        /// Total steps of the schedule.
        total: usize,
        /// Final learning rate as a fraction of the peak, in [0, 1].
        floor: f32,
    },
}

impl LrSchedule {
    /// The learning rate at `step` (0-based).
    pub fn at(&self, step: usize) -> f32 {
        match *self {
            LrSchedule::Constant { lr } => lr,
            LrSchedule::StepDecay { lr, factor, every } => {
                assert!(every > 0, "decay interval must be positive");
                lr * factor.powi((step / every) as i32)
            }
            LrSchedule::WarmupCosine {
                lr,
                warmup,
                total,
                floor,
            } => {
                assert!(total > warmup, "total must exceed warmup");
                if step < warmup {
                    lr * (step + 1) as f32 / warmup as f32
                } else {
                    let t = ((step - warmup) as f32 / (total - warmup) as f32).min(1.0);
                    let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
                    lr * (floor + (1.0 - floor) * cos)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant { lr: 0.01 };
        assert_eq!(s.at(0), 0.01);
        assert_eq!(s.at(10_000), 0.01);
    }

    #[test]
    fn step_decay_halves_at_boundaries() {
        let s = LrSchedule::StepDecay {
            lr: 0.1,
            factor: 0.5,
            every: 100,
        };
        assert_eq!(s.at(0), 0.1);
        assert_eq!(s.at(99), 0.1);
        assert_eq!(s.at(100), 0.05);
        assert_eq!(s.at(250), 0.025);
    }

    #[test]
    fn warmup_rises_linearly_then_decays() {
        let s = LrSchedule::WarmupCosine {
            lr: 1.0,
            warmup: 10,
            total: 110,
            floor: 0.1,
        };
        assert!((s.at(0) - 0.1).abs() < 1e-6);
        assert!((s.at(4) - 0.5).abs() < 1e-6);
        assert!((s.at(9) - 1.0).abs() < 1e-6);
        // Midpoint of cosine: (1 + 0)/2 scaled into [floor, 1].
        let mid = s.at(10 + 50);
        assert!((mid - (0.1 + 0.9 * 0.5)).abs() < 1e-3, "mid={mid}");
        // End and beyond: floor.
        assert!((s.at(110) - 0.1).abs() < 1e-3);
        assert!((s.at(10_000) - 0.1).abs() < 1e-3);
    }

    #[test]
    fn cosine_is_monotone_after_warmup() {
        let s = LrSchedule::WarmupCosine {
            lr: 0.5,
            warmup: 5,
            total: 105,
            floor: 0.0,
        };
        let mut prev = f32::INFINITY;
        for step in 5..105 {
            let lr = s.at(step);
            assert!(lr <= prev + 1e-7, "step {step}");
            prev = lr;
        }
    }

    #[test]
    #[should_panic(expected = "total must exceed warmup")]
    fn rejects_degenerate_cosine() {
        let _ = LrSchedule::WarmupCosine {
            lr: 0.1,
            warmup: 10,
            total: 10,
            floor: 0.0,
        }
        .at(0);
    }
}
