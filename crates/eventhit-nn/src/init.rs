//! Weight initialization schemes.
//!
//! Gaussian samples are produced with the Box–Muller transform so the crate
//! only depends on `rand`'s uniform source.

use eventhit_rng::Rng;

use crate::matrix::Matrix;

/// Draws one standard-normal sample via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    // Avoid log(0) by sampling u1 from (0, 1].
    let u1: f32 = 1.0 - rng.random::<f32>();
    let u2: f32 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Initialization scheme for a weight matrix with `fan_in` inputs and
/// `fan_out` outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Init {
    /// Glorot/Xavier uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
    /// Glorot/Xavier normal: `N(0, 2 / (fan_in + fan_out))`.
    XavierNormal,
    /// He/Kaiming normal: `N(0, 2 / fan_in)` — suited to ReLU layers.
    HeNormal,
    /// All zeros (used for biases).
    Zeros,
}

impl Init {
    /// Materializes a `rows x cols` matrix where `cols` is treated as
    /// `fan_in` and `rows` as `fan_out` (row-major `out x in` convention).
    pub fn matrix<R: Rng + ?Sized>(self, rows: usize, cols: usize, rng: &mut R) -> Matrix {
        let fan_in = cols as f32;
        let fan_out = rows as f32;
        match self {
            Init::XavierUniform => {
                let a = (6.0 / (fan_in + fan_out)).sqrt();
                Matrix::uniform(rows, cols, -a, a, rng)
            }
            Init::XavierNormal => {
                let std = (2.0 / (fan_in + fan_out)).sqrt();
                let data = (0..rows * cols)
                    .map(|_| standard_normal(rng) * std)
                    .collect();
                Matrix::from_vec(rows, cols, data)
            }
            Init::HeNormal => {
                let std = (2.0 / fan_in).sqrt();
                let data = (0..rows * cols)
                    .map(|_| standard_normal(rng) * std)
                    .collect();
                Matrix::from_vec(rows, cols, data)
            }
            Init::Zeros => Matrix::zeros(rows, cols),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventhit_rng::rngs::StdRng;
    use eventhit_rng::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 50_000;
        let samples: Vec<f32> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn xavier_uniform_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = Init::XavierUniform.matrix(20, 30, &mut rng);
        let a = (6.0f32 / 50.0).sqrt();
        assert!(m.as_slice().iter().all(|&x| x.abs() <= a));
        // Not degenerate.
        assert!(m.max_abs() > 0.0);
    }

    #[test]
    fn he_normal_variance_close() {
        let mut rng = StdRng::seed_from_u64(8);
        let m = Init::HeNormal.matrix(100, 200, &mut rng);
        let var = m.as_slice().iter().map(|&x| x * x).sum::<f32>() / m.len() as f32;
        let target = 2.0 / 200.0;
        assert!(
            (var - target).abs() < target * 0.2,
            "var={var} target={target}"
        );
    }

    #[test]
    fn zeros_is_zero() {
        let mut rng = StdRng::seed_from_u64(9);
        let m = Init::Zeros.matrix(3, 3, &mut rng);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Init::XavierNormal.matrix(4, 4, &mut StdRng::seed_from_u64(5));
        let b = Init::XavierNormal.matrix(4, 4, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }
}
