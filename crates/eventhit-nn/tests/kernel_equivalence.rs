//! Kernel-equivalence property tests: the cache-blocked / 8-wide-unrolled
//! product kernels and the fused gate kernels must **bit-match** the
//! retained naive references on adversarial shapes — empty operands, 1×1,
//! prime dimensions, non-multiples of the unroll width and K-block, and
//! shapes straddling the `PAR_THRESHOLD` parallel cutover — at 1, 2, 4,
//! and 8 workers.
//!
//! Bit-identity (not tolerance) is the contract: every output element is
//! one accumulator chain over `k` in ascending order in both
//! implementations, so restructuring for cache and ILP must not change a
//! single ULP. The exact-lane golden fingerprints in the workspace tests
//! depend on this.

use eventhit_nn::matrix::{naive_kernels_forced, set_naive_kernels, Matrix, PAR_THRESHOLD};
use eventhit_parallel::Pool;
use eventhit_rng::rngs::StdRng;
use eventhit_rng::testkit::from_fn;
use eventhit_rng::{prop_assert, prop_assert_eq, property, Rng, SeedableRng};

/// Adversarial dimension pool: empty, unit, primes, powers of two, and
/// off-by-one neighbours of the 8-wide unroll width.
const DIMS: &[usize] = &[0, 1, 2, 3, 5, 7, 8, 9, 13, 16, 17, 23, 31, 33, 64];

const WORKERS: &[usize] = &[1, 2, 4, 8];

fn dim(rng: &mut StdRng) -> usize {
    DIMS[rng.random_range(0..DIMS.len())]
}

/// A matrix with ~25% exact zeros, so the kernels' zero-skip fast path is
/// exercised alongside dense values.
fn matrix_of(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| {
            if rng.random_range(0..4usize) == 0 {
                0.0
            } else {
                rng.random_range(-2.0f32..2.0)
            }
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

property! {
    #[test]
    fn matmul_bit_matches_naive(
        case in from_fn(|rng| {
            let (m, k, n) = (dim(rng), dim(rng), dim(rng));
            let w = WORKERS[rng.random_range(0..WORKERS.len())];
            (matrix_of(rng, m, k), matrix_of(rng, k, n), w)
        }),
    ) {
        let (a, b, w) = case;
        let blocked = a.matmul_with(&b, &Pool::new(w));
        prop_assert_eq!(blocked, a.matmul_naive(&b));
    }

    #[test]
    fn t_matmul_bit_matches_naive(
        case in from_fn(|rng| {
            let (m, k, n) = (dim(rng), dim(rng), dim(rng));
            let w = WORKERS[rng.random_range(0..WORKERS.len())];
            (matrix_of(rng, k, m), matrix_of(rng, k, n), w)
        }),
    ) {
        let (a, b, w) = case;
        let blocked = a.t_matmul_with(&b, &Pool::new(w));
        prop_assert_eq!(blocked, a.t_matmul_naive(&b));
    }

    #[test]
    fn matmul_t_bit_matches_naive(
        case in from_fn(|rng| {
            let (m, k, n) = (dim(rng), dim(rng), dim(rng));
            let w = WORKERS[rng.random_range(0..WORKERS.len())];
            (matrix_of(rng, m, k), matrix_of(rng, n, k), w)
        }),
    ) {
        let (a, b, w) = case;
        let blocked = a.matmul_t_with(&b, &Pool::new(w));
        prop_assert_eq!(blocked, a.matmul_t_naive(&b));
    }

    #[test]
    fn affine_t_bit_matches_naive(
        case in from_fn(|rng| {
            let (m, k, n) = (dim(rng), dim(rng), dim(rng));
            let bias: Vec<f32> = (0..n).map(|_| rng.random_range(-1.0f32..1.0)).collect();
            (matrix_of(rng, m, k), matrix_of(rng, n, k), bias)
        }),
    ) {
        let (x, w, bias) = case;
        prop_assert_eq!(x.affine_t(&w, &bias), x.affine_t_naive(&w, &bias));
    }

    #[test]
    fn fused_gate_affine_bit_matches_naive(
        case in from_fn(|rng| {
            let (m, xc, hc, n) = (dim(rng), dim(rng), dim(rng), dim(rng));
            let bias: Vec<f32> = (0..n).map(|_| rng.random_range(-1.0f32..1.0)).collect();
            (
                matrix_of(rng, m, xc),
                matrix_of(rng, n, xc),
                matrix_of(rng, m, hc),
                matrix_of(rng, n, hc),
                bias,
            )
        }),
    ) {
        let (x, wx, h, wh, bias) = case;
        let fused = x.fused_gate_affine(&wx, &h, &wh, &bias);
        prop_assert_eq!(fused, x.fused_gate_affine_naive(&wx, &h, &wh, &bias));
    }

    #[test]
    fn forced_naive_dispatch_bit_matches_blocked(
        case in from_fn(|rng| {
            let (m, k, n) = (dim(rng), dim(rng), dim(rng));
            (matrix_of(rng, m, k), matrix_of(rng, k, n))
        }),
    ) {
        let (a, b) = case;
        let blocked = a.matmul(&b);
        set_naive_kernels(true);
        let naive = a.matmul(&b);
        set_naive_kernels(false);
        prop_assert!(!naive_kernels_forced());
        prop_assert_eq!(blocked, naive);
    }
}

/// Shapes whose flop counts land just below, exactly at, and just above
/// `PAR_THRESHOLD` — the sequential/pooled cutover — must agree with the
/// naive reference and with each other at every worker count.
#[test]
fn par_threshold_boundary_is_worker_invariant() {
    // 16 * 256 * 256 = 1 << 20 = PAR_THRESHOLD exactly.
    assert_eq!(16 * 256 * 256, PAR_THRESHOLD);
    let mut rng = StdRng::seed_from_u64(0xb10c);
    for n in [255usize, 256, 257] {
        let a = matrix_of(&mut rng, 16, 256);
        let b = matrix_of(&mut rng, 256, n);
        let reference = a.matmul_naive(&b);
        let att = a.transpose();
        let bt = b.transpose();
        for &w in WORKERS {
            let pool = Pool::new(w);
            assert_eq!(
                a.matmul_with(&b, &pool),
                reference,
                "matmul 16x256x{n} diverged from naive at {w} workers"
            );
            assert_eq!(
                att.t_matmul_with(&b, &pool),
                reference,
                "t_matmul 16x256x{n} diverged from naive at {w} workers"
            );
            assert_eq!(
                a.matmul_t_with(&bt, &pool),
                reference,
                "matmul_t 16x256x{n} diverged from naive at {w} workers"
            );
        }
    }
}

/// The K-block edge (K_BLOCK = 256): reduction depths 255/256/257 split
/// into one short panel, exactly one panel, and one panel plus a
/// single-column tail — all must bit-match the unpanelled naive loop.
#[test]
fn k_block_edges_bit_match_naive() {
    let mut rng = StdRng::seed_from_u64(0x6b1c);
    for k in [255usize, 256, 257, 511, 512, 513] {
        let a = matrix_of(&mut rng, 3, k);
        let b = matrix_of(&mut rng, k, 5);
        assert_eq!(a.matmul(&b), a.matmul_naive(&b), "k={k}");
        let bt = b.transpose();
        assert_eq!(a.matmul_t(&bt), a.matmul_t_naive(&bt), "k={k}");
        let bias = vec![0.25f32; 5];
        assert_eq!(
            a.affine_t(&bt, &bias),
            a.affine_t_naive(&bt, &bias),
            "k={k}"
        );
    }
}
