//! Property-based tests of the matrix algebra underlying every layer.

use eventhit_nn::matrix::Matrix;
use eventhit_rng::testkit::{from_fn, Strategy};
use eventhit_rng::{prop_assert, prop_assert_eq, property, Rng};

const TOL: f32 = 1e-3;

fn close(a: &Matrix, b: &Matrix) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| (x - y).abs() <= TOL * (1.0 + x.abs().max(y.abs())))
}

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    from_fn(move |rng| {
        let data = (0..rows * cols)
            .map(|_| rng.random_range(-10.0f32..10.0))
            .collect();
        Matrix::from_vec(rows, cols, data)
    })
}

property! {
    #[test]
    fn matmul_distributes_over_addition(
        a in matrix(4, 3),
        b in matrix(3, 5),
        c in matrix(3, 5),
    ) {
        let mut bc = b.clone();
        bc.add_assign(&c);
        let lhs = a.matmul(&bc);
        let mut rhs = a.matmul(&b);
        rhs.add_assign(&a.matmul(&c));
        prop_assert!(close(&lhs, &rhs));
    }

    #[test]
    fn matmul_is_associative(
        a in matrix(3, 4),
        b in matrix(4, 2),
        c in matrix(2, 5),
    ) {
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        prop_assert!(close(&lhs, &rhs));
    }

    #[test]
    fn transpose_product_rule(a in matrix(4, 3), b in matrix(3, 2)) {
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(close(&lhs, &rhs));
    }

    #[test]
    fn fused_transpose_kernels_agree(a in matrix(5, 3), b in matrix(5, 4)) {
        // A^T B via the fused kernel equals the explicit computation.
        prop_assert!(close(&a.t_matmul(&b), &a.transpose().matmul(&b)));
    }

    #[test]
    fn matmul_t_kernel_agrees(a in matrix(4, 3), b in matrix(6, 3)) {
        prop_assert!(close(&a.matmul_t(&b), &a.matmul(&b.transpose())));
    }

    #[test]
    fn hcat_hsplit_roundtrip(a in matrix(3, 2), b in matrix(3, 4)) {
        let cat = a.hcat(&b);
        let (l, r) = cat.hsplit(2);
        prop_assert_eq!(l, a);
        prop_assert_eq!(r, b);
    }

    #[test]
    fn scale_is_linear(a in matrix(3, 3), k in -5.0f32..5.0) {
        let mut scaled = a.clone();
        scaled.scale(k);
        let mut doubled = a.clone();
        doubled.add_assign(&a);
        doubled.scale(k / 2.0);
        // k*(a + a)/2 == k*a
        prop_assert!(close(&scaled, &doubled));
    }

    #[test]
    fn sum_rows_matches_ones_vector_product(a in matrix(4, 3)) {
        let ones = Matrix::filled(4, 1, 1.0);
        let via_matmul = ones.t_matmul(&a); // 1 x 3
        let direct = a.sum_rows();
        for (x, y) in via_matmul.as_slice().iter().zip(&direct) {
            prop_assert!((x - y).abs() < TOL * (1.0 + y.abs()));
        }
    }

    #[test]
    fn hadamard_is_commutative(a in matrix(3, 4), b in matrix(3, 4)) {
        prop_assert!(close(&a.hadamard(&b), &b.hadamard(&a)));
    }

    #[test]
    fn norm_is_subadditive(a in matrix(3, 3), b in matrix(3, 3)) {
        let mut sum = a.clone();
        sum.add_assign(&b);
        prop_assert!(sum.norm() <= a.norm() + b.norm() + TOL);
    }
}
