//! Parametric Weibull survival model with right censoring.
//!
//! §VII notes that past data-management applications of survival analysis
//! "mainly utilized parametric models"; this module provides that classic
//! alternative to the semi-parametric Cox model: `S(t) = exp(-(t/λ)^k)`
//! with shape `k` and scale `λ`, fitted by maximum likelihood via Newton's
//! method on the profile of `k` (for fixed shape, the MLE of the scale is
//! closed-form).

/// A fitted Weibull survival model.
#[derive(Debug, Clone, PartialEq)]
pub struct WeibullModel {
    /// Shape parameter `k` (> 0): k < 1 infant mortality, k = 1
    /// exponential, k > 1 wear-out.
    pub shape: f64,
    /// Scale parameter `λ` (> 0).
    pub scale: f64,
    /// Log-likelihood at the fit.
    pub log_likelihood: f64,
}

/// Errors from fitting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeibullError {
    /// No uncensored observations.
    NoEvents,
    /// Times must be positive and finite.
    InvalidTimes,
}

impl std::fmt::Display for WeibullError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeibullError::NoEvents => write!(f, "no observed events"),
            WeibullError::InvalidTimes => write!(f, "times must be positive and finite"),
        }
    }
}

impl std::error::Error for WeibullError {}

/// For a fixed shape `k`, the scale MLE is
/// `λ^k = Σ t_i^k / d` over all observations, `d` = number of events.
fn scale_mle(times: &[(f64, bool)], k: f64) -> f64 {
    let d = times.iter().filter(|&&(_, obs)| obs).count() as f64;
    let sum_tk: f64 = times.iter().map(|&(t, _)| t.powf(k)).sum();
    (sum_tk / d).powf(1.0 / k)
}

/// Profile log-likelihood in `k` (with λ at its conditional MLE).
fn profile_loglik(times: &[(f64, bool)], k: f64) -> f64 {
    let lambda = scale_mle(times, k);
    log_likelihood(times, k, lambda)
}

/// Full censored Weibull log-likelihood.
fn log_likelihood(times: &[(f64, bool)], k: f64, lambda: f64) -> f64 {
    let mut ll = 0.0;
    for &(t, observed) in times {
        let z = t / lambda;
        if observed {
            ll += k.ln() - lambda.ln() + (k - 1.0) * z.ln() - z.powf(k);
        } else {
            ll += -z.powf(k);
        }
    }
    ll
}

impl WeibullModel {
    /// Fits by golden-section search on the profile likelihood in `k`
    /// (unimodal for Weibull), then closed-form `λ`.
    pub fn fit(times: &[(f64, bool)]) -> Result<WeibullModel, WeibullError> {
        if !times.iter().all(|&(t, _)| t.is_finite() && t > 0.0) {
            return Err(WeibullError::InvalidTimes);
        }
        if !times.iter().any(|&(_, obs)| obs) {
            return Err(WeibullError::NoEvents);
        }

        // Golden-section search for k in [0.05, 20].
        let (mut lo, mut hi) = (0.05f64, 20.0f64);
        let phi = (5.0f64.sqrt() - 1.0) / 2.0;
        let mut x1 = hi - phi * (hi - lo);
        let mut x2 = lo + phi * (hi - lo);
        let mut f1 = profile_loglik(times, x1);
        let mut f2 = profile_loglik(times, x2);
        for _ in 0..80 {
            if f1 < f2 {
                lo = x1;
                x1 = x2;
                f1 = f2;
                x2 = lo + phi * (hi - lo);
                f2 = profile_loglik(times, x2);
            } else {
                hi = x2;
                x2 = x1;
                f2 = f1;
                x1 = hi - phi * (hi - lo);
                f1 = profile_loglik(times, x1);
            }
        }
        let shape = 0.5 * (lo + hi);
        let scale = scale_mle(times, shape);
        Ok(WeibullModel {
            shape,
            scale,
            log_likelihood: log_likelihood(times, shape, scale),
        })
    }

    /// Survival probability `S(t)`.
    pub fn survival(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 1.0;
        }
        (-(t / self.scale).powf(self.shape)).exp()
    }

    /// Hazard rate `h(t) = (k/λ)(t/λ)^{k-1}`.
    pub fn hazard(&self, t: f64) -> f64 {
        assert!(t > 0.0, "hazard defined for t > 0");
        (self.shape / self.scale) * (t / self.scale).powf(self.shape - 1.0)
    }

    /// Mean survival time `λ Γ(1 + 1/k)`.
    pub fn mean(&self) -> f64 {
        self.scale * gamma(1.0 + 1.0 / self.shape)
    }

    /// Median survival time `λ (ln 2)^{1/k}`.
    pub fn median(&self) -> f64 {
        self.scale * std::f64::consts::LN_2.powf(1.0 / self.shape)
    }
}

/// Lanczos approximation of the gamma function (g = 7, n = 9), accurate to
/// ~1e-13 on the positive reals used here.
fn gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventhit_rng::rngs::StdRng;
    use eventhit_rng::{Rng, SeedableRng};

    fn weibull_sample(shape: f64, scale: f64, rng: &mut StdRng) -> f64 {
        // Inverse transform: t = λ (-ln U)^{1/k}.
        let u: f64 = 1.0 - rng.random::<f64>();
        scale * (-u.ln()).powf(1.0 / shape)
    }

    #[test]
    fn gamma_known_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-10);
        assert!((gamma(2.0) - 1.0).abs() < 1e-10);
        assert!((gamma(5.0) - 24.0).abs() < 1e-8);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn recovers_exponential_case() {
        // shape = 1 (exponential with mean = scale).
        let mut rng = StdRng::seed_from_u64(1);
        let times: Vec<(f64, bool)> = (0..4000)
            .map(|_| (weibull_sample(1.0, 50.0, &mut rng), true))
            .collect();
        let m = WeibullModel::fit(&times).unwrap();
        assert!((m.shape - 1.0).abs() < 0.07, "shape={}", m.shape);
        assert!((m.scale - 50.0).abs() < 3.0, "scale={}", m.scale);
    }

    #[test]
    fn recovers_wearout_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let times: Vec<(f64, bool)> = (0..4000)
            .map(|_| (weibull_sample(2.5, 100.0, &mut rng), true))
            .collect();
        let m = WeibullModel::fit(&times).unwrap();
        assert!((m.shape - 2.5).abs() < 0.12, "shape={}", m.shape);
        assert!((m.scale - 100.0).abs() < 4.0, "scale={}", m.scale);
    }

    #[test]
    fn handles_censoring_consistently() {
        let mut rng = StdRng::seed_from_u64(3);
        let times: Vec<(f64, bool)> = (0..5000)
            .map(|_| {
                let t = weibull_sample(1.5, 80.0, &mut rng);
                let c: f64 = rng.random_range(20.0..200.0);
                if t <= c {
                    (t, true)
                } else {
                    (c, false)
                }
            })
            .collect();
        let m = WeibullModel::fit(&times).unwrap();
        assert!((m.shape - 1.5).abs() < 0.12, "shape={}", m.shape);
        assert!((m.scale - 80.0).abs() < 6.0, "scale={}", m.scale);
    }

    #[test]
    fn survival_curve_properties() {
        let m = WeibullModel {
            shape: 2.0,
            scale: 10.0,
            log_likelihood: 0.0,
        };
        assert_eq!(m.survival(0.0), 1.0);
        assert!((m.survival(10.0) - (-1.0f64).exp()).abs() < 1e-12);
        assert!(m.survival(5.0) > m.survival(15.0));
        // Median and mean formulas.
        assert!((m.median() - 10.0 * std::f64::consts::LN_2.sqrt()).abs() < 1e-9);
        assert!((m.mean() - 10.0 * gamma(1.5)).abs() < 1e-9);
    }

    #[test]
    fn hazard_is_increasing_for_wearout() {
        let m = WeibullModel {
            shape: 2.0,
            scale: 10.0,
            log_likelihood: 0.0,
        };
        assert!(m.hazard(2.0) < m.hazard(8.0));
        let exp = WeibullModel {
            shape: 1.0,
            scale: 10.0,
            log_likelihood: 0.0,
        };
        assert!(
            (exp.hazard(1.0) - exp.hazard(9.0)).abs() < 1e-12,
            "constant hazard"
        );
    }

    #[test]
    fn rejects_degenerate_input() {
        assert!(matches!(
            WeibullModel::fit(&[(1.0, false), (2.0, false)]),
            Err(WeibullError::NoEvents)
        ));
        assert!(matches!(
            WeibullModel::fit(&[(0.0, true)]),
            Err(WeibullError::InvalidTimes)
        ));
        assert!(matches!(
            WeibullModel::fit(&[(-1.0, true)]),
            Err(WeibullError::InvalidTimes)
        ));
    }
}
