//! Small dense `f64` linear algebra for the Newton–Raphson Cox fitter.
//!
//! The Cox model's Hessian is `d x d` with `d` in the tens, so a simple LU
//! solve with partial pivoting is plenty.

/// Solves `A x = b` for square `A` (row-major, `n x n`) via LU decomposition
/// with partial pivoting. Returns `None` if `A` is singular to working
/// precision.
pub fn solve(a: &[f64], b: &[f64], n: usize) -> Option<Vec<f64>> {
    assert_eq!(a.len(), n * n, "matrix size mismatch");
    assert_eq!(b.len(), n, "rhs size mismatch");
    let mut lu = a.to_vec();
    let mut x = b.to_vec();
    let mut perm: Vec<usize> = (0..n).collect();

    for col in 0..n {
        // Partial pivot.
        let mut pivot = col;
        let mut max = lu[perm[col] * n + col].abs();
        for (r, &pr) in perm.iter().enumerate().skip(col + 1) {
            let v = lu[pr * n + col].abs();
            if v > max {
                max = v;
                pivot = r;
            }
        }
        if max < 1e-12 {
            return None;
        }
        perm.swap(col, pivot);
        let prow = perm[col];
        let pivot_val = lu[prow * n + col];
        for &r in &perm[col + 1..] {
            let factor = lu[r * n + col] / pivot_val;
            lu[r * n + col] = factor;
            for c in col + 1..n {
                lu[r * n + c] -= factor * lu[prow * n + c];
            }
        }
    }

    // Forward substitution (Ly = Pb).
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut acc = x[perm[i]];
        for j in 0..i {
            acc -= lu[perm[i] * n + j] * y[j];
        }
        y[i] = acc;
    }
    // Back substitution (Ux = y).
    for i in (0..n).rev() {
        let mut acc = y[i];
        for j in i + 1..n {
            acc -= lu[perm[i] * n + j] * x[j];
        }
        x[i] = acc / lu[perm[i] * n + i];
    }
    Some(x)
}

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![3.0, -4.0];
        let x = solve(&a, &b, 2).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn solve_known_system() {
        // [2 1; 1 3] x = [5; 10] => x = [1; 3].
        let a = vec![2.0, 1.0, 1.0, 3.0];
        let b = vec![5.0, 10.0];
        let x = solve(&a, &b, 2).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the diagonal: needs row swap.
        let a = vec![0.0, 1.0, 1.0, 0.0];
        let b = vec![2.0, 7.0];
        let x = solve(&a, &b, 2).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn solve_detects_singular() {
        let a = vec![1.0, 2.0, 2.0, 4.0];
        assert!(solve(&a, &[1.0, 2.0], 2).is_none());
    }

    #[test]
    fn solve_3x3_round_trip() {
        let a = vec![4.0, 1.0, 2.0, 1.0, 5.0, 1.0, 2.0, 1.0, 6.0];
        let x_true = [1.0, -2.0, 0.5];
        let b: Vec<f64> = (0..3)
            .map(|i| (0..3).map(|j| a[i * 3 + j] * x_true[j]).sum())
            .collect();
        let x = solve(&a, &b, 3).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }
}
