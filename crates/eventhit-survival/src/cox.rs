//! Cox proportional-hazards regression (Cox, 1972).
//!
//! Fits `h(t | x) = h_0(t) * exp(β·x)` by Newton–Raphson on the partial
//! log-likelihood with Breslow's approximation for tied event times, and
//! estimates the baseline cumulative hazard with the Breslow estimator so
//! survival curves `S(t | x) = exp(-H_0(t) e^{β·x})` can be predicted for
//! new covariates. This powers the paper's COX baseline (§VI.B item 7).

use crate::linalg::{dot, norm, solve};

/// One survival observation: covariates, the observed (possibly censored)
/// time, and whether the event was observed (`true`) or censored (`false`).
#[derive(Debug, Clone, PartialEq)]
pub struct Subject {
    /// Covariate vector.
    pub x: Vec<f64>,
    /// Observed time (event time if `observed`, censoring time otherwise).
    pub time: f64,
    /// True iff the event occurred at `time`.
    pub observed: bool,
}

/// Configuration of the Newton–Raphson fitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoxConfig {
    /// Maximum Newton iterations.
    pub max_iter: usize,
    /// Convergence tolerance on the gradient norm.
    pub tol: f64,
    /// Ridge added to the Hessian diagonal for numerical stability.
    pub ridge: f64,
}

impl Default for CoxConfig {
    fn default() -> Self {
        CoxConfig {
            max_iter: 50,
            tol: 1e-6,
            ridge: 1e-6,
        }
    }
}

/// A fitted Cox proportional-hazards model.
#[derive(Debug, Clone)]
pub struct CoxModel {
    /// Fitted coefficients `β`.
    pub beta: Vec<f64>,
    /// Final partial log-likelihood.
    pub log_likelihood: f64,
    /// Newton iterations used.
    pub iterations: usize,
    /// Breslow baseline cumulative hazard, as `(time, H_0(time))` pairs in
    /// increasing time order.
    pub baseline_hazard: Vec<(f64, f64)>,
}

/// Errors from fitting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoxError {
    /// Fewer than one observed (uncensored) event.
    NoEvents,
    /// Covariate dimensions disagree across subjects.
    DimensionMismatch,
    /// The Newton system was singular and could not be regularized.
    Singular,
}

impl std::fmt::Display for CoxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoxError::NoEvents => write!(f, "no observed events in the sample"),
            CoxError::DimensionMismatch => write!(f, "covariate dimension mismatch"),
            CoxError::Singular => write!(f, "singular Newton system"),
        }
    }
}

impl std::error::Error for CoxError {}

/// Computes the Breslow partial log-likelihood, gradient, and Hessian at
/// `beta`. Subjects must be sorted by descending time so risk sets can be
/// accumulated incrementally.
fn partial_likelihood(sorted: &[&Subject], beta: &[f64]) -> (f64, Vec<f64>, Vec<f64>) {
    let d = beta.len();
    let mut loglik = 0.0;
    let mut grad = vec![0.0; d];
    let mut hess = vec![0.0; d * d];

    // Risk-set accumulators: S0 = Σ e^{βx}, S1 = Σ x e^{βx},
    // S2 = Σ x xᵀ e^{βx} over subjects with time >= current.
    let mut s0 = 0.0f64;
    let mut s1 = vec![0.0; d];
    let mut s2 = vec![0.0; d * d];

    let mut i = 0;
    while i < sorted.len() {
        let t = sorted[i].time;
        // Add everyone with this time to the risk set (ties enter together).
        let mut j = i;
        while j < sorted.len() && sorted[j].time == t {
            let subj = sorted[j];
            let w = dot(&subj.x, beta).exp();
            s0 += w;
            for a in 0..d {
                s1[a] += subj.x[a] * w;
                for b in 0..d {
                    s2[a * d + b] += subj.x[a] * subj.x[b] * w;
                }
            }
            j += 1;
        }
        // Breslow: each event at this time contributes against the same
        // risk-set sums.
        for subj in &sorted[i..j] {
            if !subj.observed {
                continue;
            }
            loglik += dot(&subj.x, beta) - s0.ln();
            for a in 0..d {
                let mean_a = s1[a] / s0;
                grad[a] += subj.x[a] - mean_a;
                for b in 0..d {
                    let mean_b = s1[b] / s0;
                    hess[a * d + b] -= s2[a * d + b] / s0 - mean_a * mean_b;
                }
            }
        }
        i = j;
    }
    (loglik, grad, hess)
}

impl CoxModel {
    /// Fits the model to `subjects`.
    pub fn fit(subjects: &[Subject], config: &CoxConfig) -> Result<CoxModel, CoxError> {
        let n_events = subjects.iter().filter(|s| s.observed).count();
        if n_events == 0 {
            return Err(CoxError::NoEvents);
        }
        let d = subjects[0].x.len();
        if subjects.iter().any(|s| s.x.len() != d) {
            return Err(CoxError::DimensionMismatch);
        }

        // Sort descending by time; ties keep input order (irrelevant).
        let mut sorted: Vec<&Subject> = subjects.iter().collect();
        sorted.sort_by(|a, b| b.time.total_cmp(&a.time));

        let mut beta = vec![0.0; d];
        let (mut loglik, mut grad, mut hess) = partial_likelihood(&sorted, &beta);
        let mut iterations = 0;

        for iter in 0..config.max_iter {
            iterations = iter + 1;
            if norm(&grad) < config.tol {
                break;
            }
            // Newton step: solve (-H + ridge I) Δ = grad.
            let mut neg_h = hess.iter().map(|&v| -v).collect::<Vec<f64>>();
            for a in 0..d {
                neg_h[a * d + a] += config.ridge;
            }
            let delta = solve(&neg_h, &grad, d).ok_or(CoxError::Singular)?;

            // Step halving to guarantee likelihood ascent.
            let mut step = 1.0;
            let mut improved = false;
            for _ in 0..20 {
                let candidate: Vec<f64> = beta
                    .iter()
                    .zip(&delta)
                    .map(|(&b, &dl)| b + step * dl)
                    .collect();
                let (ll, g, h) = partial_likelihood(&sorted, &candidate);
                if ll > loglik - 1e-12 {
                    beta = candidate;
                    loglik = ll;
                    grad = g;
                    hess = h;
                    improved = true;
                    break;
                }
                step *= 0.5;
            }
            if !improved {
                break;
            }
        }

        let baseline_hazard = breslow_baseline(&sorted, &beta);
        Ok(CoxModel {
            beta,
            log_likelihood: loglik,
            iterations,
            baseline_hazard,
        })
    }

    /// Linear predictor `β·x`.
    pub fn linear_predictor(&self, x: &[f64]) -> f64 {
        dot(&self.beta, x)
    }

    /// Relative risk `exp(β·x)`.
    pub fn risk(&self, x: &[f64]) -> f64 {
        self.linear_predictor(x).exp()
    }

    /// Baseline cumulative hazard `H_0(t)` (step function, right-continuous).
    pub fn cumulative_hazard(&self, t: f64) -> f64 {
        // baseline_hazard is sorted by time ascending.
        match self
            .baseline_hazard
            .partition_point(|&(ti, _)| ti <= t)
            .checked_sub(1)
        {
            Some(idx) => self.baseline_hazard[idx].1,
            None => 0.0,
        }
    }

    /// Predicted survival probability `S(t | x)`.
    pub fn survival(&self, x: &[f64], t: f64) -> f64 {
        (-self.cumulative_hazard(t) * self.risk(x)).exp()
    }

    /// Predicted survival curve at the given times.
    pub fn survival_curve(&self, x: &[f64], times: &[f64]) -> Vec<f64> {
        times.iter().map(|&t| self.survival(x, t)).collect()
    }
}

/// Breslow estimator of the baseline cumulative hazard:
/// `H_0(t) = Σ_{t_i <= t} d_i / S0(t_i)` over distinct event times.
fn breslow_baseline(sorted_desc: &[&Subject], beta: &[f64]) -> Vec<(f64, f64)> {
    // Walk descending, accumulating risk-set S0, recording d_i / S0 per
    // distinct event time; then reverse and cumulate.
    let mut increments: Vec<(f64, f64)> = Vec::new();
    let mut s0 = 0.0;
    let mut i = 0;
    while i < sorted_desc.len() {
        let t = sorted_desc[i].time;
        let mut j = i;
        let mut deaths = 0u32;
        while j < sorted_desc.len() && sorted_desc[j].time == t {
            s0 += dot(&sorted_desc[j].x, beta).exp();
            if sorted_desc[j].observed {
                deaths += 1;
            }
            j += 1;
        }
        if deaths > 0 {
            increments.push((t, deaths as f64 / s0));
        }
        i = j;
    }
    increments.reverse();
    let mut cum = 0.0;
    increments
        .into_iter()
        .map(|(t, inc)| {
            cum += inc;
            (t, cum)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventhit_rng::rngs::StdRng;
    use eventhit_rng::{Rng, SeedableRng};

    fn subject(x: Vec<f64>, time: f64, observed: bool) -> Subject {
        Subject { x, time, observed }
    }

    #[test]
    fn rejects_all_censored() {
        let subs = vec![subject(vec![1.0], 1.0, false)];
        assert_eq!(
            CoxModel::fit(&subs, &CoxConfig::default()).unwrap_err(),
            CoxError::NoEvents
        );
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let subs = vec![
            subject(vec![1.0], 1.0, true),
            subject(vec![1.0, 2.0], 2.0, true),
        ];
        assert_eq!(
            CoxModel::fit(&subs, &CoxConfig::default()).unwrap_err(),
            CoxError::DimensionMismatch
        );
    }

    #[test]
    fn partial_likelihood_hand_computed_at_zero() {
        // Three subjects, times 1 < 2 < 3, all observed, scalar covariate.
        // At beta = 0: loglik = ln(1/3) + ln(1/2) + ln(1/1) = -ln 6.
        let subs = [
            subject(vec![0.5], 1.0, true),
            subject(vec![-0.5], 2.0, true),
            subject(vec![1.0], 3.0, true),
        ];
        let sorted: Vec<&Subject> = {
            let mut v: Vec<&Subject> = subs.iter().collect();
            v.sort_by(|a, b| b.time.total_cmp(&a.time));
            v
        };
        let (ll, _, _) = partial_likelihood(&sorted, &[0.0]);
        assert!((ll - (-(6.0f64).ln())).abs() < 1e-10, "ll={ll}");
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(1);
        let subs: Vec<Subject> = (0..30)
            .map(|_| {
                subject(
                    vec![rng.random_range(-1.0..1.0), rng.random_range(-1.0..1.0)],
                    rng.random_range(0.1..10.0),
                    rng.random::<f64>() < 0.7,
                )
            })
            .collect();
        let sorted: Vec<&Subject> = {
            let mut v: Vec<&Subject> = subs.iter().collect();
            v.sort_by(|a, b| b.time.total_cmp(&a.time));
            v
        };
        let beta = vec![0.3, -0.7];
        let (_, grad, _) = partial_likelihood(&sorted, &beta);
        let eps = 1e-5;
        for k in 0..2 {
            let mut bp = beta.clone();
            bp[k] += eps;
            let (lp, _, _) = partial_likelihood(&sorted, &bp);
            bp[k] -= 2.0 * eps;
            let (lm, _, _) = partial_likelihood(&sorted, &bp);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad[k]).abs() < 1e-5,
                "k={k}: {numeric} vs {}",
                grad[k]
            );
        }
    }

    #[test]
    fn recovers_known_coefficient() {
        // Exponential survival with hazard rate exp(beta * x), beta = 1.5.
        let mut rng = StdRng::seed_from_u64(7);
        let beta_true = 1.5;
        let subs: Vec<Subject> = (0..800)
            .map(|_| {
                let x: f64 = rng.random_range(-1.0..1.0);
                let rate = (beta_true * x).exp();
                let u: f64 = 1.0 - rng.random::<f64>();
                let t = -u.ln() / rate;
                subject(vec![x], t, true)
            })
            .collect();
        let model = CoxModel::fit(&subs, &CoxConfig::default()).unwrap();
        assert!(
            (model.beta[0] - beta_true).abs() < 0.15,
            "beta={} (true {beta_true})",
            model.beta[0]
        );
    }

    #[test]
    fn handles_censoring() {
        // Same generative process but censor half the sample at random
        // times; the estimate should remain consistent.
        let mut rng = StdRng::seed_from_u64(8);
        let beta_true = 1.0;
        let subs: Vec<Subject> = (0..1200)
            .map(|_| {
                let x: f64 = rng.random_range(-1.0..1.0);
                let rate = (beta_true * x).exp();
                let u: f64 = 1.0 - rng.random::<f64>();
                let t_event = -u.ln() / rate;
                let t_cens = rng.random_range(0.1..3.0);
                if t_event <= t_cens {
                    subject(vec![x], t_event, true)
                } else {
                    subject(vec![x], t_cens, false)
                }
            })
            .collect();
        let model = CoxModel::fit(&subs, &CoxConfig::default()).unwrap();
        assert!(
            (model.beta[0] - beta_true).abs() < 0.2,
            "beta={} (true {beta_true})",
            model.beta[0]
        );
    }

    #[test]
    fn survival_curve_is_monotone_decreasing() {
        let mut rng = StdRng::seed_from_u64(9);
        let subs: Vec<Subject> = (0..100)
            .map(|_| {
                subject(
                    vec![rng.random_range(-1.0..1.0)],
                    rng.random_range(0.1..5.0),
                    true,
                )
            })
            .collect();
        let model = CoxModel::fit(&subs, &CoxConfig::default()).unwrap();
        let times: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let curve = model.survival_curve(&[0.5], &times);
        assert!((curve[0] - 1.0).abs() < 1e-9 || curve[0] <= 1.0);
        for w in curve.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        assert!(curve.iter().all(|&s| (0.0..=1.0).contains(&s)));
    }

    #[test]
    fn higher_risk_covariate_has_lower_survival() {
        let mut rng = StdRng::seed_from_u64(10);
        let subs: Vec<Subject> = (0..400)
            .map(|_| {
                let x: f64 = rng.random_range(-1.0..1.0);
                let rate = (1.2 * x).exp();
                let u: f64 = 1.0 - rng.random::<f64>();
                subject(vec![x], -u.ln() / rate, true)
            })
            .collect();
        let model = CoxModel::fit(&subs, &CoxConfig::default()).unwrap();
        let t = 0.8;
        assert!(model.survival(&[1.0], t) < model.survival(&[-1.0], t));
    }

    #[test]
    fn cumulative_hazard_before_first_event_is_zero() {
        let subs = vec![subject(vec![0.0], 5.0, true), subject(vec![0.0], 6.0, true)];
        let model = CoxModel::fit(&subs, &CoxConfig::default()).unwrap();
        assert_eq!(model.cumulative_hazard(1.0), 0.0);
        assert!(model.cumulative_hazard(5.0) > 0.0);
        // Survival at t=0 is exactly 1.
        assert_eq!(model.survival(&[0.0], 0.0), 1.0);
    }

    #[test]
    fn breslow_handles_ties() {
        // Two events at the same time must both contribute.
        let subs = vec![
            subject(vec![0.0], 2.0, true),
            subject(vec![0.0], 2.0, true),
            subject(vec![0.0], 3.0, false),
        ];
        let model = CoxModel::fit(&subs, &CoxConfig::default()).unwrap();
        // At beta=0 (single constant covariate has no signal so beta ~ 0):
        // H0(2) = 2 deaths / 3 at risk = 2/3.
        assert!((model.cumulative_hazard(2.5) - 2.0 / 3.0).abs() < 1e-6);
    }
}
