//! # eventhit-survival
//!
//! Survival-analysis substrate for the EventHit reproduction: a Cox
//! proportional-hazards model fitted by Newton–Raphson on the Breslow
//! partial likelihood, the Breslow baseline cumulative-hazard estimator,
//! and a Kaplan–Meier product-limit estimator.
//!
//! These power the paper's COX baseline (§VI.B item 7), which regresses
//! survival ("time until the event") on window covariates and relays the
//! horizon suffix once the predicted event probability crosses a threshold.

pub mod cox;
pub mod km;
pub mod linalg;
pub mod weibull;

pub use cox::{CoxConfig, CoxError, CoxModel, Subject};
pub use km::KaplanMeier;
pub use weibull::{WeibullError, WeibullModel};
