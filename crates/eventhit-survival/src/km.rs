//! Kaplan–Meier product-limit estimator of the survival function.

/// A fitted Kaplan–Meier curve: `(time, S(time))` steps in increasing time
/// order. `S` is right-continuous; `S(t) = 1` before the first event time.
#[derive(Debug, Clone, PartialEq)]
pub struct KaplanMeier {
    steps: Vec<(f64, f64)>,
}

impl KaplanMeier {
    /// Fits from `(time, observed)` pairs — `observed = false` marks a
    /// censored observation.
    ///
    /// # Panics
    /// Panics on an empty sample or non-finite times.
    pub fn fit(observations: &[(f64, bool)]) -> Self {
        assert!(!observations.is_empty(), "empty sample");
        assert!(
            observations.iter().all(|&(t, _)| t.is_finite() && t >= 0.0),
            "times must be finite and non-negative"
        );
        let mut sorted: Vec<(f64, bool)> = observations.to_vec();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));

        let mut steps = Vec::new();
        let mut at_risk = sorted.len() as f64;
        let mut survival = 1.0;
        let mut i = 0;
        while i < sorted.len() {
            let t = sorted[i].0;
            let mut deaths = 0.0;
            let mut leaving = 0.0;
            while i < sorted.len() && sorted[i].0 == t {
                if sorted[i].1 {
                    deaths += 1.0;
                }
                leaving += 1.0;
                i += 1;
            }
            if deaths > 0.0 {
                survival *= 1.0 - deaths / at_risk;
                steps.push((t, survival));
            }
            at_risk -= leaving;
        }
        KaplanMeier { steps }
    }

    /// Survival probability at time `t`.
    pub fn survival(&self, t: f64) -> f64 {
        match self
            .steps
            .partition_point(|&(ti, _)| ti <= t)
            .checked_sub(1)
        {
            Some(idx) => self.steps[idx].1,
            None => 1.0,
        }
    }

    /// The step points `(time, S(time))`.
    pub fn steps(&self) -> &[(f64, f64)] {
        &self.steps
    }

    /// Median survival time: the earliest time with `S(t) <= 0.5`, if the
    /// curve drops that low.
    pub fn median(&self) -> Option<f64> {
        self.steps.iter().find(|&&(_, s)| s <= 0.5).map(|&(t, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_example() {
        // Classic example: times 1, 2+, 3, 4+ (+ = censored).
        // S(1) = 3/4; S(3) = 3/4 * (1 - 1/2) = 3/8.
        let km = KaplanMeier::fit(&[(1.0, true), (2.0, false), (3.0, true), (4.0, false)]);
        assert!((km.survival(1.0) - 0.75).abs() < 1e-12);
        assert!((km.survival(2.5) - 0.75).abs() < 1e-12);
        assert!((km.survival(3.0) - 0.375).abs() < 1e-12);
        assert!((km.survival(10.0) - 0.375).abs() < 1e-12);
        assert_eq!(km.survival(0.5), 1.0);
    }

    #[test]
    fn all_observed_steps_to_zero() {
        let km = KaplanMeier::fit(&[(1.0, true), (2.0, true), (3.0, true)]);
        assert!(km.survival(3.0).abs() < 1e-12);
        assert_eq!(km.median(), Some(2.0));
    }

    #[test]
    fn all_censored_stays_at_one() {
        let km = KaplanMeier::fit(&[(1.0, false), (2.0, false)]);
        assert_eq!(km.survival(100.0), 1.0);
        assert_eq!(km.median(), None);
        assert!(km.steps().is_empty());
    }

    #[test]
    fn tied_event_times() {
        // Two deaths at t=1 among 4 at risk: S(1) = 1/2.
        let km = KaplanMeier::fit(&[(1.0, true), (1.0, true), (2.0, false), (3.0, false)]);
        assert!((km.survival(1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn monotone_non_increasing() {
        let obs: Vec<(f64, bool)> = (1..50).map(|i| (i as f64, i % 3 != 0)).collect();
        let km = KaplanMeier::fit(&obs);
        let mut prev = 1.0;
        for &(_, s) in km.steps() {
            assert!(s <= prev + 1e-12);
            prev = s;
        }
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn rejects_empty() {
        let _ = KaplanMeier::fit(&[]);
    }
}
