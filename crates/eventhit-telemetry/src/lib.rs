//! # eventhit-telemetry
//!
//! Deterministic, std-only observability substrate for the EventHit
//! workspace: a metric registry (counters, gauges, log-bucketed
//! histograms), lightweight nested spans recorded into an in-memory trace
//! buffer, JSONL export, and an FNV-1a fingerprint so determinism tests
//! can assert bit-identical telemetry across seed replays — the same
//! trick `eventhit-core::faults` uses for fault traces.
//!
//! Two clocks are supported, mirroring the workspace's two notions of
//! time:
//!
//! * **wall clock** — real elapsed seconds since the [`Telemetry`] value
//!   was created; the right choice for profiling real work (training
//!   steps, decision latency).
//! * **manual (sim) clock** — the discrete-event simulated seconds used
//!   by `ci_queue` and the resilient client. Instrumented simulators call
//!   [`Telemetry::set_time`] as their event clock advances, so spans and
//!   gauge samples line up with the simulation timeline and the whole
//!   telemetry stream is a pure function of the inputs (bit-reproducible).
//!
//! Every recording call is a no-op on a disabled recorder
//! ([`Telemetry::disabled`]), so instrumented hot paths can stay
//! instrumented in production builds; the bench suite measures the
//! residual overhead.
//!
//! ```
//! use eventhit_telemetry::Telemetry;
//!
//! let tel = Telemetry::with_manual_clock();
//! {
//!     let _run = tel.span("demo.run");
//!     tel.set_time(1.5);
//!     tel.add("demo.items", 3);
//!     tel.observe("demo.latency_seconds", 0.25);
//! }
//! let snap = tel.snapshot();
//! assert_eq!(snap.counter("demo.items"), Some(3));
//! assert_eq!(snap.fingerprint(), tel.snapshot().fingerprint());
//! ```

#![deny(missing_docs)]

pub mod clock;
pub mod hist;
pub mod percentile;
pub mod registry;
pub mod report;
pub mod slo;
pub mod slowlog;
pub mod window;

pub use clock::ClockKind;
pub use hist::LogHistogram;
pub use percentile::{percentile, percentiles};
pub use registry::{SpanGuard, SpanRecord, Telemetry};
pub use report::{crc32, fnv1a, TelemetrySnapshot};
pub use slo::SloStat;
pub use slowlog::{SlowDecision, SlowLog, SLOW_LOG_CAP};
pub use window::{WindowStat, WindowedSeries, DEFAULT_WINDOW_SECS, MAX_WINDOWS};
