//! The two clocks telemetry can run on.

/// Which clock a [`crate::Telemetry`] reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockKind {
    /// Real elapsed seconds since the recorder was created.
    Wall,
    /// Simulated seconds, advanced explicitly via
    /// [`crate::Telemetry::set_time`]. Never moves on its own, so
    /// recordings are a pure function of the instrumented computation.
    Manual,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct() {
        assert_ne!(ClockKind::Wall, ClockKind::Manual);
    }
}
