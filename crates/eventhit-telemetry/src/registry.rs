//! The telemetry recorder: metric registry plus span stack.
//!
//! A [`Telemetry`] value is shared by reference (or `Arc`) across the
//! instrumented stack; all mutation happens behind one internal mutex, so
//! call sites need only `&self`. Metric maps are `BTreeMap`s keyed by
//! `(name, label)`, which makes every snapshot iterate in one
//! deterministic order — a precondition for the fingerprinting scheme.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use crate::clock::ClockKind;
use crate::hist::LogHistogram;
use crate::report::TelemetrySnapshot;
use crate::slo::SloStat;
use crate::slowlog::{SlowDecision, SlowLog};
use crate::window::{WindowedSeries, DEFAULT_WINDOW_SECS};

/// Hard cap on the span trace buffer; spans beyond it are counted in
/// `dropped_spans` instead of recorded, bounding memory on long runs.
pub const MAX_SPANS: usize = 1 << 16;

/// Last/min/max/sample-count summary of a gauge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeStat {
    /// Most recently set value.
    pub last: f64,
    /// Smallest value ever set.
    pub min: f64,
    /// Largest value ever set.
    pub max: f64,
    /// Number of times the gauge was set.
    pub samples: u64,
}

/// One recorded span: a named region of (wall or simulated) time with an
/// optional parent, forming a forest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanRecord {
    /// Position in the trace buffer (stable identifier).
    pub id: u32,
    /// Enclosing span at the time this one started.
    pub parent: Option<u32>,
    /// Static span name (e.g. `"train.epoch"`).
    pub name: &'static str,
    /// Clock seconds when the span opened.
    pub start: f64,
    /// Clock seconds when the span closed (`NaN` while open).
    pub end: f64,
}

impl SpanRecord {
    /// Span duration in seconds; 0 for still-open spans.
    pub fn duration(&self) -> f64 {
        if self.end.is_finite() {
            (self.end - self.start).max(0.0)
        } else {
            0.0
        }
    }
}

type MetricKey = (String, String);

#[derive(Debug, Default)]
struct Inner {
    manual_now: f64,
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, GaugeStat>,
    hists: BTreeMap<MetricKey, LogHistogram>,
    windows: BTreeMap<MetricKey, WindowedSeries>,
    exemplars: BTreeMap<MetricKey, BTreeMap<usize, u64>>,
    slos: BTreeMap<MetricKey, SloStat>,
    slow: SlowLog,
    spans: Vec<SpanRecord>,
    open: Vec<u32>,
    dropped_spans: u64,
}

/// The recorder. See the crate docs for the clock semantics; a disabled
/// recorder turns every call into a cheap early return.
#[derive(Debug)]
pub struct Telemetry {
    enabled: bool,
    clock: ClockKind,
    epoch: Instant,
    inner: Mutex<Inner>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    fn build(enabled: bool, clock: ClockKind) -> Self {
        Telemetry {
            enabled,
            clock,
            epoch: Instant::now(),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// An enabled recorder on the wall clock (seconds since creation).
    pub fn new() -> Self {
        Telemetry::build(true, ClockKind::Wall)
    }

    /// An enabled recorder on the manual (simulated) clock: time only
    /// moves via [`Telemetry::set_time`], so identical computations
    /// record bit-identical telemetry.
    pub fn with_manual_clock() -> Self {
        Telemetry::build(true, ClockKind::Manual)
    }

    /// A no-op recorder: every call returns immediately. Instrumented
    /// code can take `&Telemetry` unconditionally and stay near-zero-cost
    /// when observability is off (the bench suite measures the residue).
    pub fn disabled() -> Self {
        Telemetry::build(false, ClockKind::Wall)
    }

    /// Whether this recorder records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Which clock the recorder reads.
    pub fn clock_kind(&self) -> ClockKind {
        self.clock
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn now_locked(&self, inner: &Inner) -> f64 {
        match self.clock {
            ClockKind::Wall => self.epoch.elapsed().as_secs_f64(),
            ClockKind::Manual => inner.manual_now,
        }
    }

    /// Current clock reading in seconds. A disabled recorder always
    /// reads 0 so timing arithmetic around it stays finite.
    pub fn now(&self) -> f64 {
        if !self.enabled {
            return 0.0;
        }
        let inner = self.lock();
        self.now_locked(&inner)
    }

    /// Advances the manual clock to `t` simulated seconds (no-op on the
    /// wall clock; the simulators call this unconditionally as their
    /// event clock moves).
    pub fn set_time(&self, t: f64) {
        if !self.enabled || self.clock != ClockKind::Manual {
            return;
        }
        self.lock().manual_now = t;
    }

    /// Opens a span; it closes (and is recorded) when the returned guard
    /// drops. Spans nest by scope: a span opened while another is open
    /// becomes its child.
    #[must_use = "a span closes when its guard drops"]
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        if !self.enabled {
            return SpanGuard {
                tel: self,
                id: u32::MAX,
            };
        }
        let mut inner = self.lock();
        if inner.spans.len() >= MAX_SPANS {
            inner.dropped_spans += 1;
            return SpanGuard {
                tel: self,
                id: u32::MAX,
            };
        }
        let id = inner.spans.len() as u32;
        let start = self.now_locked(&inner);
        let parent = inner.open.last().copied();
        inner.spans.push(SpanRecord {
            id,
            parent,
            name,
            start,
            end: f64::NAN,
        });
        inner.open.push(id);
        SpanGuard { tel: self, id }
    }

    /// Records an already-finished span directly, bypassing the scoped
    /// span stack. This is the replay API for parallel regions: worker
    /// threads cannot share the scope-based stack (their nesting is
    /// concurrent, not lexical), so they log timings privately and the
    /// coordinator replays them here after joining, in a deterministic
    /// order, wiring parents explicitly.
    ///
    /// Returns the new span's id, or `None` if the recorder is disabled
    /// or the trace buffer is full (counted in `dropped_spans`).
    pub fn record_closed_span(
        &self,
        name: &'static str,
        start: f64,
        end: f64,
        parent: Option<u32>,
    ) -> Option<u32> {
        if !self.enabled {
            return None;
        }
        let mut inner = self.lock();
        if inner.spans.len() >= MAX_SPANS {
            inner.dropped_spans += 1;
            return None;
        }
        let id = inner.spans.len() as u32;
        inner.spans.push(SpanRecord {
            id,
            parent,
            name,
            start,
            end,
        });
        Some(id)
    }

    fn finish_span(&self, id: u32) {
        let mut inner = self.lock();
        let end = self.now_locked(&inner);
        // Guards drop LIFO under normal scoping; if an outer guard is
        // dropped early, close any still-open descendants with it.
        if let Some(pos) = inner.open.iter().rposition(|&x| x == id) {
            let closing: Vec<u32> = inner.open.split_off(pos);
            for sid in closing {
                let rec = &mut inner.spans[sid as usize];
                if !rec.end.is_finite() {
                    rec.end = end;
                }
            }
        }
    }

    /// Adds `delta` to the counter `name`.
    pub fn add(&self, name: &'static str, delta: u64) {
        self.add_labeled(name, "", delta);
    }

    /// Adds `delta` to the `label` series of counter `name` (e.g.
    /// `add_labeled("ci.faults", "outage", 1)`).
    pub fn add_labeled(&self, name: &'static str, label: &str, delta: u64) {
        if !self.enabled {
            return;
        }
        let mut inner = self.lock();
        match inner
            .counters
            .get_mut(&(name.to_string(), label.to_string()))
        {
            Some(c) => *c += delta,
            None => {
                inner
                    .counters
                    .insert((name.to_string(), label.to_string()), delta);
            }
        }
    }

    /// Sets gauge `name` to `v`, tracking last/min/max. Non-finite values
    /// are ignored.
    pub fn gauge_set(&self, name: &'static str, v: f64) {
        if !self.enabled || !v.is_finite() {
            return;
        }
        let mut inner = self.lock();
        let entry = inner
            .gauges
            .entry((name.to_string(), String::new()))
            .or_insert(GaugeStat {
                last: v,
                min: v,
                max: v,
                samples: 0,
            });
        entry.last = v;
        entry.min = entry.min.min(v);
        entry.max = entry.max.max(v);
        entry.samples += 1;
    }

    /// Records `v` into the log-bucketed histogram `name`.
    pub fn observe(&self, name: &'static str, v: f64) {
        self.observe_labeled(name, "", v);
    }

    /// Records `v` into the `label` series of histogram `name` (e.g.
    /// `observe_labeled("serve.stage_seconds", "inference", dt)`).
    pub fn observe_labeled(&self, name: &'static str, label: &str, v: f64) {
        self.observe_impl(name, label, v, None);
    }

    /// Records `v` like [`Telemetry::observe_labeled`] and additionally
    /// attaches `trace_id` as the exemplar of the bucket the sample lands
    /// in (each bucket remembers the *minimum* trace id it has seen, so
    /// the exemplar set is independent of observation order and therefore
    /// bit-identical across worker counts).
    pub fn observe_traced(&self, name: &'static str, label: &str, v: f64, trace_id: u64) {
        self.observe_impl(name, label, v, Some(trace_id));
    }

    fn observe_impl(&self, name: &'static str, label: &str, v: f64, trace: Option<u64>) {
        if !self.enabled {
            return;
        }
        let mut inner = self.lock();
        let now = self.now_locked(&inner);
        let key = (name.to_string(), label.to_string());
        inner.hists.entry(key.clone()).or_default().observe(v);
        inner
            .windows
            .entry(key.clone())
            .or_insert_with(|| WindowedSeries::new(DEFAULT_WINDOW_SECS))
            .observe(now, v);
        if let Some(trace) = trace {
            if let Some(bucket) = LogHistogram::bucket_index(v) {
                let slot = inner
                    .exemplars
                    .entry(key.clone())
                    .or_default()
                    .entry(bucket)
                    .or_insert(trace);
                *slot = (*slot).min(trace);
            }
        }
        if let Some(slo) = inner.slos.get_mut(&key) {
            slo.observe(v);
        }
    }

    /// Registers (idempotently) an SLO on the `label` series of histogram
    /// `name`: at least `objective` of observed samples must land at or
    /// under `threshold` seconds. Subsequent observations of that series
    /// feed the tracker; re-registering keeps the accumulated counts.
    pub fn set_slo(&self, name: &'static str, label: &str, threshold: f64, objective: f64) {
        if !self.enabled {
            return;
        }
        let mut inner = self.lock();
        inner
            .slos
            .entry((name.to_string(), label.to_string()))
            .or_insert_with(|| SloStat::new(threshold, objective));
    }

    /// Records a candidate entry into the bounded slow-decision log (the
    /// log itself decides retention; see [`crate::slowlog::SlowLog`]).
    pub fn slow_decision(&self, entry: SlowDecision) {
        if !self.enabled {
            return;
        }
        self.lock().slow.record(entry);
    }

    /// A point-in-time copy of everything recorded so far. Only closed
    /// spans are exported (still-open ones are counted), so a snapshot
    /// taken after the instrumented region is a complete, deterministic
    /// artefact.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let inner = self.lock();
        TelemetrySnapshot {
            clock: self.clock,
            counters: inner
                .counters
                .iter()
                .map(|((n, l), &v)| (n.clone(), l.clone(), v))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|((n, l), &g)| (n.clone(), l.clone(), g))
                .collect(),
            histograms: inner
                .hists
                .iter()
                .map(|((n, l), h)| (n.clone(), l.clone(), h.clone()))
                .collect(),
            window_secs: DEFAULT_WINDOW_SECS,
            windows: inner
                .windows
                .iter()
                .map(|((n, l), w)| (n.clone(), l.clone(), w.stats()))
                .collect(),
            exemplars: inner
                .exemplars
                .iter()
                .map(|((n, l), ex)| {
                    (
                        n.clone(),
                        l.clone(),
                        ex.iter().map(|(&b, &t)| (b, t)).collect(),
                    )
                })
                .collect(),
            slos: inner
                .slos
                .iter()
                .map(|((n, l), &s)| (n.clone(), l.clone(), s))
                .collect(),
            slow: inner.slow.entries().to_vec(),
            spans: inner
                .spans
                .iter()
                .filter(|s| s.end.is_finite())
                .copied()
                .collect(),
            open_spans: inner.open.len(),
            dropped_spans: inner.dropped_spans,
        }
    }
}

/// RAII guard returned by [`Telemetry::span`]; records the span on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    tel: &'a Telemetry,
    id: u32,
}

impl SpanGuard<'_> {
    /// The recorded span's id, for use as an explicit parent in
    /// [`Telemetry::record_closed_span`]; `None` when the guard is a
    /// no-op (disabled recorder or full trace buffer).
    pub fn id(&self) -> Option<u32> {
        (self.id != u32::MAX).then_some(self.id)
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if self.id != u32::MAX {
            self.tel.finish_span(self.id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label() {
        let tel = Telemetry::with_manual_clock();
        tel.add("frames", 3);
        tel.add("frames", 4);
        tel.add_labeled("faults", "outage", 2);
        tel.add_labeled("faults", "timeout", 1);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("frames"), Some(7));
        assert_eq!(snap.counter_labeled("faults", "outage"), Some(2));
        assert_eq!(snap.counter_total("faults"), 3);
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn gauges_track_last_min_max() {
        let tel = Telemetry::with_manual_clock();
        tel.gauge_set("depth", 5.0);
        tel.gauge_set("depth", 2.0);
        tel.gauge_set("depth", 9.0);
        tel.gauge_set("depth", f64::NAN); // ignored
        let g = tel.snapshot().gauge("depth").unwrap();
        assert_eq!((g.last, g.min, g.max, g.samples), (9.0, 2.0, 9.0, 3));
    }

    #[test]
    fn spans_nest_and_record_on_manual_clock() {
        let tel = Telemetry::with_manual_clock();
        tel.set_time(1.0);
        {
            let _outer = tel.span("outer");
            tel.set_time(2.0);
            {
                let _inner = tel.span("inner");
                tel.set_time(5.0);
            }
            tel.set_time(7.0);
        }
        let spans = tel.snapshot().spans;
        assert_eq!(spans.len(), 2);
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert_eq!((outer.start, outer.end), (1.0, 7.0));
        assert_eq!((inner.start, inner.end), (2.0, 5.0));
        assert_eq!(inner.duration(), 3.0);
    }

    #[test]
    fn open_spans_are_excluded_from_snapshots() {
        let tel = Telemetry::with_manual_clock();
        let _open = tel.span("still.open");
        let snap = tel.snapshot();
        assert!(snap.spans.is_empty());
        assert_eq!(snap.open_spans, 1);
    }

    #[test]
    fn dropping_outer_guard_first_closes_descendants() {
        let tel = Telemetry::with_manual_clock();
        let outer = tel.span("outer");
        let inner = tel.span("inner");
        tel.set_time(3.0);
        drop(outer); // out of order: inner must still end up closed
        drop(inner);
        let spans = tel.snapshot().spans;
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.end == 3.0));
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let tel = Telemetry::disabled();
        let _g = tel.span("never");
        tel.add("c", 1);
        tel.gauge_set("g", 1.0);
        tel.observe("h", 1.0);
        tel.set_time(9.0);
        assert_eq!(tel.now(), 0.0);
        let snap = tel.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn span_buffer_is_capped() {
        let tel = Telemetry::with_manual_clock();
        for _ in 0..MAX_SPANS + 10 {
            let _s = tel.span("s");
        }
        let snap = tel.snapshot();
        assert_eq!(snap.spans.len(), MAX_SPANS);
        assert_eq!(snap.dropped_spans, 10);
    }

    #[test]
    fn record_closed_span_bypasses_the_scope_stack() {
        let tel = Telemetry::with_manual_clock();
        let _open = tel.span("ambient");
        let root = tel.record_closed_span("pool.run", 1.0, 4.0, None).unwrap();
        let child = tel
            .record_closed_span("pool.worker", 1.5, 3.5, Some(root))
            .unwrap();
        let snap = tel.snapshot();
        // The ambient scoped span is still open and must not have
        // adopted the replayed spans.
        let run = snap.spans.iter().find(|s| s.id == root).unwrap();
        let worker = snap.spans.iter().find(|s| s.id == child).unwrap();
        assert_eq!(run.parent, None);
        assert_eq!(worker.parent, Some(root));
        assert_eq!((run.start, run.end), (1.0, 4.0));
        assert_eq!(snap.open_spans, 1);
        assert!(Telemetry::disabled()
            .record_closed_span("x", 0.0, 1.0, None)
            .is_none());
    }

    #[test]
    fn span_guard_exposes_its_id() {
        let tel = Telemetry::with_manual_clock();
        let g = tel.span("a");
        assert!(g.id().is_some());
        let disabled = Telemetry::disabled();
        assert!(disabled.span("b").id().is_none());
    }

    #[test]
    fn wall_clock_moves_forward() {
        let tel = Telemetry::new();
        let a = tel.now();
        let b = tel.now();
        assert!(b >= a && a >= 0.0);
    }

    #[test]
    fn observations_feed_windowed_series() {
        let tel = Telemetry::with_manual_clock();
        tel.observe("lat", 0.010);
        tel.set_time(2.5);
        tel.observe_labeled("lat", "read", 0.020);
        tel.observe_labeled("lat", "read", 0.040);
        let snap = tel.snapshot();
        let w0 = snap.window_series("lat", "").unwrap();
        assert_eq!((w0[0].index, w0[0].count), (0, 1));
        let w1 = snap.window_series("lat", "read").unwrap();
        assert_eq!((w1[0].index, w1[0].count), (2, 2));
        assert!((w1[0].sum - 0.060).abs() < 1e-12);
        assert!(snap.window_series("lat", "missing").is_none());
    }

    #[test]
    fn exemplars_keep_the_minimum_trace_id_per_bucket() {
        let tel = Telemetry::with_manual_clock();
        // Same bucket, different traces: min wins regardless of order.
        tel.observe_traced("lat", "", 0.010, 900);
        tel.observe_traced("lat", "", 0.010, 7);
        tel.observe_traced("lat", "", 0.010, 55);
        // A different bucket keeps its own exemplar.
        tel.observe_traced("lat", "", 100.0, 3);
        // Non-finite samples never produce exemplars.
        tel.observe_traced("lat", "", f64::NAN, 1);
        let snap = tel.snapshot();
        let ex = snap.exemplar("lat", "").unwrap();
        assert_eq!(ex.len(), 2);
        assert!(ex.iter().any(|&(_, t)| t == 7));
        assert!(ex.iter().any(|&(_, t)| t == 3));
        assert!(!ex.iter().any(|&(_, t)| t == 1));
    }

    #[test]
    fn slo_counts_only_its_registered_series() {
        let tel = Telemetry::with_manual_clock();
        tel.set_slo("lat", "", 0.050, 0.99);
        tel.observe("lat", 0.010);
        tel.observe("lat", 0.500); // violation
        tel.observe_labeled("lat", "other", 9.0); // different series: ignored
        let snap = tel.snapshot();
        let slo = snap.slo("lat", "").unwrap();
        assert_eq!((slo.total, slo.violations), (2, 1));
        assert!(slo.burn_rate() > 1.0);
        assert!(snap.slo("lat", "other").is_none());
    }

    #[test]
    fn slow_decisions_flow_into_snapshots() {
        let tel = Telemetry::with_manual_clock();
        tel.slow_decision(SlowDecision {
            duration_seconds: 0.2,
            stream_id: 1,
            anchor: 16,
            trace_id: 42,
            stages: vec![("inference", 0.15)],
        });
        let snap = tel.snapshot();
        assert_eq!(snap.slow.len(), 1);
        assert_eq!(snap.slow[0].trace_id, 42);
    }

    #[test]
    fn disabled_recorder_ignores_observability_plane_calls() {
        let tel = Telemetry::disabled();
        tel.observe_labeled("lat", "x", 1.0);
        tel.observe_traced("lat", "x", 1.0, 9);
        tel.set_slo("lat", "x", 0.05, 0.99);
        tel.slow_decision(SlowDecision {
            duration_seconds: 1.0,
            stream_id: 0,
            anchor: 0,
            trace_id: 0,
            stages: Vec::new(),
        });
        let snap = tel.snapshot();
        assert!(snap.windows.is_empty());
        assert!(snap.exemplars.is_empty());
        assert!(snap.slos.is_empty());
        assert!(snap.slow.is_empty());
    }
}
