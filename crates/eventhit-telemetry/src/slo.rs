//! Service-level-objective tracking: a latency target plus error-budget
//! burn rate, computed from the same observations that feed histograms.
//!
//! An SLO here is "at least `objective` of samples must land at or under
//! `threshold` seconds". The tracker counts total and violating samples;
//! the *burn rate* is the observed violation fraction divided by the
//! allowed fraction (`1 - objective`): 1.0 means the error budget is
//! being spent exactly as fast as it accrues, above 1.0 the budget is
//! burning down, and 0.0 means no violations at all. Counts are plain
//! integers updated sample-by-sample, so the tracker is deterministic
//! for a given multiset of observations regardless of worker count.

/// Running state of one registered SLO.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloStat {
    /// Latency threshold in seconds a sample must not exceed.
    pub threshold: f64,
    /// Target fraction of compliant samples (e.g. 0.99 for "99% under
    /// threshold").
    pub objective: f64,
    /// Total samples observed against this SLO.
    pub total: u64,
    /// Samples that exceeded the threshold.
    pub violations: u64,
}

impl SloStat {
    /// A fresh tracker with zero samples. Non-finite or out-of-range
    /// inputs are clamped to something sane (threshold ≥ 0, objective in
    /// `[0, 1)` so the error budget is never zero-width).
    pub fn new(threshold: f64, objective: f64) -> Self {
        let threshold = if threshold.is_finite() && threshold > 0.0 {
            threshold
        } else {
            0.0
        };
        let objective = if objective.is_finite() {
            objective.clamp(0.0, 0.999_999)
        } else {
            0.0
        };
        SloStat {
            threshold,
            objective,
            total: 0,
            violations: 0,
        }
    }

    /// Counts one sample against the objective. `NaN` counts as a
    /// violation — an unmeasurable latency is not a compliant one.
    pub fn observe(&mut self, v: f64) {
        self.total += 1;
        if v > self.threshold || v.is_nan() {
            self.violations += 1;
        }
    }

    /// Observed violation fraction (0 when no samples yet).
    pub fn error_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.violations as f64 / self.total as f64
        }
    }

    /// Error-budget burn rate: observed violation fraction over the
    /// allowed fraction `1 - objective`. 1.0 = spending the budget
    /// exactly as it accrues; > 1.0 = burning it down.
    pub fn burn_rate(&self) -> f64 {
        let budget = 1.0 - self.objective;
        self.error_rate() / budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_violations_against_threshold() {
        let mut s = SloStat::new(0.050, 0.99);
        for _ in 0..99 {
            s.observe(0.010);
        }
        s.observe(0.500);
        assert_eq!(s.total, 100);
        assert_eq!(s.violations, 1);
        assert_eq!(s.error_rate(), 0.01);
        // 1% violations against a 1% budget: burning at exactly 1.0.
        assert!((s.burn_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn nan_samples_count_as_violations() {
        let mut s = SloStat::new(0.050, 0.99);
        s.observe(f64::NAN);
        assert_eq!(s.violations, 1);
    }

    #[test]
    fn zero_samples_means_zero_burn() {
        let s = SloStat::new(0.050, 0.99);
        assert_eq!(s.burn_rate(), 0.0);
        assert_eq!(s.error_rate(), 0.0);
    }

    #[test]
    fn degenerate_inputs_are_clamped() {
        let s = SloStat::new(f64::NAN, 1.0);
        assert_eq!(s.threshold, 0.0);
        assert!(s.objective < 1.0);
        let mut s = SloStat::new(0.01, f64::INFINITY);
        s.observe(1.0);
        assert!(s.burn_rate().is_finite());
    }
}
