//! Bounded structured log of the slowest serving decisions.
//!
//! Aggregates (histograms, windows) tell an operator *that* the tail is
//! slow; the slow-decision log tells them *which* decisions were slow and
//! how the time split across stages. The log is bounded to
//! [`SLOW_LOG_CAP`] entries and retains the top-K by a total order over
//! `(duration bits, stream id, anchor, trace id)` — a pure function of
//! the multiset of recorded entries, so the retained set is bit-identical
//! across worker counts and replay runs.

/// Maximum entries the slow-decision log retains.
pub const SLOW_LOG_CAP: usize = 64;

/// One slow-decision record.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowDecision {
    /// End-to-end serving latency of the decision, in clock seconds.
    pub duration_seconds: f64,
    /// Stream the decision belongs to.
    pub stream_id: u32,
    /// Anchor frame index of the decision.
    pub anchor: u64,
    /// Client-assigned trace id of the push that produced it (0 when the
    /// push was untraced).
    pub trace_id: u64,
    /// Per-stage latency breakdown, `(stage name, seconds)`.
    pub stages: Vec<(&'static str, f64)>,
}

impl SlowDecision {
    /// Total order used for retention and export: slower first, ties
    /// broken by stream, anchor, then trace id (all descending) so the
    /// outcome never depends on arrival order.
    fn rank(&self) -> (u64, u32, u64, u64) {
        // Durations are non-negative, so the IEEE-754 bit pattern orders
        // the same way the float does.
        (
            self.duration_seconds.max(0.0).to_bits(),
            self.stream_id,
            self.anchor,
            self.trace_id,
        )
    }
}

/// Bounded top-K log of [`SlowDecision`] entries.
#[derive(Debug, Clone, Default)]
pub struct SlowLog {
    entries: Vec<SlowDecision>,
}

impl SlowLog {
    /// An empty log.
    pub fn new() -> Self {
        SlowLog::default()
    }

    /// Records one decision, keeping only the top [`SLOW_LOG_CAP`]
    /// entries by the deterministic retention order.
    pub fn record(&mut self, entry: SlowDecision) {
        let rank = entry.rank();
        let pos = self
            .entries
            .partition_point(|e| e.rank() > rank || e.rank() == rank);
        self.entries.insert(pos, entry);
        self.entries.truncate(SLOW_LOG_CAP);
    }

    /// Retained entries, slowest first.
    pub fn entries(&self) -> &[SlowDecision] {
        &self.entries
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(duration: f64, stream: u32, anchor: u64, trace: u64) -> SlowDecision {
        SlowDecision {
            duration_seconds: duration,
            stream_id: stream,
            anchor,
            trace_id: trace,
            stages: vec![("inference", duration / 2.0)],
        }
    }

    #[test]
    fn retains_slowest_first() {
        let mut log = SlowLog::new();
        log.record(entry(0.010, 1, 5, 100));
        log.record(entry(0.500, 2, 9, 101));
        log.record(entry(0.050, 3, 1, 102));
        let d: Vec<f64> = log.entries().iter().map(|e| e.duration_seconds).collect();
        assert_eq!(d, vec![0.500, 0.050, 0.010]);
    }

    #[test]
    fn bounded_at_cap() {
        let mut log = SlowLog::new();
        for i in 0..(SLOW_LOG_CAP as u64 + 32) {
            log.record(entry(i as f64 * 1e-3, 0, i, i));
        }
        assert_eq!(log.len(), SLOW_LOG_CAP);
        // The fastest 32 were evicted: the slowest retained entry is the
        // overall slowest, and the quickest retained is entry #32.
        assert_eq!(log.entries()[0].anchor, SLOW_LOG_CAP as u64 + 31);
        assert_eq!(log.entries().last().unwrap().anchor, 32);
    }

    #[test]
    fn retained_set_is_order_insensitive() {
        let mut a = SlowLog::new();
        let mut b = SlowLog::new();
        let mut items: Vec<SlowDecision> = (0..100u64)
            .map(|i| entry((i % 7) as f64 * 1e-3, (i % 3) as u32, i, i))
            .collect();
        for e in &items {
            a.record(e.clone());
        }
        items.reverse();
        for e in &items {
            b.record(e.clone());
        }
        assert_eq!(a.entries(), b.entries());
    }

    #[test]
    fn zero_duration_ties_break_deterministically() {
        // The manual sim clock produces all-zero durations; the log must
        // still retain a deterministic set.
        let mut log = SlowLog::new();
        for i in 0..(SLOW_LOG_CAP as u64 * 2) {
            log.record(entry(0.0, (i % 4) as u32, i / 4, i));
        }
        assert_eq!(log.len(), SLOW_LOG_CAP);
        let first = log.entries()[0].clone();
        assert_eq!(first.stream_id, 3, "highest stream id ranks first on ties");
    }
}
