//! Snapshot, export, fingerprint, and rendered dashboards.
//!
//! A [`TelemetrySnapshot`] is a frozen copy of everything a recorder has
//! seen. It serialises to JSONL in a canonical order (meta line, then
//! counters, gauges, histograms, exemplars, windowed series, and SLO
//! trackers sorted by `(name, label)`, then slow-decision entries in
//! retention order, then spans in trace order), and the run fingerprint
//! is FNV-1a over those exact bytes — so two runs fingerprint equal iff
//! their telemetry is bit-identical.

use crate::clock::ClockKind;
use crate::hist::LogHistogram;
use crate::registry::{GaugeStat, SpanRecord};
use crate::slo::SloStat;
use crate::slowlog::SlowDecision;
use crate::window::WindowStat;

/// FNV-1a over a byte stream — the same fingerprinting primitive the
/// fault-injection trace uses, kept dependency-free on purpose.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The reflected CRC-32 lookup table for polynomial `0xEDB88320`
/// (IEEE 802.3), built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3, reflected, init/xorout `0xFFFFFFFF`) over a byte
/// stream — the workspace's corruption-detection checksum, used by the
/// durable event log and the model-persistence format. Distinct from
/// [`fnv1a`], which fingerprints for identity, this detects accidental
/// bit damage in data at rest.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Aggregated statistics for one span path (`"marshal.run/ci.submit"`).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// Slash-joined ancestry, unique per tree position.
    pub path: String,
    /// Leaf span name.
    pub name: &'static str,
    /// Nesting depth (roots are 0).
    pub depth: usize,
    /// Number of span records aggregated into this path.
    pub calls: u64,
    /// Total seconds across all calls.
    pub total: f64,
    /// Seconds not attributed to child spans.
    pub self_time: f64,
}

/// `(bucket index, minimum trace id)` exemplar pairs for one labeled
/// histogram, sorted by bucket index.
pub type ExemplarBuckets = Vec<(usize, u64)>;

/// A frozen copy of a recorder's state. Produced by
/// [`crate::Telemetry::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Clock the recorder was running on.
    pub clock: ClockKind,
    /// `(name, label, value)` sorted by `(name, label)`.
    pub counters: Vec<(String, String, u64)>,
    /// `(name, label, stat)` sorted by `(name, label)`.
    pub gauges: Vec<(String, String, GaugeStat)>,
    /// `(name, label, histogram)` sorted by `(name, label)`.
    pub histograms: Vec<(String, String, LogHistogram)>,
    /// Width in clock seconds of the time-series windows below.
    pub window_secs: f64,
    /// `(name, label, per-window stats)` sorted by `(name, label)` —
    /// the windowed time-series ring behind every observed histogram.
    pub windows: Vec<(String, String, Vec<WindowStat>)>,
    /// `(name, label, (bucket index, trace id) exemplars)` sorted by
    /// `(name, label)`; each bucket remembers the minimum trace id seen.
    pub exemplars: Vec<(String, String, ExemplarBuckets)>,
    /// `(name, label, SLO state)` sorted by `(name, label)`.
    pub slos: Vec<(String, String, SloStat)>,
    /// Retained slow-decision log entries, slowest first.
    pub slow: Vec<SlowDecision>,
    /// Closed spans in trace order.
    pub spans: Vec<SpanRecord>,
    /// Spans still open when the snapshot was taken (not exported).
    pub open_spans: usize,
    /// Spans discarded after the trace buffer filled.
    pub dropped_spans: u64,
}

impl TelemetrySnapshot {
    /// Value of the unlabeled counter `name`.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counter_labeled(name, "")
    }

    /// Value of the `label` series of counter `name`.
    pub fn counter_labeled(&self, name: &str, label: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, l, _)| n == name && l == label)
            .map(|&(_, _, v)| v)
    }

    /// Sum of counter `name` across all labels (0 if absent).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(n, _, _)| n == name)
            .map(|&(_, _, v)| v)
            .sum()
    }

    /// Stat of the gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<GaugeStat> {
        self.gauges
            .iter()
            .find(|(n, l, _)| n == name && l.is_empty())
            .map(|&(_, _, g)| g)
    }

    /// The histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms
            .iter()
            .find(|(n, l, _)| n == name && l.is_empty())
            .map(|(_, _, h)| h)
    }

    /// The windowed time-series for the `label` series of `name`.
    pub fn window_series(&self, name: &str, label: &str) -> Option<&[WindowStat]> {
        self.windows
            .iter()
            .find(|(n, l, _)| n == name && l == label)
            .map(|(_, _, w)| w.as_slice())
    }

    /// The `(bucket index, trace id)` exemplars of the `label` series of
    /// `name`.
    pub fn exemplar(&self, name: &str, label: &str) -> Option<&[(usize, u64)]> {
        self.exemplars
            .iter()
            .find(|(n, l, _)| n == name && l == label)
            .map(|(_, _, e)| e.as_slice())
    }

    /// The SLO state registered on the `label` series of `name`.
    pub fn slo(&self, name: &str, label: &str) -> Option<SloStat> {
        self.slos
            .iter()
            .find(|(n, l, _)| n == name && l == label)
            .map(|&(_, _, s)| s)
    }

    /// Canonical JSONL export: one `meta` line, then counters, gauges,
    /// histograms, exemplars, windowed series, and SLO trackers (each
    /// sorted by name/label), then slow-decision entries in retention
    /// order, then spans in trace order. Floats use Rust's
    /// shortest-roundtrip `Display`, so the bytes are a deterministic
    /// function of the recorded values.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"type\":\"meta\",\"clock\":\"{}\",\"open_spans\":{},\"dropped_spans\":{}}}\n",
            match self.clock {
                ClockKind::Wall => "wall",
                ClockKind::Manual => "manual",
            },
            self.open_spans,
            self.dropped_spans
        ));
        for (name, label, value) in &self.counters {
            out.push_str(&format!(
                "{{\"type\":\"counter\",\"name\":{},\"label\":{},\"value\":{}}}\n",
                json_str(name),
                json_str(label),
                value
            ));
        }
        for (name, label, g) in &self.gauges {
            out.push_str(&format!(
                "{{\"type\":\"gauge\",\"name\":{},\"label\":{},\"last\":{},\"min\":{},\"max\":{},\"samples\":{}}}\n",
                json_str(name),
                json_str(label),
                json_f64(g.last),
                json_f64(g.min),
                json_f64(g.max),
                g.samples
            ));
        }
        for (name, label, h) in &self.histograms {
            let buckets: Vec<String> = h
                .nonzero_buckets()
                .iter()
                .map(|&(i, c)| format!("[{i},{c}]"))
                .collect();
            out.push_str(&format!(
                "{{\"type\":\"hist\",\"name\":{},\"label\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{}]}}\n",
                json_str(name),
                json_str(label),
                h.count(),
                json_f64(h.sum()),
                opt_f64(h.min()),
                opt_f64(h.max()),
                buckets.join(",")
            ));
        }
        for (name, label, ex) in &self.exemplars {
            let pairs: Vec<String> = ex.iter().map(|&(b, t)| format!("[{b},{t}]")).collect();
            out.push_str(&format!(
                "{{\"type\":\"exemplar\",\"name\":{},\"label\":{},\"buckets\":[{}]}}\n",
                json_str(name),
                json_str(label),
                pairs.join(",")
            ));
        }
        for (name, label, windows) in &self.windows {
            let ws: Vec<String> = windows
                .iter()
                .map(|w| {
                    format!(
                        "[{},{},{},{},{}]",
                        w.index,
                        w.count,
                        json_f64(w.sum),
                        json_f64(w.p50),
                        json_f64(w.p99)
                    )
                })
                .collect();
            out.push_str(&format!(
                "{{\"type\":\"window\",\"name\":{},\"label\":{},\"window_secs\":{},\"windows\":[{}]}}\n",
                json_str(name),
                json_str(label),
                json_f64(self.window_secs),
                ws.join(",")
            ));
        }
        for (name, label, s) in &self.slos {
            out.push_str(&format!(
                "{{\"type\":\"slo\",\"name\":{},\"label\":{},\"threshold\":{},\"objective\":{},\"total\":{},\"violations\":{},\"burn_rate\":{}}}\n",
                json_str(name),
                json_str(label),
                json_f64(s.threshold),
                json_f64(s.objective),
                s.total,
                s.violations,
                json_f64(s.burn_rate())
            ));
        }
        out.push_str(&self.slow_jsonl());
        for s in &self.spans {
            let parent = match s.parent {
                Some(p) => p.to_string(),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"name\":{},\"start\":{},\"end\":{}}}\n",
                s.id,
                parent,
                json_str(s.name),
                json_f64(s.start),
                json_f64(s.end)
            ));
        }
        out
    }

    /// Just the `"slow"` lines of [`TelemetrySnapshot::to_jsonl`]: one
    /// JSON object per retained slow decision, slowest first. The serve
    /// frontend uses this to export a standalone slow-decision log file.
    pub fn slow_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.slow {
            let stages: Vec<String> = e
                .stages
                .iter()
                .map(|(n, v)| format!("[{},{}]", json_str(n), json_f64(*v)))
                .collect();
            out.push_str(&format!(
                "{{\"type\":\"slow\",\"duration\":{},\"stream\":{},\"anchor\":{},\"trace\":{},\"stages\":[{}]}}\n",
                json_f64(e.duration_seconds),
                e.stream_id,
                e.anchor,
                e.trace_id,
                stages.join(",")
            ));
        }
        out
    }

    /// FNV-1a over the canonical JSONL bytes. Equal fingerprints ⇔
    /// bit-identical telemetry.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(self.to_jsonl().as_bytes())
    }

    /// Spans aggregated by tree path, sorted by path (which is pre-order
    /// when sibling names differ). `self_time` is each record's duration
    /// minus its direct children's durations.
    pub fn span_stats(&self) -> Vec<SpanStat> {
        use std::collections::BTreeMap;
        let n = self.spans.len();
        // Trace order guarantees parents precede children, so one forward
        // pass can build paths and a backward attribution can subtract
        // child time.
        let mut paths: Vec<String> = Vec::with_capacity(n);
        let mut depths: Vec<usize> = Vec::with_capacity(n);
        let mut index_of = BTreeMap::new();
        for (i, s) in self.spans.iter().enumerate() {
            index_of.insert(s.id, i);
            match s.parent.and_then(|p| index_of.get(&p).copied()) {
                Some(pi) => {
                    paths.push(format!("{}/{}", paths[pi], s.name));
                    depths.push(depths[pi] + 1);
                }
                None => {
                    paths.push(s.name.to_string());
                    depths.push(0);
                }
            }
            let _ = i;
        }
        let mut child_time = vec![0.0f64; n];
        for (i, s) in self.spans.iter().enumerate() {
            if let Some(pi) = s.parent.and_then(|p| index_of.get(&p).copied()) {
                child_time[pi] += s.duration();
            }
            let _ = i;
        }
        let mut agg: BTreeMap<String, SpanStat> = BTreeMap::new();
        for (i, s) in self.spans.iter().enumerate() {
            let dur = s.duration();
            let stat = agg.entry(paths[i].clone()).or_insert(SpanStat {
                path: paths[i].clone(),
                name: s.name,
                depth: depths[i],
                calls: 0,
                total: 0.0,
                self_time: 0.0,
            });
            stat.calls += 1;
            stat.total += dur;
            stat.self_time += (dur - child_time[i]).max(0.0);
        }
        agg.into_values().collect()
    }

    /// The `n` span paths with the largest aggregate self-time,
    /// descending (ties broken by path for determinism).
    pub fn top_spans_by_self_time(&self, n: usize) -> Vec<SpanStat> {
        let mut stats = self.span_stats();
        stats.sort_by(|a, b| {
            b.self_time
                .partial_cmp(&a.self_time)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.path.cmp(&b.path))
        });
        stats.truncate(n);
        stats
    }

    /// A text flamegraph: one line per span path, indented by depth, with
    /// a bar proportional to total time.
    pub fn flamegraph(&self) -> String {
        let stats = self.span_stats();
        let scale = stats
            .iter()
            .map(|s| s.total)
            .fold(0.0f64, f64::max)
            .max(f64::MIN_POSITIVE);
        let label_w = stats
            .iter()
            .map(|s| 2 * s.depth + s.name.len())
            .max()
            .unwrap_or(0)
            .max(12);
        let mut out = String::new();
        for s in &stats {
            let bar_len = ((s.total / scale) * 30.0).round() as usize;
            out.push_str(&format!(
                "{:indent$}{:<width$}  {:>9}  x{:<5} {}\n",
                "",
                s.name,
                fmt_secs(s.total),
                s.calls,
                "#".repeat(bar_len.max(1)),
                indent = 2 * s.depth,
                width = label_w - 2 * s.depth
            ));
        }
        out
    }

    /// The full run dashboard: counters, gauges, histogram quantiles, top
    /// spans by self-time, and the flamegraph. Pure text, fixed layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== telemetry dashboard ==\n");
        out.push_str(&format!(
            "clock: {:?}  spans: {} closed / {} open / {} dropped\n",
            self.clock,
            self.spans.len(),
            self.open_spans,
            self.dropped_spans
        ));
        if !self.counters.is_empty() {
            out.push_str("\n-- counters --\n");
            let w = self
                .counters
                .iter()
                .map(|(n, l, _)| display_key(n, l).len())
                .max()
                .unwrap_or(0);
            for (name, label, value) in &self.counters {
                out.push_str(&format!("  {:<w$}  {}\n", display_key(name, label), value));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("\n-- gauges --\n");
            let w = self
                .gauges
                .iter()
                .map(|(n, l, _)| display_key(n, l).len())
                .max()
                .unwrap_or(0);
            for (name, label, g) in &self.gauges {
                out.push_str(&format!(
                    "  {:<w$}  last={} min={} max={} n={}\n",
                    display_key(name, label),
                    fmt_f64(g.last),
                    fmt_f64(g.min),
                    fmt_f64(g.max),
                    g.samples
                ));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("\n-- histograms --\n");
            let w = self
                .histograms
                .iter()
                .map(|(n, l, _)| display_key(n, l).len())
                .max()
                .unwrap_or(0);
            for (name, label, h) in &self.histograms {
                if let Some((p50, p95, p99)) = h.percentiles() {
                    out.push_str(&format!(
                        "  {:<w$}  n={} mean={} p50={} p95={} p99={} max={}\n",
                        display_key(name, label),
                        h.count(),
                        fmt_secs(h.mean().unwrap_or(0.0)),
                        fmt_secs(p50),
                        fmt_secs(p95),
                        fmt_secs(p99),
                        fmt_secs(h.max().unwrap_or(0.0))
                    ));
                } else {
                    out.push_str(&format!("  {:<w$}  (empty)\n", display_key(name, label)));
                }
            }
        }
        if !self.spans.is_empty() {
            out.push_str("\n-- top spans by self-time --\n");
            for s in self.top_spans_by_self_time(5) {
                out.push_str(&format!(
                    "  {:<30}  self={:>9}  total={:>9}  x{}\n",
                    s.path,
                    fmt_secs(s.self_time),
                    fmt_secs(s.total),
                    s.calls
                ));
            }
            out.push_str("\n-- flamegraph --\n");
            out.push_str(&self.flamegraph());
        }
        out
    }
}

fn display_key(name: &str, label: &str) -> String {
    if label.is_empty() {
        name.to_string()
    } else {
        format!("{name}{{{label}}}")
    }
}

/// JSON string literal with the escapes our metric names can need.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Shortest-roundtrip float, with non-finite values mapped to `null`
/// (JSON has no NaN/inf).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn opt_f64(v: Option<f64>) -> String {
    match v {
        Some(v) => json_f64(v),
        None => "null".to_string(),
    }
}

/// Human-friendly seconds for dashboards (not part of the canonical
/// export, so rounding here cannot affect fingerprints).
fn fmt_secs(v: f64) -> String {
    if !v.is_finite() {
        "n/a".to_string()
    } else if v == 0.0 {
        "0s".to_string()
    } else if v < 1e-3 {
        format!("{:.1}us", v * 1e6)
    } else if v < 1.0 {
        format!("{:.2}ms", v * 1e3)
    } else {
        format!("{:.3}s", v)
    }
}

fn fmt_f64(v: f64) -> String {
    if v.abs() >= 1e4 || (v != 0.0 && v.abs() < 1e-3) {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Telemetry;

    fn sample_snapshot() -> TelemetrySnapshot {
        let tel = Telemetry::with_manual_clock();
        tel.set_time(0.0);
        {
            let _run = tel.span("run");
            tel.add("frames", 10);
            tel.add_labeled("faults", "outage", 2);
            tel.gauge_set("depth", 3.0);
            tel.observe("latency_seconds", 0.25);
            tel.observe("latency_seconds", 0.5);
            tel.set_time(1.0);
            {
                let _step = tel.span("run.step");
                tel.set_time(4.0);
            }
            tel.set_time(5.0);
        }
        tel.snapshot()
    }

    #[test]
    fn fnv1a_matches_reference_values() {
        // Classic FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn crc32_matches_reference_values() {
        // The canonical CRC-32/IEEE check value plus a few spot checks.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn jsonl_is_canonical_and_fingerprint_stable() {
        let a = sample_snapshot();
        let b = sample_snapshot();
        assert_eq!(a.to_jsonl(), b.to_jsonl());
        assert_eq!(a.fingerprint(), b.fingerprint());
        let jsonl = a.to_jsonl();
        assert!(jsonl.starts_with("{\"type\":\"meta\",\"clock\":\"manual\""));
        assert!(jsonl
            .contains("\"type\":\"counter\",\"name\":\"faults\",\"label\":\"outage\",\"value\":2"));
        assert!(jsonl.contains(
            "\"type\":\"span\",\"id\":1,\"parent\":0,\"name\":\"run.step\",\"start\":1,\"end\":4"
        ));
        // Every line parses as a flat JSON object shape (cheap sanity:
        // balanced braces, no raw newlines inside).
        for line in jsonl.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn fingerprint_changes_with_content() {
        let a = sample_snapshot();
        let tel = Telemetry::with_manual_clock();
        tel.add("frames", 11);
        assert_ne!(a.fingerprint(), tel.snapshot().fingerprint());
    }

    #[test]
    fn span_stats_compute_self_time() {
        let snap = sample_snapshot();
        let stats = snap.span_stats();
        assert_eq!(stats.len(), 2);
        let run = stats.iter().find(|s| s.path == "run").unwrap();
        let step = stats.iter().find(|s| s.path == "run/run.step").unwrap();
        assert_eq!(run.total, 5.0);
        assert_eq!(step.total, 3.0);
        assert_eq!(run.self_time, 2.0);
        assert_eq!(step.self_time, 3.0);
        assert_eq!(step.depth, 1);
        let top = snap.top_spans_by_self_time(1);
        assert_eq!(top[0].path, "run/run.step");
    }

    #[test]
    fn render_mentions_all_sections() {
        let out = sample_snapshot().render();
        for needle in [
            "telemetry dashboard",
            "counters",
            "gauges",
            "histograms",
            "top spans by self-time",
            "flamegraph",
            "faults{outage}",
            "latency_seconds",
        ] {
            assert!(out.contains(needle), "missing {needle:?} in:\n{out}");
        }
    }

    #[test]
    fn json_str_escapes() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn observability_plane_lines_are_exported() {
        let tel = Telemetry::with_manual_clock();
        tel.set_slo("latency_seconds", "", 0.3, 0.99);
        tel.observe_traced("latency_seconds", "", 0.25, 41);
        tel.observe_traced("latency_seconds", "", 0.5, 40);
        tel.slow_decision(crate::slowlog::SlowDecision {
            duration_seconds: 0.5,
            stream_id: 2,
            anchor: 8,
            trace_id: 40,
            stages: vec![("inference", 0.4)],
        });
        let jsonl = tel.snapshot().to_jsonl();
        assert!(jsonl.contains("\"type\":\"exemplar\",\"name\":\"latency_seconds\""));
        assert!(jsonl.contains("\"type\":\"window\",\"name\":\"latency_seconds\""));
        assert!(jsonl.contains(
            "\"type\":\"slo\",\"name\":\"latency_seconds\",\"label\":\"\",\"threshold\":0.3,\
             \"objective\":0.99,\"total\":2,\"violations\":1"
        ));
        assert!(jsonl
            .contains("\"type\":\"slow\",\"duration\":0.5,\"stream\":2,\"anchor\":8,\"trace\":40"));
        assert!(jsonl.contains("[\"inference\",0.4]"));
        // Fingerprint covers the new sections: same inputs, same bytes.
        let again = {
            let t = Telemetry::with_manual_clock();
            t.set_slo("latency_seconds", "", 0.3, 0.99);
            t.observe_traced("latency_seconds", "", 0.25, 41);
            t.observe_traced("latency_seconds", "", 0.5, 40);
            t.slow_decision(crate::slowlog::SlowDecision {
                duration_seconds: 0.5,
                stream_id: 2,
                anchor: 8,
                trace_id: 40,
                stages: vec![("inference", 0.4)],
            });
            t.snapshot()
        };
        assert_eq!(tel.snapshot().fingerprint(), again.fingerprint());
    }
}
