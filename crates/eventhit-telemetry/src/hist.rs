//! HDR-style log-bucketed histogram with fixed, deterministic bucket
//! boundaries.
//!
//! Buckets are derived from the IEEE-754 representation of the recorded
//! value: the binary exponent selects an octave and the top two mantissa
//! bits split each octave into four sub-buckets, giving a worst-case
//! relative error of 12.5% per bucket. Because bucketing is pure bit
//! manipulation (no `ln`/`log2` calls), the same inputs always land in
//! the same buckets on every platform, and quantiles — nearest-rank over
//! bucket counts, reported as the bucket midpoint clamped to the observed
//! `[min, max]` — are bit-deterministic.

/// Lowest binary exponent with its own octave (values below land in the
/// first positive bucket). `2^-30 ≈ 0.93 ns` — far below any latency the
/// workspace measures.
const E_MIN: i32 = -30;
/// Highest binary exponent with its own octave (values above land in the
/// last bucket). `2^33 ≈ 8.6e9 s` — far above any simulated horizon.
const E_MAX: i32 = 33;
/// Sub-buckets per octave (top two mantissa bits).
const SUBS: usize = 4;
/// Bucket 0 holds exact zeros (and clamped negatives); the rest cover
/// `[2^E_MIN, 2^(E_MAX+1))` in quarter-octave steps.
pub const NUM_BUCKETS: usize = 1 + (E_MAX - E_MIN + 1) as usize * SUBS;

/// A fixed-boundary log-bucketed histogram of non-negative `f64` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The bucket index a value falls into. Negative values clamp into
    /// the zero bucket; out-of-range magnitudes clamp into the first or
    /// last positive bucket. Returns `None` for non-finite values, which
    /// are never recorded.
    pub fn bucket_index(v: f64) -> Option<usize> {
        if !v.is_finite() {
            return None;
        }
        if v <= 0.0 {
            return Some(0);
        }
        let bits = v.to_bits();
        let biased = ((bits >> 52) & 0x7FF) as i32;
        if biased == 0 {
            // Subnormal: below 2^E_MIN by construction.
            return Some(1);
        }
        let e = biased - 1023;
        if e < E_MIN {
            return Some(1);
        }
        if e > E_MAX {
            return Some(NUM_BUCKETS - 1);
        }
        let m = ((bits >> 50) & 0x3) as usize;
        Some(1 + (e - E_MIN) as usize * SUBS + m)
    }

    /// The `[lo, hi)` boundaries of bucket `idx`. Bucket 0 is the
    /// degenerate `[0, 0]`.
    pub fn bucket_bounds(idx: usize) -> (f64, f64) {
        assert!(idx < NUM_BUCKETS, "bucket {idx} out of range");
        if idx == 0 {
            return (0.0, 0.0);
        }
        let k = idx - 1;
        let e = E_MIN + (k / SUBS) as i32;
        let m = (k % SUBS) as f64;
        let base = 2.0f64.powi(e);
        (base * (1.0 + m * 0.25), base * (1.0 + (m + 1.0) * 0.25))
    }

    /// The representative (midpoint) value of bucket `idx`, used when a
    /// quantile lands in it.
    pub fn bucket_midpoint(idx: usize) -> f64 {
        let (lo, hi) = Self::bucket_bounds(idx);
        lo + (hi - lo) * 0.5
    }

    /// Records one sample. Non-finite samples are ignored.
    pub fn observe(&mut self, v: f64) {
        let Some(idx) = Self::bucket_index(v) else {
            return;
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest recorded sample; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded samples; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Nearest-rank quantile (`q` clamped into `[0, 1]`): the midpoint of
    /// the bucket holding the `⌈q·n⌉`-th sample, clamped to the observed
    /// `[min, max]` so degenerate shapes (single sample, all-equal
    /// samples, extreme quantiles) report exact values. `None` when
    /// empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_midpoint(idx).clamp(self.min, self.max));
            }
        }
        unreachable!("rank {rank} beyond {} recorded samples", self.count)
    }

    /// `(p50, p95, p99)`; `None` when empty.
    pub fn percentiles(&self) -> Option<(f64, f64, f64)> {
        Some((
            self.quantile(0.50)?,
            self.quantile(0.95)?,
            self.quantile(0.99)?,
        ))
    }

    /// The non-empty buckets as `(index, count)`, in index order —
    /// compact form for export.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_tile_the_range() {
        // Consecutive buckets must be contiguous: hi of k == lo of k+1.
        for idx in 1..NUM_BUCKETS - 1 {
            let (_, hi) = LogHistogram::bucket_bounds(idx);
            let (lo_next, _) = LogHistogram::bucket_bounds(idx + 1);
            assert_eq!(hi, lo_next, "gap between buckets {idx} and {}", idx + 1);
        }
    }

    #[test]
    fn bucket_index_matches_bounds() {
        // Every probe value must land in a bucket whose bounds contain it.
        for &v in &[1e-9, 0.001, 0.5, 1.0, 1.5, 2.0, 3.0, 100.0, 1e6, 8e9] {
            let idx = LogHistogram::bucket_index(v).unwrap();
            let (lo, hi) = LogHistogram::bucket_bounds(idx);
            assert!(
                lo <= v && v < hi,
                "{v} outside [{lo}, {hi}) of bucket {idx}"
            );
        }
    }

    #[test]
    fn zero_negative_and_nonfinite_edges() {
        assert_eq!(LogHistogram::bucket_index(0.0), Some(0));
        assert_eq!(LogHistogram::bucket_index(-3.0), Some(0));
        assert_eq!(LogHistogram::bucket_index(f64::MIN_POSITIVE / 2.0), Some(1));
        assert_eq!(LogHistogram::bucket_index(1e-40), Some(1));
        assert_eq!(LogHistogram::bucket_index(f64::MAX), Some(NUM_BUCKETS - 1));
        assert_eq!(LogHistogram::bucket_index(f64::NAN), None);
        assert_eq!(LogHistogram::bucket_index(f64::INFINITY), None);

        let mut h = LogHistogram::new();
        h.observe(f64::NAN);
        assert_eq!(h.count(), 0, "NaN is dropped");
        h.observe(0.0);
        assert_eq!(h.quantile(0.5), Some(0.0));
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let mut h = LogHistogram::new();
        h.observe(0.7);
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(h.quantile(q), Some(0.7), "q={q}");
        }
        assert_eq!(h.mean(), Some(0.7));
        assert_eq!(h.min(), Some(0.7));
        assert_eq!(h.max(), Some(0.7));
    }

    #[test]
    fn golden_quantiles_uniform_1_to_100() {
        // 1..=100 in seconds: p50 lands in the bucket of 50 = 2^5 * 1.5625
        // → octave e=5, m=2 covers [48, 56), midpoint 52; p95 lands in the
        // bucket of 95 → e=6, m=1 covers [80, 96), midpoint 88; p99 in the
        // bucket of 99 → e=6, m=2 covers [96, 112), midpoint 104 clamped
        // to the observed max 100.
        let mut h = LogHistogram::new();
        for v in 1..=100 {
            h.observe(v as f64);
        }
        assert_eq!(h.quantile(0.50), Some(52.0));
        assert_eq!(h.quantile(0.95), Some(88.0));
        assert_eq!(h.quantile(0.99), Some(100.0));
        assert_eq!(h.mean(), Some(50.5));
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut h = LogHistogram::new();
        let mut x = 0.37f64;
        for _ in 0..1000 {
            // A deterministic scatter over several decades.
            x = (x * 4.0).fract() + 0.01;
            h.observe(x * x * 100.0);
        }
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = h.quantile(q).unwrap();
            assert!(v >= prev, "quantile not monotone at q={q}");
            prev = v;
        }
    }

    #[test]
    fn quantile_error_is_bounded_by_bucket_width() {
        // Relative error of any quantile is at most half a bucket width
        // (12.5%), checked against exact nearest-rank on the raw samples.
        let samples: Vec<f64> = (1..=500).map(|i| (i as f64) * 0.013).collect();
        let mut h = LogHistogram::new();
        for &s in &samples {
            h.observe(s);
        }
        for q in [0.1, 0.5, 0.9, 0.95, 0.99] {
            let exact = samples[((q * 500.0f64).ceil() as usize).clamp(1, 500) - 1];
            let approx = h.quantile(q).unwrap();
            assert!(
                (approx - exact).abs() / exact <= 0.125,
                "q={q}: approx {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn nonzero_buckets_round_trip_counts() {
        let mut h = LogHistogram::new();
        for v in [0.0, 0.0, 1.0, 1.0, 1.0, 900.0] {
            h.observe(v);
        }
        let nz = h.nonzero_buckets();
        assert_eq!(nz.iter().map(|&(_, c)| c).sum::<u64>(), h.count());
        assert_eq!(nz[0], (0, 2), "two zeros in the zero bucket");
    }
}
