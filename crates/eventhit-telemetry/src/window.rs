//! Windowed time-series ring buffers: per-window rate and quantiles for
//! every observed metric.
//!
//! The cumulative [`LogHistogram`] answers "what happened over the whole
//! run"; operators watching a live server need "what is happening *now*".
//! A [`WindowedSeries`] splits the recorder's clock into fixed-width
//! windows and keeps one log-bucketed histogram per window in a bounded
//! ring, so a remote dashboard can read per-window sample counts (rates)
//! and p50/p99 without the server retaining raw samples.
//!
//! Determinism: the window an observation lands in is a pure function of
//! the recorder's clock reading, so under the manual sim clock (where
//! time only moves via `set_time`) the whole series is bit-reproducible —
//! with an unmoved clock every sample lands in window 0.

use std::collections::VecDeque;

use crate::hist::LogHistogram;

/// Maximum windows a series retains; older windows are evicted.
pub const MAX_WINDOWS: usize = 64;

/// Default window width in (clock) seconds.
pub const DEFAULT_WINDOW_SECS: f64 = 1.0;

/// Per-window summary exported to dashboards and the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStat {
    /// Window index: `floor(clock_seconds / window_secs)`.
    pub index: u64,
    /// Samples observed in the window.
    pub count: u64,
    /// Sum of the observed values in the window.
    pub sum: f64,
    /// Median of the window's samples (0 when empty).
    pub p50: f64,
    /// 99th percentile of the window's samples (0 when empty).
    pub p99: f64,
}

/// A bounded ring of per-window histograms for one metric.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedSeries {
    window_secs: f64,
    windows: VecDeque<(u64, LogHistogram)>,
}

impl WindowedSeries {
    /// An empty series with `window_secs`-wide windows (values ≤ 0 fall
    /// back to [`DEFAULT_WINDOW_SECS`]).
    pub fn new(window_secs: f64) -> Self {
        let window_secs = if window_secs.is_finite() && window_secs > 0.0 {
            window_secs
        } else {
            DEFAULT_WINDOW_SECS
        };
        WindowedSeries {
            window_secs,
            windows: VecDeque::new(),
        }
    }

    /// The configured window width in seconds.
    pub fn window_secs(&self) -> f64 {
        self.window_secs
    }

    /// The window index a clock reading falls into.
    pub fn index_of(&self, now: f64) -> u64 {
        if !now.is_finite() || now <= 0.0 {
            return 0;
        }
        (now / self.window_secs) as u64
    }

    /// Records one sample at clock reading `now`. A reading behind the
    /// newest window clamps into the matching (or oldest retained)
    /// window, so a rewound manual clock can never panic or allocate.
    pub fn observe(&mut self, now: f64, v: f64) {
        let idx = self.index_of(now);
        match self.windows.back() {
            None => self.windows.push_back((idx, LogHistogram::new())),
            Some(&(newest, _)) if idx > newest => {
                self.windows.push_back((idx, LogHistogram::new()));
                while self.windows.len() > MAX_WINDOWS {
                    self.windows.pop_front();
                }
            }
            _ => {}
        }
        let slot = match self.windows.iter_mut().rev().find(|(i, _)| *i <= idx) {
            Some((_, h)) => h,
            // Older than everything retained: fold into the oldest.
            None => &mut self.windows.front_mut().expect("ring is non-empty").1,
        };
        slot.observe(v);
    }

    /// Per-window summaries, oldest first.
    pub fn stats(&self) -> Vec<WindowStat> {
        self.windows
            .iter()
            .map(|(index, h)| WindowStat {
                index: *index,
                count: h.count(),
                sum: h.sum(),
                p50: h.quantile(0.50).unwrap_or(0.0),
                p99: h.quantile(0.99).unwrap_or(0.0),
            })
            .collect()
    }

    /// The newest window's summary, if any sample was ever observed.
    pub fn latest(&self) -> Option<WindowStat> {
        self.stats().pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_their_clock_window() {
        let mut s = WindowedSeries::new(1.0);
        s.observe(0.2, 1.0);
        s.observe(0.9, 3.0);
        s.observe(2.5, 5.0); // window 1 is skipped entirely
        let stats = s.stats();
        assert_eq!(stats.len(), 2);
        assert_eq!((stats[0].index, stats[0].count), (0, 2));
        assert_eq!(stats[0].sum, 4.0);
        assert_eq!((stats[1].index, stats[1].count), (2, 1));
        assert_eq!(s.latest().unwrap().index, 2);
    }

    #[test]
    fn unmoved_clock_keeps_everything_in_window_zero() {
        let mut s = WindowedSeries::new(1.0);
        for i in 0..100 {
            s.observe(0.0, i as f64);
        }
        let stats = s.stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].count, 100);
    }

    #[test]
    fn ring_is_bounded_and_evicts_oldest() {
        let mut s = WindowedSeries::new(1.0);
        for w in 0..(MAX_WINDOWS + 10) {
            s.observe(w as f64 + 0.5, 1.0);
        }
        let stats = s.stats();
        assert_eq!(stats.len(), MAX_WINDOWS);
        assert_eq!(stats[0].index, 10, "oldest ten windows evicted");
    }

    #[test]
    fn rewound_clock_clamps_instead_of_allocating() {
        let mut s = WindowedSeries::new(1.0);
        s.observe(5.0, 1.0);
        s.observe(2.0, 9.0); // behind every retained window
        let stats = s.stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].count, 2);
    }

    #[test]
    fn quantiles_summarize_each_window() {
        let mut s = WindowedSeries::new(10.0);
        for v in 1..=100 {
            s.observe(0.0, v as f64);
        }
        let w = s.latest().unwrap();
        assert_eq!(w.p50, 52.0); // bucket midpoint, same as LogHistogram
        assert_eq!(w.p99, 100.0);
    }

    #[test]
    fn degenerate_window_width_falls_back_to_default() {
        let s = WindowedSeries::new(0.0);
        assert_eq!(s.window_secs(), DEFAULT_WINDOW_SECS);
        let s = WindowedSeries::new(f64::NAN);
        assert_eq!(s.window_secs(), DEFAULT_WINDOW_SECS);
    }
}
