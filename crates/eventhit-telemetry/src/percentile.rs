//! Nearest-rank percentiles over exact sample sets.
//!
//! The single source of truth for the `⌈q·n⌉`-th order statistic used by
//! the queue simulator, the resilience stats, and the telemetry
//! snapshot — previously copy-pasted inline at each site.

/// Nearest-rank percentile of an **ascending-sorted** slice: the
/// `⌈q·n⌉`-th smallest sample (`q` clamped into `[0, 1]`, rank clamped
/// into `[1, n]`). Returns `None` on an empty slice.
pub fn percentile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let n = sorted.len();
    let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as usize).clamp(1, n);
    Some(sorted[rank - 1])
}

/// `(p50, p95, p99)` of an ascending-sorted slice; `None` when empty.
pub fn percentiles(sorted: &[f64]) -> Option<(f64, f64, f64)> {
    Some((
        percentile(sorted, 0.50)?,
        percentile(sorted, 0.95)?,
        percentile(sorted, 0.99)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_yields_none() {
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentiles(&[]), None);
    }

    #[test]
    fn nearest_rank_matches_hand_values() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.50), Some(50.0));
        assert_eq!(percentile(&v, 0.95), Some(95.0));
        assert_eq!(percentile(&v, 0.99), Some(99.0));
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 1.0), Some(100.0));
    }

    #[test]
    fn single_sample_is_every_percentile() {
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(percentile(&[7.5], q), Some(7.5));
        }
        assert_eq!(percentiles(&[7.5]), Some((7.5, 7.5, 7.5)));
    }

    #[test]
    fn out_of_range_q_is_clamped() {
        let v = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&v, -0.5), Some(1.0));
        assert_eq!(percentile(&v, 2.0), Some(3.0));
    }
}
