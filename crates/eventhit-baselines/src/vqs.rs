//! VQS — the BlazeIt-style video-query-system baseline (§VI.B item 8).
//!
//! BlazeIt filters frames with cheap specialized models over object-based
//! predicates. The paper's adaptation scans each time horizon with the
//! lightweight detector and relays the *whole* horizon to the CI when the
//! number of frames containing the target objects reaches a threshold
//! `τ_vqs`; horizons below the threshold are filtered out. Unlike EventHit
//! it cannot *predict* — it must observe the horizon's frames — so it
//! relays entire horizons and pays detector time on every frame.

use eventhit_core::experiment::TaskRun;
use eventhit_core::infer::IntervalPrediction;
use eventhit_core::metrics::{evaluate, EvalOutcome};
use eventhit_video::features::active_count;

/// Per-record VQS predictions at threshold `tau`: the full horizon for each
/// event whose detector-frame count within the horizon reaches `tau`.
pub fn predictions(run: &TaskRun, tau: u32) -> Vec<Vec<IntervalPrediction>> {
    let h = run.horizon as u32;
    run.test_records
        .iter()
        .map(|rec| {
            (0..run.task.num_events())
                .map(|k| {
                    let lo = rec.anchor + 1;
                    let hi = rec.anchor + run.horizon as u64;
                    let count = active_count(&run.features, k, lo, hi);
                    if count >= tau.max(1) {
                        IntervalPrediction {
                            present: true,
                            start: 1,
                            end: h,
                        }
                    } else {
                        IntervalPrediction::absent()
                    }
                })
                .collect()
        })
        .collect()
}

/// Evaluates VQS at one threshold.
pub fn evaluate_at(run: &TaskRun, tau: u32) -> EvalOutcome {
    evaluate(&predictions(run, tau), &run.test, run.horizon as u32)
}

/// The REC–SPL curve obtained by sweeping the threshold.
pub fn curve(run: &TaskRun, taus: &[u32]) -> Vec<(u32, EvalOutcome)> {
    taus.iter().map(|&t| (t, evaluate_at(run, t))).collect()
}

/// A default threshold grid proportional to the horizon length.
pub fn default_taus(horizon: usize) -> Vec<u32> {
    let h = horizon as u32;
    vec![
        1,
        h / 100,
        h / 50,
        h / 20,
        h / 10,
        h / 5,
        h / 3,
        h / 2,
        (h * 3) / 4,
    ]
    .into_iter()
    .map(|t| t.max(1))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventhit_core::experiment::ExperimentConfig;
    use eventhit_core::tasks::task;

    fn quick_run() -> TaskRun {
        // A slightly larger scale than `quick` so the test split is
        // guaranteed to contain event occurrences.
        let cfg = ExperimentConfig {
            scale: 0.15,
            ..ExperimentConfig::quick(21)
        };
        let run = TaskRun::execute(&task("TA10").unwrap(), &cfg);
        assert!(
            run.test.iter().any(|r| r.labels[0].present),
            "test split must contain positives for these tests"
        );
        run
    }

    #[test]
    fn tau_one_is_near_exhaustive() {
        // With false alarms at ~1%/frame, nearly every 200-frame horizon has
        // at least one firing, so tau = 1 relays almost everything.
        let run = quick_run();
        let out = evaluate_at(&run, 1);
        assert!(out.rec > 0.9, "rec={}", out.rec);
        assert!(out.spl > 0.8, "spl={}", out.spl);
    }

    #[test]
    fn raising_tau_reduces_spillage_and_recall() {
        let run = quick_run();
        let lo = evaluate_at(&run, 1);
        let hi = evaluate_at(&run, (run.horizon / 2) as u32);
        assert!(hi.spl <= lo.spl);
        assert!(hi.rec <= lo.rec);
    }

    #[test]
    fn relays_whole_horizons_only() {
        let run = quick_run();
        let preds = predictions(&run, 5);
        for rec_preds in &preds {
            for p in rec_preds {
                if p.present {
                    assert_eq!((p.start, p.end), (1, run.horizon as u32));
                }
            }
        }
    }

    #[test]
    fn default_taus_are_positive_and_increasing_coverage() {
        let taus = default_taus(200);
        assert!(taus.iter().all(|&t| t >= 1));
        assert!(taus.len() >= 5);
    }
}
