//! # eventhit-baselines
//!
//! The comparison algorithms of §VI.B that are not EventHit variants:
//!
//! * [`vqs`] — BlazeIt-style video-query filter: relays whole horizons
//!   whose detector-frame count clears a threshold.
//! * [`cox_baseline`] — Cox proportional-hazards survival regression:
//!   relays the horizon suffix once the predicted event probability crosses
//!   a threshold.
//! * [`appvae`] — simplified APP-VAE-style generative point-process
//!   predictor over detected action sequences (windows 200 / 1500).
//!
//! OPT and BF live on [`eventhit_core::experiment::TaskRun`]
//! (`oracle_outcome` / `brute_force_outcome`) since they need only ground
//! truth.

pub mod appvae;
pub mod cox_baseline;
pub mod vqs;

pub use appvae::AppVae;
pub use cox_baseline::CoxBaseline;
