//! APP-VAE-style point-process baseline (§VI.B item 9).
//!
//! The original APP-VAE (Mehrasa et al., 2019) is a variational
//! auto-encoder over asynchronous action sequences that predicts which
//! action occurs next and when. We cannot run the closed-source original;
//! this stand-in preserves its operating characteristics (DESIGN.md §3.4):
//!
//! * it consumes a long window of *detected action occurrences* (the noisy
//!   activity channel), not raw frame features — hence the very large
//!   window sizes `M = 200 / 1500` the paper reports;
//! * it models inter-arrival and duration distributions generatively
//!   (here: the empirical renewal process fitted on the training region)
//!   and predicts the next occurrence as a quantile range of the
//!   conditional time-to-next-arrival;
//! * it has no tunable recall knob, so it evaluates to a single point.

use eventhit_core::experiment::TaskRun;
use eventhit_core::infer::IntervalPrediction;
use eventhit_core::metrics::{evaluate, EvalOutcome};
use eventhit_nn::matrix::Matrix;
use eventhit_video::features::active_channel;

/// Minimum run length (frames) for a detector run to count as an
/// occurrence; shorter runs are treated as false alarms.
const MIN_RUN: u64 = 3;
/// Detector gaps up to this length inside a run are bridged (miss noise).
const MERGE_GAP: u64 = 5;

/// Fitted renewal statistics of one event class.
#[derive(Debug, Clone)]
struct EventProcess {
    /// Sorted end-to-start gaps between consecutive detected occurrences.
    gaps: Vec<f64>,
    /// Sorted detected durations.
    durations: Vec<f64>,
}

impl EventProcess {
    fn median_duration(&self) -> f64 {
        quantile(&self.durations, 0.5).unwrap_or(1.0)
    }

    fn mean_cycle(&self) -> f64 {
        let g = mean(&self.gaps).unwrap_or(f64::INFINITY);
        let d = mean(&self.durations).unwrap_or(0.0);
        g + d
    }
}

fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

fn quantile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    Some(sorted[idx.min(sorted.len() - 1)])
}

/// Extracts detected occurrence runs `[start, end]` of one event from the
/// activity channel over `[lo, hi]`, bridging short detector dropouts and
/// discarding blips shorter than `MIN_RUN` frames.
pub fn detect_runs(features: &Matrix, event: usize, lo: u64, hi: u64) -> Vec<(u64, u64)> {
    let col = active_channel(event);
    let hi = hi.min(features.rows() as u64 - 1);
    let mut raw: Vec<(u64, u64)> = Vec::new();
    let mut run_start: Option<u64> = None;
    for t in lo..=hi {
        let on = features[(t as usize, col)] >= 0.5;
        match (on, run_start) {
            (true, None) => run_start = Some(t),
            (false, Some(s)) => {
                raw.push((s, t - 1));
                run_start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = run_start {
        raw.push((s, hi));
    }
    // Bridge short gaps.
    let mut merged: Vec<(u64, u64)> = Vec::new();
    for (s, e) in raw {
        match merged.last_mut() {
            Some((_, pe)) if s <= *pe + MERGE_GAP + 1 => *pe = e,
            _ => merged.push((s, e)),
        }
    }
    merged.retain(|&(s, e)| e - s + 1 >= MIN_RUN);
    merged
}

/// The fitted point-process predictor.
pub struct AppVae {
    window: usize,
    horizon: usize,
    processes: Vec<EventProcess>,
}

impl AppVae {
    /// Fits per-event renewal statistics from the detector observations of
    /// the run's training region, using look-back window `window`
    /// (the paper evaluates 200 and 1500).
    pub fn fit(run: &TaskRun, window: usize) -> Self {
        let train_end = run.train_records.last().map(|r| r.anchor).unwrap_or(0);
        let processes = (0..run.task.num_events())
            .map(|k| {
                let runs = detect_runs(&run.features, k, 0, train_end);
                let mut gaps: Vec<f64> = runs
                    .windows(2)
                    .map(|w| (w[1].0.saturating_sub(w[0].1)) as f64)
                    .collect();
                gaps.sort_by(f64::total_cmp);
                let mut durations: Vec<f64> =
                    runs.iter().map(|&(s, e)| (e - s + 1) as f64).collect();
                durations.sort_by(f64::total_cmp);
                EventProcess { gaps, durations }
            })
            .collect();
        AppVae {
            window,
            horizon: run.horizon,
            processes,
        }
    }

    /// Predicts the next occurrence of every event given the observation
    /// window ending at `anchor`.
    pub fn predict(&self, features: &Matrix, anchor: u64) -> Vec<IntervalPrediction> {
        let lo = anchor.saturating_sub(self.window as u64 - 1);
        self.processes
            .iter()
            .enumerate()
            .map(|(k, proc_)| self.predict_event(features, k, proc_, lo, anchor))
            .collect()
    }

    fn predict_event(
        &self,
        features: &Matrix,
        event: usize,
        proc_: &EventProcess,
        lo: u64,
        anchor: u64,
    ) -> IntervalPrediction {
        let h = self.horizon as f64;
        if proc_.gaps.is_empty() {
            return IntervalPrediction::absent();
        }
        let runs = detect_runs(features, event, lo, anchor);
        let median_dur = proc_.median_duration();

        let (start_lo, start_hi) = match runs.last() {
            Some(&(_, last_end)) => {
                let elapsed = (anchor - last_end) as f64;
                // Conditional residual gap distribution: gaps that exceed
                // the elapsed time, shifted by it.
                let residual: Vec<f64> = proc_
                    .gaps
                    .iter()
                    .filter(|&&g| g > elapsed)
                    .map(|&g| g - elapsed)
                    .collect();
                if residual.is_empty() {
                    // Overdue: expect the event immediately.
                    (1.0, median_dur.min(h))
                } else {
                    let q10 = quantile(&residual, 0.1).unwrap();
                    let q90 = quantile(&residual, 0.9).unwrap();
                    (q10, q90)
                }
            }
            None => {
                // No occurrence in the observation window: fall back to the
                // unconditional renewal rate. Predict an occurrence only if
                // one is expected within the horizon.
                if proc_.mean_cycle() <= h {
                    (1.0, h)
                } else {
                    return IntervalPrediction::absent();
                }
            }
        };

        if start_lo > h {
            return IntervalPrediction::absent();
        }
        let start = start_lo.max(1.0).min(h) as u32;
        let end = (start_hi + median_dur).max(start as f64).min(h) as u32;
        IntervalPrediction {
            present: true,
            start,
            end: end.max(start),
        }
    }

    /// Evaluates over a run's test split (single operating point).
    pub fn evaluate_run(&self, run: &TaskRun) -> EvalOutcome {
        let preds: Vec<Vec<IntervalPrediction>> = run
            .test_records
            .iter()
            .map(|r| self.predict(&run.features, r.anchor))
            .collect();
        evaluate(&preds, &run.test, run.horizon as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventhit_core::experiment::ExperimentConfig;
    use eventhit_core::tasks::task;

    #[test]
    fn detect_runs_merges_and_filters() {
        // Channel layout: activity at [10..=20] with a 2-frame dropout, a
        // 1-frame blip at 40.
        let mut f = Matrix::zeros(60, 5);
        let col = active_channel(0); // = 3
        for t in 10..=14 {
            f[(t, col)] = 1.0;
        }
        for t in 17..=20 {
            f[(t, col)] = 1.0;
        }
        f[(40, col)] = 1.0;
        let runs = detect_runs(&f, 0, 0, 59);
        assert_eq!(runs, vec![(10, 20)]);
    }

    #[test]
    fn detect_runs_clamps_range() {
        let f = Matrix::zeros(10, 5);
        assert!(detect_runs(&f, 0, 0, 100).is_empty());
    }

    #[test]
    fn quantile_and_mean_helpers() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&[1.0, 2.0, 3.0], 0.5), Some(2.0));
        assert_eq!(quantile(&[1.0, 2.0, 3.0], 1.0), Some(3.0));
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
    }

    #[test]
    fn fits_and_evaluates_on_breakfast_task() {
        // Breakfast is the dataset the paper runs APP-VAE on.
        let run = TaskRun::execute(&task("TA13").unwrap(), &ExperimentConfig::quick(41));
        let short = AppVae::fit(&run, 200);
        let long = AppVae::fit(&run, 1500);
        let out_short = short.evaluate_run(&run);
        let out_long = long.evaluate_run(&run);
        // Outcomes are well-formed probabilistic quantities.
        for out in [out_short, out_long] {
            assert!((0.0..=1.0).contains(&out.rec), "rec={}", out.rec);
            assert!(out.spl >= 0.0, "spl={}", out.spl);
        }
    }

    #[test]
    fn empty_history_predicts_absent() {
        let run = TaskRun::execute(&task("TA10").unwrap(), &ExperimentConfig::quick(42));
        let mut model = AppVae::fit(&run, 200);
        // Destroy the fitted gaps to simulate a class never observed.
        model.processes = vec![EventProcess {
            gaps: vec![],
            durations: vec![],
        }];
        let preds = model.predict(&run.features, run.test_records[0].anchor);
        assert!(!preds[0].present);
    }
}
