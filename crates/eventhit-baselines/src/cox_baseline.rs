//! COX — the survival-regression baseline (§VI.B item 7).
//!
//! A Cox proportional-hazards model is fitted per event on the training
//! records: the "survival time" is the offset at which the event starts
//! within the horizon (censored at `H` when no event occurs), and the
//! covariates summarize the collection window. At prediction time the model
//! yields a survival curve over the horizon; given a threshold `τ_cox`, the
//! first offset whose predicted event probability `1 - S(t)` reaches the
//! threshold is taken as the start, and — because the Cox model regresses a
//! single variable and cannot place the end point (the paper's footnote 7)
//! — the relay extends from that offset to the end of the horizon.

use eventhit_core::experiment::TaskRun;
use eventhit_core::infer::IntervalPrediction;
use eventhit_core::metrics::{evaluate, EvalOutcome};
use eventhit_survival::cox::{CoxConfig, CoxModel, Subject};
use eventhit_video::records::Record;

/// Per-event fitted Cox models for one task.
pub struct CoxBaseline {
    models: Vec<Option<CoxModel>>,
    horizon: usize,
}

/// Summarizes a record's collection window into a Cox covariate vector:
/// the per-channel mean over the window concatenated with the last frame's
/// features.
pub fn summarize(record: &Record) -> Vec<f64> {
    let m = record.covariates.rows();
    let d = record.covariates.cols();
    let mut x = Vec::with_capacity(2 * d);
    for c in 0..d {
        let mean: f32 = (0..m).map(|r| record.covariates[(r, c)]).sum::<f32>() / m as f32;
        x.push(mean as f64);
    }
    for c in 0..d {
        x.push(record.covariates[(m - 1, c)] as f64);
    }
    x
}

impl CoxBaseline {
    /// Fits one Cox model per event from training records. Events whose
    /// fit fails (e.g. no positives in the split) are marked unavailable
    /// and always predicted absent.
    pub fn fit(train: &[Record], num_events: usize, horizon: usize) -> Self {
        let models = (0..num_events)
            .map(|k| {
                let subjects: Vec<Subject> = train
                    .iter()
                    .map(|rec| {
                        let label = &rec.labels[k];
                        Subject {
                            x: summarize(rec),
                            time: if label.present {
                                label.start as f64
                            } else {
                                horizon as f64
                            },
                            observed: label.present,
                        }
                    })
                    .collect();
                CoxModel::fit(&subjects, &CoxConfig::default()).ok()
            })
            .collect();
        CoxBaseline { models, horizon }
    }

    /// Fits from a [`TaskRun`]'s training split.
    pub fn from_run(run: &TaskRun) -> Self {
        Self::fit(&run.train_records, run.task.num_events(), run.horizon)
    }

    /// Predicts one record at threshold `tau`: the horizon suffix from the
    /// first offset where `1 - S(t) >= tau`, or absent if the curve never
    /// crosses.
    pub fn predict(&self, record: &Record, tau: f64) -> Vec<IntervalPrediction> {
        let x = summarize(record);
        self.models
            .iter()
            .map(|model| match model {
                None => IntervalPrediction::absent(),
                Some(m) => {
                    let risk = m.risk(&x);
                    for t in 1..=self.horizon {
                        let s = (-m.cumulative_hazard(t as f64) * risk).exp();
                        if 1.0 - s >= tau {
                            return IntervalPrediction {
                                present: true,
                                start: t as u32,
                                end: self.horizon as u32,
                            };
                        }
                    }
                    IntervalPrediction::absent()
                }
            })
            .collect()
    }

    /// Evaluates over a run's test split at one threshold.
    pub fn evaluate_at(&self, run: &TaskRun, tau: f64) -> EvalOutcome {
        let preds: Vec<Vec<IntervalPrediction>> = run
            .test_records
            .iter()
            .map(|r| self.predict(r, tau))
            .collect();
        evaluate(&preds, &run.test, run.horizon as u32)
    }

    /// The REC–SPL curve obtained by sweeping the threshold.
    pub fn curve(&self, run: &TaskRun, taus: &[f64]) -> Vec<(f64, EvalOutcome)> {
        taus.iter()
            .map(|&t| (t, self.evaluate_at(run, t)))
            .collect()
    }
}

/// A default threshold grid for the COX curve.
pub fn default_taus() -> Vec<f64> {
    vec![
        0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventhit_core::experiment::ExperimentConfig;
    use eventhit_core::tasks::task;
    use eventhit_nn::matrix::Matrix;
    use eventhit_video::records::EventLabel;

    #[test]
    fn summarize_concatenates_mean_and_last() {
        let mut cov = Matrix::zeros(2, 2);
        cov[(0, 0)] = 1.0;
        cov[(1, 0)] = 3.0;
        cov[(0, 1)] = 2.0;
        cov[(1, 1)] = 4.0;
        let rec = Record {
            anchor: 0,
            covariates: cov,
            labels: vec![EventLabel::absent()],
        };
        let x = summarize(&rec);
        assert_eq!(x, vec![2.0, 3.0, 3.0, 4.0]); // means then last row
    }

    #[test]
    fn cox_baseline_end_to_end() {
        let run = TaskRun::execute(&task("TA10").unwrap(), &ExperimentConfig::quick(31));
        let cox = CoxBaseline::from_run(&run);
        // Low threshold: relays aggressively (high recall, high spillage).
        let lo = cox.evaluate_at(&run, 0.05);
        // High threshold: conservative.
        let hi = cox.evaluate_at(&run, 0.9);
        assert!(lo.rec >= hi.rec, "lo.rec={} hi.rec={}", lo.rec, hi.rec);
        assert!(lo.spl >= hi.spl, "lo.spl={} hi.spl={}", lo.spl, hi.spl);
    }

    #[test]
    fn predictions_are_suffixes() {
        let run = TaskRun::execute(&task("TA10").unwrap(), &ExperimentConfig::quick(32));
        let cox = CoxBaseline::from_run(&run);
        for rec in run.test_records.iter().take(20) {
            for p in cox.predict(rec, 0.3) {
                if p.present {
                    assert_eq!(p.end, run.horizon as u32);
                    assert!(p.start >= 1);
                }
            }
        }
    }

    #[test]
    fn unavailable_model_predicts_absent() {
        // All-negative training split: fit fails, predictions absent.
        let rec = Record {
            anchor: 0,
            covariates: Matrix::zeros(3, 2),
            labels: vec![EventLabel::absent()],
        };
        let baseline = CoxBaseline::fit(std::slice::from_ref(&rec), 1, 50);
        let preds = baseline.predict(&rec, 0.1);
        assert!(!preds[0].present);
    }
}
