//! Property-based tests of the shard router: total coverage, stability
//! across "restarts" (independently constructed routers), and load
//! balance over hashed stream-id populations.

use eventhit_rng::testkit::{from_fn, Strategy};
use eventhit_rng::{prop_assert, prop_assert_eq, property, Rng};
use eventhit_serve::ShardRouter;

fn shard_count() -> impl Strategy<Value = u32> {
    from_fn(|rng| rng.random_range(1u32..=32))
}

fn stream_id() -> impl Strategy<Value = u32> {
    from_fn(|rng| rng.random::<u32>())
}

property! {
    #[test]
    fn every_stream_maps_to_exactly_one_shard(shards in shard_count(), id in stream_id()) {
        // Total coverage: route() is a total function into 0..shards, and
        // repeated calls on one router cannot disagree.
        let r = ShardRouter::new(shards);
        let s = r.route(id);
        prop_assert!(s < shards, "id {id} escaped {shards} shards: {s}");
        prop_assert_eq!(s, r.route(id));
    }

    #[test]
    fn routing_is_stable_across_restarts(shards in shard_count(), id in stream_id()) {
        // A restarted server builds a brand-new router from the same
        // shard count; durable per-shard directories only stay valid if
        // both resolve every id identically.
        let before = ShardRouter::new(shards);
        let after = ShardRouter::new(shards);
        prop_assert_eq!(before.route(id), after.route(id));
    }

    #[test]
    fn growing_the_fleet_only_moves_streams_to_the_new_shard(
        shards in from_fn(|rng| rng.random_range(1u32..=16)),
        id in stream_id(),
    ) {
        let small = ShardRouter::new(shards).route(id);
        let grown = ShardRouter::new(shards + 1).route(id);
        prop_assert!(
            grown == small || grown == shards,
            "id {id}: shard {small} -> {grown} when growing {shards} -> {}",
            shards + 1
        );
    }
}

#[test]
fn load_balances_within_2x_over_10k_ids() {
    // The ISSUE's balance bar: over 10k hashed stream ids, the heaviest
    // shard carries at most twice the lightest, at every fleet size the
    // bench matrix exercises.
    for shards in [2u32, 4, 8, 16] {
        let r = ShardRouter::new(shards);
        let mut load = vec![0u32; shards as usize];
        for id in 0..10_000u32 {
            load[r.route(id) as usize] += 1;
        }
        let max = *load.iter().max().unwrap();
        let min = *load.iter().min().unwrap();
        assert!(min > 0, "{shards} shards: an empty shard ({load:?})");
        assert!(
            max <= 2 * min,
            "{shards} shards: max/min load {max}/{min} exceeds 2x ({load:?})"
        );
    }
}
